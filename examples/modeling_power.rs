//! The modeling-power comparisons of §5.2 (experiments T1–T3): the same
//! information in STDM labeled sets versus a relational encoding — measured,
//! not just argued.
//!
//! ```sh
//! cargo run --example modeling_power
//! ```

use gemstone_relbase::{hash_join, Relation, Rval};
use gemstone_stdm::encode::{
    array_to_set, flatten_children, flattened_bytes, payload_bytes, relation_to_set,
    set_to_relation,
};
use gemstone_stdm::{Label, LabeledSet, SValue};

fn main() {
    // ---- T1: a relation is just a set of tuples (§5.2). -----------------
    println!("T1 — the paper's relation as a labeled set:");
    let attrs = ["A", "B", "C"];
    let rows = vec![
        vec![SValue::Int(1), SValue::Int(3), SValue::Int(4)],
        vec![SValue::Int(1), SValue::Int(5), SValue::Int(4)],
    ];
    let rel = relation_to_set(&attrs, &rows);
    println!("  {rel}");
    assert_eq!(set_to_relation(&attrs, &rel), rows);
    println!("  (round-trips losslessly)\n");

    // ---- T3: arrays are sets with integer element names. ----------------
    println!("T3 — the paper's array example:");
    let arr = array_to_set([
        SValue::Set(LabeledSet::values(["Anders", "Roberts"])),
        SValue::Set(LabeledSet::values(["Roberts", "Ching"])),
        SValue::Set(LabeledSet::values(["Albrecht", "Ching"])),
    ]);
    println!("  {arr}\n");

    // ---- T2: the children-flattening comparison. -------------------------
    println!("T2 — Robert Peters' children, nested vs flattened:");
    let emp = LabeledSet::of([
        ("Name", SValue::Set(LabeledSet::of([("First", "Robert"), ("Last", "Peters")]))),
        ("Children", SValue::Set(LabeledSet::values(["Olivia", "Dale", "Paul"]))),
    ]);
    println!("  STDM: {emp}");
    let flat = flatten_children(&emp);
    println!("  relational:");
    for (f, l, c) in &flat {
        println!("    {f:<8} {l:<8} {c}");
    }
    let nested_bytes = payload_bytes(&SValue::Set(emp.clone()));
    let flat_bytes = flattened_bytes(&flat);
    println!(
        "  payload: {nested_bytes} bytes nested vs {flat_bytes} bytes flattened \
         ({:.0}% redundancy — \"some value is going to be repeated three times\")",
        100.0 * (flat_bytes as f64 - nested_bytes as f64) / nested_bytes as f64
    );

    // The subset test: one operation on the entity, two quantifiers flat.
    let all = LabeledSet::values(["Olivia", "Dale", "Paul", "Sam"]);
    let kids = emp.get(&Label::name("Children")).unwrap().as_set().unwrap();
    println!(
        "  subset test (kids ⊆ all-kids): {} — a single message on the set entity\n",
        kids.subset_of(&all)
    );

    // ---- §2D: the department-rename anomaly, quantified. -----------------
    println!("§2D — logical pointers break under renames (relational baseline):");
    let mut emps = Relation::new("Emp", &["name", "dept"]);
    for (n, d) in [("Burns", "Sales"), ("Peters", "Sales"), ("Ng", "Research"), ("Ito", "Sales")] {
        emps.insert(vec![n.into(), d.into()]);
    }
    let mut depts = Relation::new("Dept", &["dname", "budget"]);
    depts.insert(vec!["Sales".into(), Rval::Int(142_000)]);
    depts.insert(vec!["Research".into(), Rval::Int(256_500)]);
    let joined = hash_join(&emps, emps.attr("dept"), &depts, depts.attr("dname"));
    println!("  before rename: join finds {} employees with budgets", joined.len());
    // Rename Sales → Retail in the departments relation only.
    let mut depts2 = Relation::new("Dept", &["dname", "budget"]);
    depts2.insert(vec!["Retail".into(), Rval::Int(142_000)]);
    depts2.insert(vec!["Research".into(), Rval::Int(256_500)]);
    let joined2 = hash_join(&emps, emps.attr("dept"), &depts2, depts2.attr("dname"));
    println!(
        "  after rename:  join finds {} — three employees silently stranded \
         (entity identity in GSDM makes this impossible; see tests/sharing_identity.rs)",
        joined2.len()
    );
}
