//! An interactive OPAL session — the paper's host-machine interface in
//! miniature (§6: "Communication with GemStone is done in blocks of OPAL
//! source code. Compilation and execution of those blocks is done entirely
//! in the GemStone system").
//!
//! ```sh
//! cargo run --example opal_repl
//! ```
//!
//! Try:
//! ```text
//! Object subclass: 'Employee' instVarNames: #('name' 'salary')
//! | e | Staff := Set new. e := Employee new. e name: 'Ellen'. e salary: 24650. Staff add: e
//! System commitTransaction
//! (Staff select: [:e | e salary > 20000]) collect: [:e | e name]
//! System timeDial: 1
//! Staff size
//! System timeDialNow
//! ```
//!
//! Telemetry escapes (handled by the REPL, not the compiler):
//! ```text
//! :metrics                 — dump the metrics registry as a table
//! :explain+ <doIt>         — run the doIt and render its profiled plan
//! ```

use gemstone::GemStone;
use std::io::{BufRead, Write};

fn main() {
    let gs = GemStone::in_memory();
    let mut session = gs.login("system").expect("login");
    println!("GemStone/OPAL — SIGMOD 1984 reproduction.");
    println!("Each line is a doIt. `System commitTransaction` to commit; ctrl-D to exit.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("opal> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let src = line.trim();
        if src.is_empty() {
            continue;
        }
        if src == ":metrics" {
            print!("{}", session.metrics().render_table());
            continue;
        }
        if let Some(doit) = src.strip_prefix(":explain+") {
            let doit = doit.trim();
            if doit.is_empty() {
                println!("  usage: :explain+ <doIt containing a select block>");
                continue;
            }
            match session.explain_analyze(doit) {
                Ok(analysis) => {
                    for l in analysis.lines() {
                        println!("  {l}");
                    }
                }
                Err(e) => println!("  !! {e}"),
            }
            continue;
        }
        match session.run_display(src) {
            Ok(shown) => println!("  {shown}"),
            Err(e) => println!("  !! {e}"),
        }
    }
    println!("\nbye — aborting uncommitted work (the workspace is discarded, §6).");
}
