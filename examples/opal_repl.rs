//! An interactive OPAL session — the paper's host-machine interface in
//! miniature (§6: "Communication with GemStone is done in blocks of OPAL
//! source code. Compilation and execution of those blocks is done entirely
//! in the GemStone system").
//!
//! ```sh
//! cargo run --example opal_repl
//! ```
//!
//! Try:
//! ```text
//! Object subclass: 'Employee' instVarNames: #('name' 'salary')
//! | e | Staff := Set new. e := Employee new. e name: 'Ellen'. e salary: 24650. Staff add: e
//! System commitTransaction
//! (Staff select: [:e | e salary > 20000]) collect: [:e | e name]
//! System timeDial: 1
//! Staff size
//! System timeDialNow
//! ```
//!
//! Telemetry escapes (handled by the REPL, not the compiler):
//! ```text
//! :metrics                 — metrics moved since the last :metrics call
//! :metrics all             — the full cumulative registry
//! :effects Class>>selector — the method's static effect summary
//! :effects                 — classification of the last statement run
//! :explain+ <doIt>         — run the doIt and render its profiled plan
//! :journal <dir>           — start the flight recorder (segments in <dir>)
//! :journal off             — stop it
//! :doctor                  — render a diagnostic bundle from the journal
//! :conflicts               — this session's last conflict + database heat
//! :stats                   — the statistics catalog + last plan decision
//! :stats on                — train the catalog and turn the planner cost-based
//! ```

use gemstone::{GemStone, JournalConfig, MetricsSnapshot};
use std::io::{BufRead, Write};

fn main() {
    let gs = GemStone::in_memory();
    let mut session = gs.login("system").expect("login");
    println!("GemStone/OPAL — SIGMOD 1984 reproduction.");
    println!("Each line is a doIt. `System commitTransaction` to commit; ctrl-D to exit.\n");

    // `:metrics` prints the movement since the previous call, so each
    // check shows what the statements in between actually did.
    let mut metrics_mark: MetricsSnapshot = session.metrics();

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("opal> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let src = line.trim();
        if src.is_empty() {
            continue;
        }
        if src == ":metrics" {
            let now = session.metrics();
            println!("  (moved since the last :metrics — `:metrics all` for totals)");
            print!("{}", now.diff(&metrics_mark).render_table());
            metrics_mark = now;
            continue;
        }
        if src == ":metrics all" {
            print!("{}", session.metrics().render_table());
            continue;
        }
        if let Some(arg) = src.strip_prefix(":effects") {
            let arg = arg.trim();
            if arg.is_empty() {
                match session.last_effect() {
                    Some(s) => {
                        let text = session.render_effect(&s.clone());
                        for l in text.lines() {
                            println!("  {l}");
                        }
                    }
                    None => println!("  no statement classified yet — run a doIt first."),
                }
            } else if let Some((class, selector)) = arg.split_once(">>") {
                match session.method_effects(class.trim(), selector.trim()) {
                    Ok(s) => {
                        for l in session.render_effect(&s).lines() {
                            println!("  {l}");
                        }
                    }
                    Err(e) => println!("  !! {e}"),
                }
            } else {
                println!("  usage: :effects Class>>selector  (or bare :effects)");
            }
            continue;
        }
        if let Some(arg) = src.strip_prefix(":journal") {
            let arg = arg.trim();
            if arg.is_empty() {
                match gs.telemetry().journal.status() {
                    Some((seq, live, bytes)) => println!(
                        "  recording to {:?} — segment {seq}, {live} live, {bytes} bytes",
                        gs.telemetry().journal.dir().unwrap_or_default()
                    ),
                    None => println!("  not recording. usage: :journal <dir> | :journal off"),
                }
            } else if arg == "off" {
                gs.database().stop_journal();
                println!("  flight recorder stopped (segments kept on disk).");
            } else {
                match gs.database().start_journal(JournalConfig::at(arg)) {
                    Ok(()) => println!("  flight recorder on → {arg}/journal-*.jsonl"),
                    Err(e) => println!("  !! {e}"),
                }
            }
            continue;
        }
        if src == ":conflicts" {
            match session.last_conflict() {
                Some(r) => {
                    println!(
                        "  last conflict: {} — txn begun {:?} killed by commit {:?} (session {})",
                        r.kind, r.started_at, r.culprit_time, r.culprit_session
                    );
                    if !r.goops.is_empty() {
                        let goops: Vec<String> = r.goops.iter().map(|g| format!("g{g}")).collect();
                        let tracks: Vec<String> = r.tracks.iter().map(|t| t.to_string()).collect();
                        println!(
                            "    objects: {}  home tracks: {}",
                            goops.join(", "),
                            if tracks.is_empty() {
                                "(no resolver)".into()
                            } else {
                                tracks.join(", ")
                            }
                        );
                    }
                }
                None => println!("  no conflict recorded for this session."),
            }
            let s = gs.database().conflict_stats();
            println!(
                "  database: {} conflicts (overlap {}, watermark {})",
                s.total(),
                s.overlap,
                s.watermark
            );
            let heat = |pairs: &[(u64, u64)], what: &str| {
                if !pairs.is_empty() {
                    let per: Vec<String> =
                        pairs.iter().take(8).map(|(k, n)| format!("{what} {k} ×{n}")).collect();
                    println!("    hottest: {}", per.join(", "));
                }
            };
            heat(&s.by_object, "goop");
            heat(&s.by_track, "track");
            continue;
        }
        if src == ":stats" || src == ":stats on" {
            if src == ":stats on" {
                match gs.database().enable_stats() {
                    Ok(n) => {
                        println!("  statistics on — {n} sketches trained; planner is cost-based.")
                    }
                    Err(e) => {
                        println!("  !! {e}");
                        continue;
                    }
                }
            }
            for l in session.render_stats().lines() {
                println!("  {l}");
            }
            if let Some(d) = session.last_decision() {
                println!(
                    "  last plan: {} (est {:.0} row visits, {} alternatives{}{})",
                    d.canon,
                    d.est_cost,
                    d.alternatives.len(),
                    if d.cost_based { ", cost-based" } else { ", declaration order" },
                    if d.replan { ", re-planned after drift" } else { "" }
                );
            }
            continue;
        }
        if src == ":doctor" {
            match gs.database().diagnostic_bundle("repl") {
                Ok(bundle) => {
                    for l in bundle.render().lines() {
                        println!("  {l}");
                    }
                }
                Err(e) => println!("  !! {e}"),
            }
            continue;
        }
        if let Some(doit) = src.strip_prefix(":explain+") {
            let doit = doit.trim();
            if doit.is_empty() {
                println!("  usage: :explain+ <doIt containing a select block>");
                continue;
            }
            match session.explain_analyze(doit) {
                Ok(analysis) => {
                    for l in analysis.lines() {
                        println!("  {l}");
                    }
                }
                Err(e) => println!("  !! {e}"),
            }
            continue;
        }
        match session.run_display(src) {
            Ok(shown) => println!("  {shown}"),
            Err(e) => println!("  !! {e}"),
        }
    }
    println!("\nbye — aborting uncommitted work (the workspace is discarded, §6).");
}
