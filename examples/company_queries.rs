//! The §5.1 example database and query, three ways: procedurally, through
//! compiled declarative selection blocks, and with a directory built by the
//! `System createIndexOn:path:` hint (§6).
//!
//! ```sh
//! cargo run --example company_queries
//! ```

use gemstone::GemStone;

fn main() -> gemstone::GemResult<()> {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system")?;

    // The §5.1 fragment (Departments A12/A16, Employees E62/E83), scaled up
    // with synthetic staff so planning differences are visible.
    s.run(
        "| d |
         Departments := Set new.
         Employees := Set new.
         d := Dictionary new. d at: #Name put: 'Sales'. d at: #Budget put: 142000.
         d at: #Managers put: Set new. (d at: #Managers) add: 'Nathen'; add: 'Roberts'.
         Departments add: d.
         d := Dictionary new. d at: #Name put: 'Research'. d at: #Budget put: 256500.
         d at: #Managers put: Set new. (d at: #Managers) add: 'Carter'.
         Departments add: d",
    )?;
    s.run(
        "| e names |
         names := #('Burns' 'Peters' 'Ng' 'Ruiz' 'Okafor' 'Shaw' 'Ito' 'Weiss').
         1 to: 200 do: [:i |
             e := Dictionary new.
             e at: #Name put: (names at: (i \\\\ 8) + 1).
             e at: #Salary put: 18000 + ((i * 337) \\\\ 20000).
             e at: #Depts put: Set new.
             (e at: #Depts) add: ((i \\\\ 2) = 0 ifTrue: ['Sales'] ifFalse: ['Research']).
             Employees add: e]",
    )?;
    s.commit()?;

    // ---- The paper's query, procedurally. --------------------------------
    let procedural = "
        | result |
        result := OrderedCollection new.
        Employees do: [:e |
            Departments do: [:d |
                (((e at: #Depts) includes: (d at: #Name))
                  and: [(e at: #Salary) > (0.10 * (d at: #Budget))])
                    ifTrue: [((d at: #Managers) __elements) do: [:m |
                        result add: (e at: #Name), '/', m]]]].
        result size";
    let n = s.run(procedural)?.as_int().unwrap();
    println!("§5.1 query, procedural nested loops: {n} (employee, manager) pairs");

    // ---- Declaratively: the select block compiles to the calculus. ------
    let declarative = "
        | result |
        result := OrderedCollection new.
        Departments do: [:d | | hits |
            hits := Employees select: [:e | e Salary > (0.10 * (d at: #Budget))].
            hits do: [:e |
                ((e at: #Depts) includes: (d at: #Name)) ifTrue: [
                    ((d at: #Managers) __elements) do: [:m |
                        result add: (e at: #Name), '/', m]]]].
        result size";
    let n2 = s.run(declarative)?.as_int().unwrap();
    println!("same query, declarative inner selection:  {n2} pairs");
    assert_eq!(n, n2);

    // ---- Equality selections with a directory (§6's hint). ---------------
    s.run("System createIndexOn: Employees path: #Salary")?;
    s.commit()?;
    let probe = s.run("(Employees detect: [:e | true]) at: #Salary")?.as_int().unwrap();
    let hits =
        s.run(&format!("(Employees select: [:e | e Salary = {probe}]) size"))?.as_int().unwrap();
    println!("\ndirectory-served equality select: {hits} employee(s) at exactly {probe}");
    let sample = s.run_display(&format!(
        "(Employees select: [:e | e Salary = {probe}]) collect: [:e | e at: #Name]"
    ))?;
    println!("  {sample}");

    // ---- And against a past state. ---------------------------------------
    let t_before = s.run("System currentTime")?.as_int().unwrap();
    s.run("Employees do: [:e | e at: #Salary put: (e at: #Salary) + 5000]")?;
    s.commit()?;
    let now = s.run("(Employees select: [:e | e Salary > 35000]) size")?.as_int().unwrap();
    s.run(&format!("System timeDial: {t_before}"))?;
    let then = s.run("(Employees select: [:e | e Salary > 35000]) size")?.as_int().unwrap();
    s.run("System timeDialNow")?;
    println!("\nemployees over 35000 — now: {now}, before the raise (t{t_before}): {then}");
    Ok(())
}
