//! The paper's circuit example (§4.2): "we can distinguish, say, two gates
//! in a circuit that have all the same characteristics, but are not
//! physically the same gate."
//!
//! An engineering database: gates with identity, nets that share them,
//! design revisions captured by transaction time, and an audit of when each
//! change landed — the §2E engineering/patent-application use case.
//!
//! ```sh
//! cargo run --example circuit_design
//! ```

use gemstone::GemStone;

fn main() -> gemstone::GemResult<()> {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system")?;

    // Gate and Net as classes with behaviour (§2A: operations on types).
    s.run(
        "Object subclass: 'Gate' instVarNames: #('kind' 'delay' 'label').
         Object subclass: 'Net' instVarNames: #('name' 'gates').
         Gate compile: 'printString ^label , '': '' , kind asString , ''/'' , delay printString'.
         Net compile: 'totalDelay ^gates inject: 0 into: [:sum :g | sum + g delay]'.
         Net compile: 'slowest ^gates inject: gates first into:
             [:worst :g | g delay > worst delay ifTrue: [g] ifFalse: [worst]]'",
    )?;

    // Two NAND gates with identical characteristics — equivalent, never
    // identical.
    s.run(
        "| n |
         G1 := Gate new. G1 kind: #nand. G1 delay: 2. G1 label: 'U1'.
         G2 := Gate new. G2 kind: #nand. G2 delay: 2. G2 label: 'U2'.
         Clk := Net new. Clk name: 'clk'.
         n := Set new. n add: G1; add: G2. Clk gates: n.
         Data := Net new. Data name: 'data'.
         n := Set new. n add: G2. Data gates: n",
    )?;
    let placed = s.commit()?;
    println!("netlist committed at t{}", placed.ticks());

    let v = s.run("(G1 kind = G2 kind) & (G1 delay = G2 delay)")?;
    println!("U1 and U2 equivalent characteristics? {}", v.as_bool().unwrap());
    let v = s.run("G1 == G2")?;
    println!("U1 and U2 the same physical gate?    {}", v.as_bool().unwrap());

    // G2 is shared between both nets — one entity, two containers (§5.4).
    let v = s.run(
        "(Clk gates detect: [:g | g label = 'U2']) == (Data gates detect: [:g | g label = 'U2'])",
    )?;
    println!("the U2 in clk IS the U2 in data?     {}", v.as_bool().unwrap());

    // Engineering change order: retime U2. Visible through every net at
    // once, and the old revision stays queryable.
    s.run("G2 delay: 5")?;
    let eco = s.commit()?;
    println!("\nECO at t{}: U2 retimed 2 → 5", eco.ticks());
    let now = s.run("Clk totalDelay")?.as_int().unwrap();
    println!("clk path delay now: {now}");
    s.run(&format!("System timeDial: {}", placed.ticks()))?;
    let then = s.run("Clk totalDelay")?.as_int().unwrap();
    println!("clk path delay in revision t{}: {then}", placed.ticks());
    s.run("System timeDialNow")?;

    let slowest = s.run_display("Clk slowest")?;
    println!("slowest gate on clk: {slowest}");

    // The audit: when did U2's delay change? Walk the history.
    println!("\nU2 delay audit trail:");
    for t in placed.ticks()..=eco.ticks() {
        let v = s.run(&format!("G2 ! delay @ {t}"))?.as_int().unwrap();
        println!("  t{t}: {v}ns");
    }
    Ok(())
}
