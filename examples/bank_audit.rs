//! A realistic temporal workload: bank accounts with a full audit trail —
//! the §2E motivation ("accounting, legal, financial … applications keep
//! and use history for auditing"). No explicit audit table exists: the
//! *database itself* is the audit trail.
//!
//! Demonstrates: concurrent transfers with optimistic retry, as-of balance
//! statements, SafeTime reporting, and crash-free recovery of the history.
//!
//! ```sh
//! cargo run --example bank_audit
//! ```

use gemstone::{GemError, GemStone};

fn main() -> gemstone::GemResult<()> {
    let gs = GemStone::in_memory();
    let mut teller = gs.login("system")?;

    // Accounts are plain objects; balances are just elements with history.
    teller.run(
        "Accounts := Dictionary new.
         #('alice' 'bob' 'carol') do: [:n | | a |
             a := Dictionary new.
             a at: #owner put: n.
             a at: #balance put: 1000.
             Accounts at: n put: a]",
    )?;
    let opened = teller.commit()?;
    println!("accounts opened at t{}", opened.ticks());

    // ---- Concurrent transfers from two tellers, retry on conflict. ------
    let transfer = |s: &mut gemstone::Session, from: &str, to: &str, amount: i64| loop {
        s.run(&format!(
            "| a b | a := Accounts at: '{from}'. b := Accounts at: '{to}'.
             (a at: #balance) >= {amount}
                 ifTrue: [a at: #balance put: (a at: #balance) - {amount}.
                          b at: #balance put: (b at: #balance) + {amount}]
                 ifFalse: [System error: 'insufficient funds']"
        ))
        .unwrap();
        match s.commit() {
            Ok(t) => return t,
            Err(GemError::TransactionConflict { .. }) => continue,
            Err(e) => panic!("{e}"),
        }
    };

    let mut teller2 = gs.login("system")?;
    let times = [
        transfer(&mut teller, "alice", "bob", 300),
        transfer(&mut teller2, "bob", "carol", 150),
        transfer(&mut teller, "carol", "alice", 75),
        transfer(&mut teller2, "alice", "carol", 40),
    ];
    for (i, t) in times.iter().enumerate() {
        println!("transfer #{} committed at t{}", i + 1, t.ticks());
    }

    // ---- Invariant: money is conserved in every state. -------------------
    let total_src = "Accounts __elements inject: 0 into: [:sum :a | sum + (a at: #balance)]";
    let now_total = teller.run(total_src)?.as_int().unwrap();
    println!("\ntotal money now: {now_total}");
    for t in opened.ticks()..=times.last().unwrap().ticks() {
        teller.run(&format!("System timeDial: {t}"))?;
        let total = teller.run(total_src)?.as_int().unwrap();
        assert_eq!(total, 3000, "conservation violated at t{t}");
    }
    teller.run("System timeDialNow")?;
    println!(
        "money conserved in every past state (t{}..t{})",
        opened.ticks(),
        times.last().unwrap().ticks()
    );

    // ---- The audit: alice's balance through time. ------------------------
    println!("\nalice's statement (from element history, no audit table):");
    for t in opened.ticks()..=times.last().unwrap().ticks() {
        let v = teller.run(&format!("(Accounts at: 'alice') ! balance @ {t}"))?.as_int().unwrap();
        println!("  t{t:>2}: {v}");
    }

    // ---- A consistent report at SafeTime while writers run. --------------
    let mut auditor = gs.login("system")?;
    let safe = auditor.run("System safeTime")?.as_int().unwrap();
    auditor.run(&format!("System timeDial: {safe}"))?;
    let report = auditor.run_display(
        "Accounts __elements collect: [:a | (a at: #owner), ': ', (a at: #balance) printString]",
    )?;
    println!("\nauditor's SafeTime (t{safe}) report: {report}");

    // ---- Restart: the audit trail is durable. -----------------------------
    drop(teller);
    drop(teller2);
    drop(auditor);
    let disk = gs.shutdown()?;
    let gs = GemStone::open(disk, 128)?;
    let mut s = gs.login("system")?;
    let v = s.run(&format!("(Accounts at: 'alice') ! balance @ {}", opened.ticks()))?;
    println!(
        "\nafter restart, alice's opening balance (t{}) is still {}",
        opened.ticks(),
        v.as_int().unwrap()
    );
    Ok(())
}
