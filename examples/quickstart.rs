//! Quickstart: the GemStone system in five minutes.
//!
//! Creates a database, defines the paper's Employee/Manager classes from
//! OPAL source (§4.1), stores objects, commits, queries declaratively,
//! travels in time, and survives a restart.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gemstone::{GemStone, StoreConfig};

fn main() -> gemstone::GemResult<()> {
    // One shared database; sessions log in (§6: the Executor "controls
    // sessions … on behalf of users").
    let gs = GemStone::create(StoreConfig::default())?;
    let mut s = gs.login("system")?;

    // ---- Type definition is just messages (§4.1). -----------------------
    s.run(
        "Object subclass: 'Employee' instVarNames: #('name' 'salary' 'depts').
         Employee subclass: 'Manager' instVarNames: #('departmentManaged').
         Employee compile: 'raiseBy: pct
             salary := salary + (salary * pct / 100) asInteger. ^salary'",
    )?;

    // ---- Populate and commit. -------------------------------------------
    s.run(
        "| e |
         Staff := Set new.
         e := Employee new. e name: 'Ellen Burns'.   e salary: 24650. Staff add: e.
         e := Employee new. e name: 'Robert Peters'. e salary: 24000. Staff add: e.
         e := Manager new.  e name: 'Dana Carter'.   e salary: 41000.
         e departmentManaged: 'Research'. Staff add: e",
    )?;
    let t1 = s.commit()?;
    println!("committed staff at {t1}");

    // ---- Declarative selection (§5.1): compiled through the calculus. ---
    let who = s.run_display("(Staff select: [:e | e salary > 24500]) collect: [:e | e name]")?;
    println!("earning over 24500: {who}");

    // ---- A real-world change as one message (§2D). ----------------------
    s.run("Staff do: [:e | e raiseBy: 10]")?;
    let t2 = s.commit()?;
    println!("10% raise committed at {t2}");

    // ---- Time travel (§5.3): the pre-raise state is still there. --------
    s.run(&format!("System timeDial: {}", t1.ticks()))?;
    let before = s.run_display("Staff collect: [:e | e salary]")?;
    s.run("System timeDialNow")?;
    let after = s.run_display("Staff collect: [:e | e salary]")?;
    println!("salaries then: {before}");
    println!("salaries now:  {after}");

    // ---- Identity: managers are employees (§4.1). ------------------------
    let v = s.run("(Staff detect: [:e | e isKindOf: Manager]) salary")?;
    println!("the manager now earns {}", v.as_int().unwrap());

    // ---- Restart: everything recovers from the track store (§6). --------
    drop(s);
    let disk = gs.shutdown()?;
    let gs = GemStone::open(disk, 256)?;
    let mut s = gs.login("system")?;
    let n = s.run("Staff size")?;
    let v = s.run("(Staff detect: [:e | e isKindOf: Manager]) raiseBy: 5")?;
    println!(
        "after restart: {} employees, manager raised again to {}",
        n.as_int().unwrap(),
        v.as_int().unwrap()
    );
    Ok(())
}
