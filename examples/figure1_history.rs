//! Figure 1, executably: "A Database with History".
//!
//! Builds the paper's exact temporal object graph — Acme Corp, presidents
//! Ayn Rand and Milton Friedman, employees, cities and the company car —
//! with the figure's transaction times (2, 3, 5, 8, 12), then answers every
//! path query from §5.3.2 and walks the time dial across the whole history.
//!
//! ```sh
//! cargo run --example figure1_history
//! ```

use gemstone::{GemStone, Session};

fn pad_to(session: &mut Session, target: u64) {
    loop {
        let now = session.run("System currentTime").unwrap().as_int().unwrap() as u64;
        if now + 1 >= target {
            return;
        }
        session.run("Filler := Object new").unwrap();
        session.commit().unwrap();
    }
}

fn main() -> gemstone::GemResult<()> {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system")?;

    println!("building Figure 1 with the paper's transaction times…\n");

    s.run(
        "World := Dictionary new.
         Acme := Dictionary new.  Employees := Dictionary new.  Car := Dictionary new.
         World at: 'Acme Corp' put: Acme.
         Acme at: #employees put: Employees.
         Acme at: #companyCar put: Car",
    )?;
    println!("t{}: Acme Corp founded", s.commit()?.ticks());

    s.run(
        "Ayn := Dictionary new.
         Ayn at: #name put: 'Ayn Rand'. Ayn at: #city put: 'Portland'.
         Employees at: 1821 put: Ayn",
    )?;
    println!("t{}: Ayn Rand hired (employee 1821), lives in Portland", s.commit()?.ticks());

    s.run(
        "Milton := Dictionary new.
         Milton at: #name put: 'Milton Friedman'. Milton at: #city put: 'Seattle'.
         Employees at: 1372 put: Milton",
    )?;
    println!("t{}: Milton Friedman hired (employee 1372), lives in Seattle", s.commit()?.ticks());

    pad_to(&mut s, 5);
    s.run("Acme at: #president put: Ayn. Car at: #assignedTo put: Ayn")?;
    println!("t{}: Ayn becomes president; the company car is hers", s.commit()?.ticks());

    pad_to(&mut s, 8);
    s.run(
        "Acme at: #president put: Milton.
         Milton at: #city put: 'Portland'.
         Employees removeKey: 1821",
    )?;
    println!(
        "t{}: presidency changes to Milton (moves to Portland); Ayn leaves",
        s.commit()?.ticks()
    );

    pad_to(&mut s, 12);
    s.run("Ayn at: #city put: 'San Diego'. Car removeKey: #assignedTo")?;
    println!("t{}: Ayn moves to San Diego and returns the car\n", s.commit()?.ticks());

    // -------- §5.3.2's path queries, verbatim. ---------------------------
    let queries = [
        ("World ! 'Acme Corp' ! president ! name", "the current president"),
        ("World ! 'Acme Corp' ! president @ 10 ! name", "the president at time 10"),
        ("World ! 'Acme Corp' ! president @ 7 ! name", "the president at time 7"),
        ("World ! 'Acme Corp' ! president @ 7 ! city", "the previous president's *current* city"),
    ];
    for (q, caption) in queries {
        println!("{q}\n  → {}   ({caption})", s.run_display(q)?);
    }

    // -------- The time dial sweeps the whole history. --------------------
    println!("\ntime dial sweep — company state at each moment:");
    for t in 1..=12 {
        s.run(&format!("System timeDial: {t}"))?;
        let emps = s.run("(World ! 'Acme Corp' ! employees) size")?.as_int().unwrap();
        let pres = s
            .run_display(
                "| p | p := (World ! 'Acme Corp') at: #president.
                 p isNil ifTrue: ['—'] ifFalse: [p at: #name]",
            )
            .unwrap();
        let car = s
            .run_display(
                "| a | a := (World ! 'Acme Corp' ! companyCar) at: #assignedTo.
                 a isNil ifTrue: ['unassigned'] ifFalse: [a at: #name]",
            )
            .unwrap();
        println!("  t{t:>2}: {emps} employee(s), president {pres:<18} car: {car}");
    }
    s.run("System timeDialNow")?;

    println!("\nno state was ever deleted — \"deletion was invented as a means of");
    println!("reusing expensive on-line computer storage\" (§2E); GemStone keeps it all.");
    Ok(())
}
