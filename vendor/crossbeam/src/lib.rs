//! Offline stand-in for the `crossbeam` crate: `crossbeam::scope` built on
//! `std::thread::scope`. The spawn closure receives `&Scope` (crossbeam's
//! signature), and a panicking child surfaces as `Err` from `scope` rather
//! than a propagated panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// A scope handle; spawned threads may themselves spawn through it.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

/// Run `f` with a scope in which borrowing threads can be spawned; every
/// thread is joined before `scope` returns. Returns `Err` if `f` or an
/// unjoined child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope(s)))))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let total = super::scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).count()
        })
        .unwrap();
        assert_eq!(total, 4);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn panicking_child_is_an_err() {
        let r = super::scope(|s| {
            let h = s.spawn(|_| panic!("child down"));
            drop(h); // not joined: std::thread::scope re-panics at exit
        });
        assert!(r.is_err());
    }
}
