//! Offline stand-in for the `criterion` crate. It accepts the same harness
//! surface the workspace benches use (`criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`) and reports a crude median wall time. Under `cargo test`
//! (no `--bench` flag) every closure runs exactly once, keeping the tier-1
//! suite fast; statistical rigor is explicitly out of scope.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Names a benchmark within a group, e.g. `BenchmarkId::new("hash", n)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }
}

/// Anything usable as a bench id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to each benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    iters: u32,
    median_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        self.median_ns = samples[samples.len() / 2];
    }

    /// Per-iteration setup excluded from the (crude) timing: only the
    /// routine is inside the timed window, matching real criterion.
    pub fn iter_with_setup<S, I, O, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        self.median_ns = samples[samples.len() / 2];
    }
}

/// The harness entry point.
pub struct Criterion {
    /// True when invoked by `cargo bench` (measure); false under
    /// `cargo test` (smoke-run once).
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    fn iters(&self) -> u32 {
        if self.measure {
            5
        } else {
            1
        }
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Criterion {
        let name = id.into_id();
        run_one(&name, self.iters(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, self.parent.iters(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Accepted for API compatibility; ignored by the stub.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u32, mut f: F) {
    let mut b = Bencher { iters, median_ns: 0 };
    f(&mut b);
    println!("bench {name}: median {} ns over {} iters (stub harness)", b.median_ns, iters);
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion { measure: false };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("G");
            g.sample_size(10);
            g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| ran += 1));
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| ()));
        assert_eq!(ran, 1, "test mode runs the routine exactly once");
    }
}
