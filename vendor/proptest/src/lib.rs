//! Offline stand-in for the `proptest` crate: the macro/strategy surface
//! this workspace uses, backed by a seeded deterministic generator.
//!
//! Differences from the real crate, accepted deliberately:
//! - **no shrinking** — a failing case reports its generated inputs as-is;
//! - the RNG stream differs, so case sequences differ;
//! - only the combinators the workspace uses exist: integer ranges, tuple
//!   strategies, [`Just`], `prop_map`, `prop_oneof!`, `collection::vec`,
//!   `any::<bool>()`.
//!
//! Cases are seeded per test-function name and case index, so runs are
//! reproducible; set `PROPTEST_CASES` to override the case count globally.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator state (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A generator of values; the simplified core of proptest's trait.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, the currency of `prop_oneof!`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed alternatives.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty => $wide:ty),+ $(,)?) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                ((self.start as $wide).wrapping_add(rng.below(span) as $wide)) as $ty
            }
        })+
    };
}

range_strategy! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })+
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support for the handful of types the workspace asks for.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// Case count, overridable via `PROPTEST_CASES`.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// FNV-1a over the test name, so each test gets its own stream.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes().chain(case.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// The `prop::` namespace (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.resolved_cases() {
                let mut rng = $crate::TestRng::from_seed(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?} "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {e}\n  inputs: {inputs}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8, i64),
        Del(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..4, -50i64..50).prop_map(|(k, v)| Op::Put(k, v)),
            (0u8..4).prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_hold(x in 0u8..4, y in -50i64..50) {
            prop_assert!(x < 4);
            prop_assert!((-50..50).contains(&y), "y = {}", y);
        }

        fn vecs_respect_size(ops in prop::collection::vec(op(), 1..30)) {
            prop_assert!(!ops.is_empty() && ops.len() < 30);
            for o in &ops {
                if let Op::Put(k, _) | Op::Del(k) = o {
                    prop_assert!(*k < 4);
                }
            }
        }

        fn any_bool_varies(flag in any::<bool>(), n in 0u32..10) {
            prop_assert!(n < 10, "flag was {:?}", flag);
        }
    }

    proptest! {
        fn default_config_runs(x in 0i64..5) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let mut a = crate::TestRng::from_seed(crate::seed_for("t", 3));
        let mut b = crate::TestRng::from_seed(crate::seed_for("t", 3));
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_seed(crate::seed_for("t", 4));
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
