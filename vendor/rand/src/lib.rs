//! Offline stand-in for the `rand` crate. Deterministic xoshiro256**
//! seeded via SplitMix64; `Rng::gen_range` over half-open integer ranges.
//! The streams differ from the real `StdRng` (ChaCha12), so any committed
//! benchmark counts generated with the real crate must be regenerated.

use std::ops::Range;

/// Core pseudo-random source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty => $wide:ty),+ $(,)?) => {
        $(impl SampleUniform for $ty {
            fn sample<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Debiased modulo: rejection-sample the top remainder zone.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return ((range.start as $wide).wrapping_add((v % span) as $wide)) as $ty;
                    }
                }
            }
        })+
    };
}

uniform_int! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

/// Types sampleable by `Rng::gen()`.
pub trait Standard: Sized {
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — not the real StdRng (ChaCha12), but a solid
    /// deterministic generator with the same construction API.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range(3u32..9);
            assert!((3..9).contains(&u));
            let s = r.gen_range(0usize..5);
            assert!(s < 5);
        }
    }

    #[test]
    fn full_width_span_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v: i64 = r.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn coverage_of_small_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
