//! Offline stand-in for the `bytes` crate: just the `Buf`/`BufMut` cursor
//! traits over `&[u8]` / `Vec<u8>`, which is all the storage format code
//! uses. Reads past the end panic, matching the real crate.

macro_rules! get_le {
    ($($fn:ident -> $ty:ty),+ $(,)?) => {
        $(fn $fn(&mut self) -> $ty {
            let n = std::mem::size_of::<$ty>();
            let mut raw = [0u8; std::mem::size_of::<$ty>()];
            self.copy_to_slice(&mut raw[..n]);
            <$ty>::from_le_bytes(raw)
        })+
    };
}

/// Read cursor over a byte slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i16_le -> i16,
        get_i32_le -> i32,
        get_i64_le -> i64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

macro_rules! put_le {
    ($($fn:ident($ty:ty)),+ $(,)?) => {
        $(fn $fn(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        })+
    };
}

/// Append cursor over a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i16_le(i16),
        put_i32_le(i32),
        put_i64_le(i64),
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-9);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
