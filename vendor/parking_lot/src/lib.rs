//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. Only the API surface this workspace uses is provided:
//! `Mutex`, `RwLock`, and their guards, with parking_lot's no-poisoning
//! semantics (a panicked holder does not wedge the lock).

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that, like parking_lot's, never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that, like parking_lot's, never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable");
    }
}
