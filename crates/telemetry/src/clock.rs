//! Injectable, strictly monotonic nanosecond clock.
//!
//! Every duration measured through [`TelemetryClock`] is guaranteed to be
//! nonzero: `now_ns` never returns the same value twice.  Under a
//! [`ManualTime`] source this makes span and histogram tests fully
//! deterministic — two successive reads one statement apart differ by at
//! least 1 ns even if the test never advances the clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A hand-cranked time source for deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct ManualTime(Arc<AtomicU64>);

impl ManualTime {
    /// A new source at t = 0 ns.
    pub fn new() -> ManualTime {
        ManualTime::default()
    }

    /// Advance the source by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Jump the source to an absolute nanosecond value.
    pub fn set(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }

    /// The current raw value (before monotonic correction).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Source {
    Wall(Instant),
    Manual(ManualTime),
}

/// A shared clock handle; clones observe the same timeline.
#[derive(Clone, Debug)]
pub struct TelemetryClock {
    source: Source,
    last: Arc<AtomicU64>,
}

impl TelemetryClock {
    /// A wall clock anchored at construction time (t = 0 at creation).
    pub fn wall() -> TelemetryClock {
        TelemetryClock { source: Source::Wall(Instant::now()), last: Arc::new(AtomicU64::new(0)) }
    }

    /// A clock driven by a [`ManualTime`] source.
    pub fn manual(source: ManualTime) -> TelemetryClock {
        TelemetryClock { source: Source::Manual(source), last: Arc::new(AtomicU64::new(0)) }
    }

    /// Nanoseconds since the clock epoch, strictly increasing across every
    /// clone of this clock.
    pub fn now_ns(&self) -> u64 {
        let raw = match &self.source {
            Source::Wall(base) => base.elapsed().as_nanos() as u64,
            Source::Manual(m) => m.get(),
        };
        let mut prev = self.last.load(Ordering::Relaxed);
        loop {
            let next = raw.max(prev + 1);
            match self.last.compare_exchange_weak(prev, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(seen) => prev = seen,
            }
        }
    }
}

impl Default for TelemetryClock {
    fn default() -> TelemetryClock {
        TelemetryClock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_monotonic_under_manual_source() {
        let src = ManualTime::new();
        let clock = TelemetryClock::manual(src.clone());
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b > a, "stalled source still yields distinct stamps");
        src.advance(1_000);
        let c = clock.now_ns();
        assert!(c >= 1_000 && c > b);
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = TelemetryClock::manual(ManualTime::new());
        let other = clock.clone();
        let a = clock.now_ns();
        let b = other.now_ns();
        assert!(b > a);
    }

    #[test]
    fn wall_clock_advances() {
        let clock = TelemetryClock::wall();
        assert!(clock.now_ns() < clock.now_ns());
    }
}
