//! The live time-series observatory: a bounded in-memory ring of
//! periodic [`MetricsSnapshot`] samples with windowed rate queries and
//! threshold anomaly detectors.
//!
//! The observatory is **pull-based**: a driver (the REPL, `gemtop`, a
//! bench loop) calls [`Observatory::tick`], which samples the registry
//! if the configured interval has elapsed and appends to the ring.
//! There are no hooks on any hot path — counters are read, never
//! written, so the engine pays structurally zero overhead whether the
//! ring is on or off.  Disabled (the default), a tick is one relaxed
//! atomic load.
//!
//! Rate queries diff the newest sample against the oldest sample inside
//! a window and normalise by the samples' own timestamps, so rates stay
//! honest even when ticks arrive unevenly.  The anomaly detectors
//! (abort storm, fsync stall, cache thrash) are edge-triggered: a
//! condition fires once when it becomes true and re-arms when it clears,
//! so a driver can capture one diagnostic bundle per episode rather
//! than one per tick.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing and cadence for the observatory ring.
#[derive(Clone, Debug)]
pub struct ObservatoryConfig {
    /// Keep at most this many samples; the oldest are dropped.
    pub capacity: usize,
    /// Minimum microseconds between samples; ticks inside the interval
    /// are no-ops, so drivers may call [`Observatory::tick`] as often as
    /// they like.
    pub interval_us: u64,
    /// Thresholds for the anomaly detectors.
    pub thresholds: AnomalyThresholds,
}

impl Default for ObservatoryConfig {
    fn default() -> ObservatoryConfig {
        ObservatoryConfig {
            capacity: 128,
            interval_us: 1_000_000,
            thresholds: AnomalyThresholds::default(),
        }
    }
}

/// When the detectors cry foul.  A detector only fires once its
/// denominator passes the matching `min_*` floor, so a quiet window
/// (two aborts out of two commits) never reads as a storm.
#[derive(Clone, Debug)]
pub struct AnomalyThresholds {
    /// Abort storm: conflict aborts exceed this share of commit attempts.
    pub abort_pct: f64,
    /// …with at least this many aborts in the window.
    pub min_aborts: u64,
    /// Fsync stall: the windowed fsync p99 exceeds this many µs.
    pub fsync_stall_us: u64,
    /// …with at least this many barriers in the window.
    pub min_fsyncs: u64,
    /// Cache thrash: the windowed hit rate drops below this percentage.
    pub cache_hit_pct: f64,
    /// …with at least this many cache accesses in the window.
    pub min_cache_accesses: u64,
    /// Plan drift: at least this many `PlanDrift` episodes in the window
    /// (sustained estimate misses, not a single cold-stats outlier).
    pub min_plan_drifts: u64,
}

impl Default for AnomalyThresholds {
    fn default() -> AnomalyThresholds {
        AnomalyThresholds {
            abort_pct: 50.0,
            min_aborts: 8,
            fsync_stall_us: 100_000,
            min_fsyncs: 8,
            cache_hit_pct: 50.0,
            min_cache_accesses: 64,
            min_plan_drifts: 2,
        }
    }
}

/// One ring entry: the full registry state at one instant.
#[derive(Clone, Debug)]
pub struct ObservatorySample {
    /// Telemetry-clock timestamp in microseconds.
    pub at_us: u64,
    pub snap: MetricsSnapshot,
}

/// Headline rates over one window of the ring, derived purely from the
/// oldest and newest samples inside it.
#[derive(Clone, Debug, Default)]
pub struct WindowStats {
    /// Microseconds between the two samples the stats were derived from.
    pub span_us: u64,
    /// Samples inside the window (0 or 1 means no rates available).
    pub samples: usize,
    pub commits: u64,
    pub aborts: u64,
    pub conflicts: u64,
    pub commits_per_s: f64,
    pub aborts_per_s: f64,
    /// Conflict aborts as a share of commit attempts (commits + aborts).
    pub abort_pct: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_pct: f64,
    pub fsyncs: u64,
    pub fsync_p50_us: u64,
    pub fsync_p99_us: u64,
    pub statements_per_s: f64,
    /// `PlanDrift` episodes journaled inside the window.
    pub plan_drifts: u64,
    /// Planning decisions taken inside the window.
    pub plan_choices: u64,
}

impl WindowStats {
    fn from_window(
        oldest: &ObservatorySample,
        newest: &ObservatorySample,
        n: usize,
    ) -> WindowStats {
        let d = newest.snap.diff(&oldest.snap);
        let span_us = newest.at_us.saturating_sub(oldest.at_us);
        let secs = span_us as f64 / 1e6;
        let per_s = |v: u64| if span_us == 0 { 0.0 } else { v as f64 / secs };
        let commits = d.counter("txn.commits");
        let aborts = d.counter("txn.aborts");
        let conflicts = d.counter("txn.conflicts");
        let attempts = commits + aborts;
        let cache_hits = d.counter("storage.cache.hits");
        let cache_misses = d.counter("storage.cache.misses");
        let accesses = cache_hits + cache_misses;
        let fsync = d.histogram("storage.disk.fsync_us");
        WindowStats {
            span_us,
            samples: n,
            commits,
            aborts,
            conflicts,
            commits_per_s: per_s(commits),
            aborts_per_s: per_s(aborts),
            abort_pct: if attempts == 0 { 0.0 } else { aborts as f64 * 100.0 / attempts as f64 },
            cache_hits,
            cache_misses,
            cache_hit_pct: if accesses == 0 {
                100.0
            } else {
                cache_hits as f64 * 100.0 / accesses as f64
            },
            fsyncs: fsync.map(|h| h.count).unwrap_or(0),
            fsync_p50_us: fsync.map(|h| h.quantile(0.50)).unwrap_or(0),
            fsync_p99_us: fsync.map(|h| h.quantile(0.99)).unwrap_or(0),
            statements_per_s: per_s(d.counter("session.statements")),
            plan_drifts: d.counter("calculus.plan.drift"),
            plan_choices: d.counter("calculus.plan.choices"),
        }
    }
}

/// One detector firing: carried to the driver so it can name the
/// diagnostic bundle it captures.
#[derive(Clone, Debug, PartialEq)]
pub enum Anomaly {
    /// Conflict aborts dominate commit attempts.
    AbortStorm { abort_pct: f64, aborts: u64 },
    /// Durability barriers are slow.
    FsyncStall { p99_us: u64, fsyncs: u64 },
    /// The track cache stopped absorbing reads.
    CacheThrash { hit_pct: f64, accesses: u64 },
    /// The planner's cardinality estimates keep missing: sustained
    /// `PlanDrift` episodes inside one window.
    PlanDrift { drifts: u64, choices: u64 },
}

impl Anomaly {
    /// Stable slug for bundle names and logs.
    pub fn slug(&self) -> &'static str {
        match self {
            Anomaly::AbortStorm { .. } => "abort-storm",
            Anomaly::FsyncStall { .. } => "fsync-stall",
            Anomaly::CacheThrash { .. } => "cache-thrash",
            Anomaly::PlanDrift { .. } => "plan-drift",
        }
    }

    /// Human line for logs and the gemtop status row.
    pub fn describe(&self) -> String {
        match self {
            Anomaly::AbortStorm { abort_pct, aborts } => {
                format!("abort storm: {abort_pct:.0}% of commit attempts aborted ({aborts} aborts)")
            }
            Anomaly::FsyncStall { p99_us, fsyncs } => {
                format!("fsync stall: p99 {p99_us}µs over {fsyncs} barriers")
            }
            Anomaly::CacheThrash { hit_pct, accesses } => {
                format!("cache thrash: {hit_pct:.0}% hit rate over {accesses} accesses")
            }
            Anomaly::PlanDrift { drifts, choices } => {
                format!("plan drift: {drifts} drift episodes over {choices} plan choices")
            }
        }
    }

    fn bit(&self) -> u64 {
        match self {
            Anomaly::AbortStorm { .. } => 1,
            Anomaly::FsyncStall { .. } => 2,
            Anomaly::CacheThrash { .. } => 4,
            Anomaly::PlanDrift { .. } => 8,
        }
    }
}

struct ObservatoryShared {
    enabled: AtomicBool,
    interval_us: AtomicU64,
    last_sample_us: AtomicU64,
    /// Bitmask of currently-active anomaly kinds (edge-trigger state).
    active_anomalies: AtomicU64,
    inner: Mutex<RingInner>,
}

struct RingInner {
    capacity: usize,
    thresholds: AnomalyThresholds,
    ring: VecDeque<ObservatorySample>,
}

/// A handle on the observatory; clones share one ring.
#[derive(Clone)]
pub struct Observatory(Arc<ObservatoryShared>);

impl std::fmt::Debug for Observatory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observatory")
            .field("enabled", &self.enabled())
            .field("samples", &self.len())
            .finish()
    }
}

impl Default for Observatory {
    fn default() -> Observatory {
        Observatory::disabled()
    }
}

impl Observatory {
    /// An observatory that is off until [`Observatory::enable`] is called.
    pub fn disabled() -> Observatory {
        Observatory(Arc::new(ObservatoryShared {
            enabled: AtomicBool::new(false),
            interval_us: AtomicU64::new(1_000_000),
            last_sample_us: AtomicU64::new(0),
            active_anomalies: AtomicU64::new(0),
            inner: Mutex::new(RingInner {
                capacity: 128,
                thresholds: AnomalyThresholds::default(),
                ring: VecDeque::new(),
            }),
        }))
    }

    /// Start sampling with `cfg`; clears any previous ring contents.
    pub fn enable(&self, cfg: ObservatoryConfig) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.capacity = cfg.capacity.max(2);
        inner.thresholds = cfg.thresholds;
        inner.ring.clear();
        self.0.interval_us.store(cfg.interval_us, Ordering::Relaxed);
        self.0.last_sample_us.store(0, Ordering::Relaxed);
        self.0.active_anomalies.store(0, Ordering::Relaxed);
        self.0.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop sampling and drop the ring contents.
    pub fn disable(&self) {
        self.0.enabled.store(false, Ordering::Relaxed);
        self.0.inner.lock().unwrap().ring.clear();
        self.0.active_anomalies.store(0, Ordering::Relaxed);
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.0.inner.lock().unwrap().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sample `registry` at time `now_us` if enabled and the interval
    /// has elapsed; returns anomalies that **newly became true** on this
    /// sample (edge-triggered — a persisting condition does not refire
    /// until it has cleared for a full sample first).
    pub fn tick(&self, registry: &MetricsRegistry, now_us: u64) -> Vec<Anomaly> {
        if !self.enabled() {
            return Vec::new();
        }
        let last = self.0.last_sample_us.load(Ordering::Relaxed);
        let interval = self.0.interval_us.load(Ordering::Relaxed);
        if last != 0 && now_us.saturating_sub(last) < interval {
            return Vec::new();
        }
        // One sampler wins the slot; concurrent ticks bail out.
        if self
            .0
            .last_sample_us
            .compare_exchange(last, now_us.max(last + 1), Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return Vec::new();
        }
        let snap = registry.snapshot();
        let mut inner = self.0.inner.lock().unwrap();
        inner.ring.push_back(ObservatorySample { at_us: now_us, snap });
        while inner.ring.len() > inner.capacity {
            inner.ring.pop_front();
        }
        // Detect over the freshest short window: the last two samples.
        let stats = match window_stats(&inner.ring, 2) {
            Some(s) => s,
            None => return Vec::new(),
        };
        let found = detect(&stats, &inner.thresholds);
        drop(inner);
        let mask: u64 = found.iter().map(Anomaly::bit).sum();
        let prev = self.0.active_anomalies.swap(mask, Ordering::Relaxed);
        found.into_iter().filter(|a| prev & a.bit() == 0).collect()
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<ObservatorySample> {
        self.0.inner.lock().unwrap().ring.back().cloned()
    }

    /// Clone out the whole ring, oldest first.
    pub fn samples(&self) -> Vec<ObservatorySample> {
        self.0.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Rates over the newest `window` samples (capped at the ring size).
    /// `None` until two samples exist.
    pub fn window(&self, window: usize) -> Option<WindowStats> {
        window_stats(&self.0.inner.lock().unwrap().ring, window)
    }

    /// Rates over the whole ring.
    pub fn overall(&self) -> Option<WindowStats> {
        self.window(usize::MAX)
    }

    /// Anomaly kinds active as of the last tick (for status rows).
    pub fn active_anomalies(&self) -> Vec<&'static str> {
        let mask = self.0.active_anomalies.load(Ordering::Relaxed);
        let mut out = Vec::new();
        if mask & 1 != 0 {
            out.push("abort-storm");
        }
        if mask & 2 != 0 {
            out.push("fsync-stall");
        }
        if mask & 4 != 0 {
            out.push("cache-thrash");
        }
        if mask & 8 != 0 {
            out.push("plan-drift");
        }
        out
    }
}

fn window_stats(ring: &VecDeque<ObservatorySample>, window: usize) -> Option<WindowStats> {
    if ring.len() < 2 {
        return None;
    }
    let n = window.clamp(2, ring.len());
    let oldest = &ring[ring.len() - n];
    let newest = ring.back().unwrap();
    Some(WindowStats::from_window(oldest, newest, n))
}

/// Apply the threshold detectors to one window.
pub fn detect(stats: &WindowStats, t: &AnomalyThresholds) -> Vec<Anomaly> {
    let mut out = Vec::new();
    if stats.aborts >= t.min_aborts && stats.abort_pct >= t.abort_pct {
        out.push(Anomaly::AbortStorm { abort_pct: stats.abort_pct, aborts: stats.aborts });
    }
    if stats.fsyncs >= t.min_fsyncs && stats.fsync_p99_us >= t.fsync_stall_us {
        out.push(Anomaly::FsyncStall { p99_us: stats.fsync_p99_us, fsyncs: stats.fsyncs });
    }
    if stats.cache_hits + stats.cache_misses >= t.min_cache_accesses
        && stats.cache_hit_pct < t.cache_hit_pct
    {
        out.push(Anomaly::CacheThrash {
            hit_pct: stats.cache_hit_pct,
            accesses: stats.cache_hits + stats.cache_misses,
        });
    }
    if stats.plan_drifts >= t.min_plan_drifts {
        out.push(Anomaly::PlanDrift { drifts: stats.plan_drifts, choices: stats.plan_choices });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(interval_us: u64) -> ObservatoryConfig {
        ObservatoryConfig { capacity: 4, interval_us, thresholds: AnomalyThresholds::default() }
    }

    #[test]
    fn disabled_observatory_samples_nothing() {
        let o = Observatory::disabled();
        let r = MetricsRegistry::new();
        assert!(o.tick(&r, 1_000_000).is_empty());
        assert!(o.is_empty());
        assert!(o.latest().is_none());
        assert!(o.window(2).is_none());
    }

    #[test]
    fn interval_gates_sampling_and_capacity_bounds_ring() {
        let o = Observatory::disabled();
        let r = MetricsRegistry::new();
        o.enable(cfg(1_000_000));
        for i in 0..10u64 {
            o.tick(&r, i * 250_000 + 1); // 4 ticks per interval
        }
        assert!(o.len() <= 4, "quarter-interval ticks are mostly no-ops: {}", o.len());
        o.enable(cfg(1));
        for i in 0..10u64 {
            o.tick(&r, (i + 1) * 1_000_000);
        }
        assert_eq!(o.len(), 4, "capacity bounds the ring");
    }

    #[test]
    fn window_rates_are_normalised_by_sample_timestamps() {
        let o = Observatory::disabled();
        let r = MetricsRegistry::new();
        o.enable(cfg(1));
        o.tick(&r, 1_000_000);
        r.counter("txn.commits").add(50);
        r.counter("txn.aborts").add(50);
        r.counter("storage.cache.hits").add(10);
        r.counter("storage.cache.misses").add(30);
        o.tick(&r, 3_000_000); // 2 s later
        let w = o.window(2).expect("two samples");
        assert_eq!(w.commits, 50);
        assert_eq!(w.aborts, 50);
        assert!((w.commits_per_s - 25.0).abs() < 1e-9, "{}", w.commits_per_s);
        assert!((w.abort_pct - 50.0).abs() < 1e-9);
        assert!((w.cache_hit_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn anomalies_are_edge_triggered() {
        let o = Observatory::disabled();
        let r = MetricsRegistry::new();
        o.enable(cfg(1));
        o.tick(&r, 1_000_000);
        r.counter("txn.commits").add(2);
        r.counter("txn.aborts").add(20);
        let fired = o.tick(&r, 2_000_000);
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].slug(), "abort-storm");
        assert_eq!(o.active_anomalies(), vec!["abort-storm"]);

        // Still storming: no refire.
        r.counter("txn.aborts").add(20);
        assert!(o.tick(&r, 3_000_000).is_empty(), "persisting condition does not refire");

        // A calm window clears it...
        r.counter("txn.commits").add(100);
        assert!(o.tick(&r, 4_000_000).is_empty());
        assert!(o.active_anomalies().is_empty());

        // ...and the next storm fires again.
        r.counter("txn.aborts").add(20);
        let fired = o.tick(&r, 5_000_000);
        assert_eq!(fired.len(), 1, "re-armed after clearing");
    }

    #[test]
    fn fsync_stall_and_cache_thrash_detect() {
        let t = AnomalyThresholds::default();
        let mut s = WindowStats {
            fsyncs: 10,
            fsync_p99_us: 200_000,
            cache_hits: 10,
            cache_misses: 90,
            cache_hit_pct: 10.0,
            ..WindowStats::default()
        };
        let found = detect(&s, &t);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].slug(), "fsync-stall");
        assert_eq!(found[1].slug(), "cache-thrash");
        assert!(found[0].describe().contains("p99 200000µs"), "{}", found[0].describe());
        s.fsyncs = 2;
        s.cache_hits = 1;
        s.cache_misses = 2;
        assert!(detect(&s, &t).is_empty(), "denominator floors suppress quiet windows");
    }

    #[test]
    fn plan_drift_detects_and_edge_triggers() {
        let t = AnomalyThresholds::default();
        let s = WindowStats { plan_drifts: 3, plan_choices: 12, ..WindowStats::default() };
        let found = detect(&s, &t);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].slug(), "plan-drift");
        assert!(found[0].describe().contains("3 drift episodes"), "{}", found[0].describe());
        let calm = WindowStats { plan_drifts: 1, plan_choices: 50, ..WindowStats::default() };
        assert!(detect(&calm, &t).is_empty(), "a single cold-stats miss is not sustained drift");

        // Through the observatory: sustained drift fires once, then re-arms.
        let o = Observatory::disabled();
        let r = MetricsRegistry::new();
        o.enable(cfg(1));
        o.tick(&r, 1_000_000);
        r.counter("calculus.plan.drift").add(3);
        r.counter("calculus.plan.choices").add(10);
        let fired = o.tick(&r, 2_000_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].slug(), "plan-drift");
        assert_eq!(o.active_anomalies(), vec!["plan-drift"]);
        assert!(o.tick(&r, 3_000_000).is_empty(), "calm window clears it");
        assert!(o.active_anomalies().is_empty());
    }
}
