//! Unified telemetry for the GemStone reproduction.
//!
//! One instrument for every layer: a [`MetricsRegistry`] of named
//! counters, gauges, and log-scale histograms (lock-free on the hot
//! path), a hierarchical span [`Tracer`] (session → transaction →
//! statement → plan-operator / track-I/O) over a bounded ring buffer,
//! and a strictly monotonic injectable [`TelemetryClock`] so tests stay
//! deterministic.  Layers own their instrument handles and the registry
//! binds the same atomics by name, which is how the pre-existing stats
//! accessors (`DiskStats`, `CacheStats`, plan statistics, …) become thin
//! views over the registry rather than parallel bookkeeping.
//!
//! ```
//! use gemstone_telemetry::Telemetry;
//!
//! let t = Telemetry::new();
//! let reads = t.registry.counter("storage.disk.reads");
//! let before = t.registry.snapshot();
//! reads.add(3);
//! assert_eq!(t.registry.snapshot().diff(&before).counter("storage.disk.reads"), 3);
//! ```

mod bundle;
mod clock;
mod journal;
mod metrics;
mod ring;
mod trace;

pub use bundle::{
    CacheSweepPoint, ConflictProfile, DiagnosticBundle, DriftEpisode, EffectProfile,
    PlannerProfile, RecoverySummary, SlowEntry, TrackHeat,
};
pub use clock::{ManualTime, TelemetryClock};
pub use journal::{
    effect_class_counter, parse_flat, replay, FlatObject, Journal, JournalConfig, JournalEvent,
    JournalReadout, JsonValue, JOURNAL_SCHEMA, JOURNAL_SCHEMA_MIN,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsBatch, MetricsRegistry, MetricsSnapshot,
};
pub use ring::{
    detect, Anomaly, AnomalyThresholds, Observatory, ObservatoryConfig, ObservatorySample,
    WindowStats,
};
pub use trace::{OpenSpan, SpanEvent, SpanKind, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The full telemetry bundle one database shares across its sessions.
/// Clones share all state.
#[derive(Clone)]
pub struct Telemetry {
    pub registry: MetricsRegistry,
    pub tracer: Tracer,
    /// The persistent flight recorder (disabled until started).
    pub journal: Journal,
    /// The live time-series ring (disabled until enabled). Pull-based:
    /// sampling happens only when a driver ticks it, never on hot paths.
    pub observatory: Observatory,
    clock: TelemetryClock,
    next_session: Arc<AtomicU64>,
}

impl Telemetry {
    /// Wall-clock telemetry (tracing starts disabled).
    pub fn new() -> Telemetry {
        Telemetry::with_clock(TelemetryClock::wall())
    }

    /// Telemetry over an explicit clock.
    pub fn with_clock(clock: TelemetryClock) -> Telemetry {
        let registry = MetricsRegistry::new();
        let tracer = Tracer::new(clock.clone());
        registry.register_counter("telemetry.spans.recorded", &tracer.recorded_counter());
        registry.register_counter("telemetry.spans.dropped", &tracer.dropped_counter());
        Telemetry {
            registry,
            tracer,
            journal: Journal::disabled(),
            observatory: Observatory::disabled(),
            clock,
            next_session: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Tick the observatory against this telemetry's registry and clock.
    /// Returns anomalies that newly fired on this sample.  One relaxed
    /// atomic load when the observatory is disabled.
    pub fn observe(&self) -> Vec<Anomaly> {
        if !self.observatory.enabled() {
            return Vec::new();
        }
        self.observatory.tick(&self.registry, self.clock.now_ns() / 1_000)
    }

    /// Deterministic telemetry for tests: a hand-cranked clock plus its
    /// crank.
    pub fn manual() -> (Telemetry, ManualTime) {
        let src = ManualTime::new();
        (Telemetry::with_clock(TelemetryClock::manual(src.clone())), src)
    }

    pub fn clock(&self) -> &TelemetryClock {
        &self.clock
    }

    /// A fresh nonzero session id for span attribution.
    pub fn new_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}
