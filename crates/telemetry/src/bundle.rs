//! Diagnostic bundles: a journal readout distilled into the artefacts an
//! operator wants when something goes wrong.
//!
//! A bundle contains (a) the **track heat map** — reads/writes per track
//! plus a clustering-locality score grounding the paper's clustering
//! claim (§5: objects clustered onto whole tracks mean repeated reads
//! land on few distinct tracks); (b) a **cache hit-rate-vs-size sweep**
//! replaying the recorded access sequence through a standalone LRU model
//! at counterfactual capacities; (c) the **slow-statement log** mined
//! from the recorded statements; (d) the last **recovery pass**; and (e)
//! the **replayed metrics snapshot** with a verdict on whether it matches
//! the live registry — the determinism contract, checked on every bundle.
//!
//! Built here (not in the bench crate) so the `doctor` binary, the REPL's
//! `:doctor`, and `Database`'s auto-capture on structured failures all
//! share one implementation.

use crate::journal::{replay, JournalEvent, JournalReadout, JOURNAL_SCHEMA};
use crate::metrics::MetricsSnapshot;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-track I/O totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrackHeat {
    pub track: u64,
    pub reads: u64,
    pub writes: u64,
}

/// One point of the cache replay sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheSweepPoint {
    pub capacity: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheSweepPoint {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One mined slow statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry {
    pub session: u64,
    pub wall_ns: u64,
    pub label: String,
}

/// Effect-analysis activity distilled from the journal: summaries
/// computed per effect class, statement classification, and how often the
/// static read-only commit fast path fired.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EffectProfile {
    /// Summaries computed, total and per effect class in lattice order
    /// (Pure, ReadOnly, WritesLocal, WritesGlobal, Unknown).
    pub computed: u64,
    pub per_class: [u64; 5],
    pub stmts_classified: u64,
    pub stmts_static_ro: u64,
    pub static_ro_commits: u64,
    pub invalidations: u64,
}

impl EffectProfile {
    pub const CLASSES: [&'static str; 5] =
        ["Pure", "ReadOnly", "WritesLocal", "WritesGlobal", "Unknown"];

    fn is_empty(&self) -> bool {
        self == &EffectProfile::default()
    }
}

/// Conflict forensics distilled from `TxnConflict` events: abort
/// attribution by kind plus per-object and per-track conflict heat
/// (which goops and which home tracks transactions keep colliding on).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ConflictProfile {
    /// Validation conflicts where the read and write sets overlapped.
    pub overlap: u64,
    /// Conservative refusals at the pruned-log watermark.
    pub watermark: u64,
    /// `(goop, conflicts)` hottest first, bounded.
    pub object_heat: Vec<(u64, u64)>,
    /// `(track, conflicts)` hottest first, bounded.
    pub track_heat: Vec<(u64, u64)>,
}

impl ConflictProfile {
    pub fn total(&self) -> u64 {
        self.overlap + self.watermark
    }

    fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

/// Heat entries kept per conflict table (objects, tracks).
const CONFLICT_HEAT_TOP_N: usize = 32;

/// One recorded `PlanDrift` episode: an operator whose actual row count
/// missed the planner's estimate past the drift threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftEpisode {
    pub session: u64,
    pub label: String,
    pub plan: String,
    pub op: u64,
    pub est: u64,
    pub actual: u64,
    pub err_pct: i64,
}

/// Planner health distilled from the statistics events: how often the
/// cost model actually drove choices, which statements keep missing
/// their estimates, how fresh each set's statistics are, and the most
/// recent drift episodes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PlannerProfile {
    pub choices: u64,
    pub cost_based: u64,
    pub replans: u64,
    pub stats_updates: u64,
    /// `(statement label, worst |err_pct|, drift episodes)` worst first,
    /// bounded at the planner top-N.
    pub worst_statements: Vec<(String, i64, u64)>,
    /// `(set goop, refreshes, last recorded cardinality)` most-refreshed
    /// first, bounded at the planner top-N.
    pub set_refreshes: Vec<(u64, u64, u64)>,
    /// The most recent drift episodes, oldest first, bounded at the
    /// planner top-N.
    pub drift_episodes: Vec<DriftEpisode>,
}

impl PlannerProfile {
    fn is_empty(&self) -> bool {
        self == &PlannerProfile::default()
    }
}

/// Entries kept per planner-health table.
const PLANNER_TOP_N: usize = 10;

/// The last recorded recovery pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoverySummary {
    pub roots_considered: u64,
    pub roots_valid: u64,
    pub roots_torn: u64,
    pub epoch: u64,
    pub tracks_salvaged: u64,
    pub tracks_discarded: u64,
    pub reopen_reads: u64,
}

/// A journal distilled for diagnosis.
#[derive(Clone, Debug)]
pub struct DiagnosticBundle {
    /// Why the bundle was captured (`"disk-dead"`, `"repl"`, …).
    pub reason: String,
    pub schema: u64,
    /// False when rotation deleted the journal's head: all absolute
    /// numbers below are then lower bounds.
    pub complete: bool,
    pub events: usize,
    /// Tracks sorted hottest-first by total I/O.
    pub heat: Vec<TrackHeat>,
    /// `1 − unique_tracks_read / reads`: 0 when every read visits a new
    /// track, approaching 1 when clustering concentrates reads on few
    /// tracks.
    pub locality_score: f64,
    /// Hit rate at counterfactual LRU capacities, replayed from the
    /// recorded access sequence.
    pub sweep: Vec<CacheSweepPoint>,
    /// The live cache capacity the journal recorded, if any.
    pub live_capacity: Option<u64>,
    /// True when the model at the live capacity reproduces the recorded
    /// hit/miss counts exactly (sanity for the whole sweep).
    pub sweep_validated: Option<bool>,
    /// Top statements by wall time, slowest first.
    pub slow_statements: Vec<SlowEntry>,
    /// Effect-analysis activity (all zeros when no effect events were
    /// recorded).
    pub effects: EffectProfile,
    /// Conflict forensics (all zeros when no conflicts were recorded).
    pub conflicts: ConflictProfile,
    /// Planner health distilled from the statistics events.
    pub planner: PlannerProfile,
    pub recovery: Option<RecoverySummary>,
    /// The journal replayed through a fresh registry.
    pub replayed: MetricsSnapshot,
    /// Whether `replayed` is byte-identical to the live snapshot
    /// (`None` when no live snapshot was supplied).  Expected true for a
    /// journal recorded from birth with span tracing off.
    pub replay_matches_live: Option<bool>,
}

const SLOW_TOP_N: usize = 10;

impl DiagnosticBundle {
    /// Distill `readout` into a bundle; `live` enables the determinism
    /// verdict.
    pub fn build(
        readout: &JournalReadout,
        live: Option<&MetricsSnapshot>,
        reason: &str,
    ) -> DiagnosticBundle {
        let events = &readout.events;
        let (heat, locality_score) = heat_map(events);
        let live_capacity = events.iter().rev().find_map(|e| match e {
            JournalEvent::CacheConfigured { tracks } => Some(*tracks),
            _ => None,
        });
        let (sweep, sweep_validated) = cache_sweep(events, live_capacity);
        let mut slow: Vec<SlowEntry> = events
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Statement { session, wall_ns, label } => {
                    Some(SlowEntry { session: *session, wall_ns: *wall_ns, label: label.clone() })
                }
                _ => None,
            })
            .collect();
        slow.sort_by_key(|s| std::cmp::Reverse(s.wall_ns));
        slow.truncate(SLOW_TOP_N);
        let mut effects = EffectProfile::default();
        for e in events {
            match e {
                JournalEvent::EffectSummary { effect, .. } => {
                    effects.computed += 1;
                    let i = EffectProfile::CLASSES
                        .iter()
                        .position(|c| c == effect)
                        .unwrap_or(EffectProfile::CLASSES.len() - 1);
                    effects.per_class[i] += 1;
                }
                JournalEvent::EffectClassify { static_ro } => {
                    effects.stmts_classified += 1;
                    if *static_ro {
                        effects.stmts_static_ro += 1;
                    }
                }
                JournalEvent::EffectCommit => effects.static_ro_commits += 1,
                JournalEvent::EffectInvalidate => effects.invalidations += 1,
                _ => {}
            }
        }
        let mut conflicts = ConflictProfile::default();
        {
            let mut obj: HashMap<u64, u64> = HashMap::new();
            let mut trk: HashMap<u64, u64> = HashMap::new();
            for e in events {
                if let JournalEvent::TxnConflict { kind, goops, tracks, .. } = e {
                    if kind == "watermark" {
                        conflicts.watermark += 1;
                    } else {
                        conflicts.overlap += 1;
                    }
                    for g in goops {
                        *obj.entry(*g).or_default() += 1;
                    }
                    for t in tracks {
                        *trk.entry(*t).or_default() += 1;
                    }
                }
            }
            conflicts.object_heat = top_heat(obj);
            conflicts.track_heat = top_heat(trk);
        }
        let mut planner = PlannerProfile::default();
        {
            let mut refreshes: HashMap<u64, (u64, u64)> = HashMap::new();
            let mut worst: HashMap<String, (i64, u64)> = HashMap::new();
            for e in events {
                match e {
                    JournalEvent::StatsUpdate { set, cardinality, .. } => {
                        planner.stats_updates += 1;
                        let slot = refreshes.entry(*set).or_default();
                        slot.0 += 1;
                        slot.1 = *cardinality;
                    }
                    JournalEvent::PlanChoice { cost_based, replan, .. } => {
                        planner.choices += 1;
                        if *cost_based {
                            planner.cost_based += 1;
                        }
                        if *replan {
                            planner.replans += 1;
                        }
                    }
                    JournalEvent::PlanDrift { session, label, plan, op, est, actual, err_pct } => {
                        let slot = worst.entry(label.clone()).or_default();
                        slot.0 = slot.0.max(err_pct.abs());
                        slot.1 += 1;
                        planner.drift_episodes.push(DriftEpisode {
                            session: *session,
                            label: label.clone(),
                            plan: plan.clone(),
                            op: *op,
                            est: *est,
                            actual: *actual,
                            err_pct: *err_pct,
                        });
                    }
                    _ => {}
                }
            }
            if planner.drift_episodes.len() > PLANNER_TOP_N {
                let skip = planner.drift_episodes.len() - PLANNER_TOP_N;
                planner.drift_episodes.drain(..skip);
            }
            planner.worst_statements = worst.into_iter().map(|(l, (e, n))| (l, e, n)).collect();
            planner
                .worst_statements
                .sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
            planner.worst_statements.truncate(PLANNER_TOP_N);
            let mut sets: Vec<(u64, u64, u64)> =
                refreshes.into_iter().map(|(s, (n, c))| (s, n, c)).collect();
            sets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            sets.truncate(PLANNER_TOP_N);
            planner.set_refreshes = sets;
        }
        let recovery = events.iter().rev().find_map(|e| match e {
            JournalEvent::Recovery {
                roots_considered,
                roots_valid,
                roots_torn,
                epoch,
                tracks_salvaged,
                tracks_discarded,
                reopen_reads,
            } => Some(RecoverySummary {
                roots_considered: *roots_considered,
                roots_valid: *roots_valid,
                roots_torn: *roots_torn,
                epoch: *epoch,
                tracks_salvaged: *tracks_salvaged,
                tracks_discarded: *tracks_discarded,
                reopen_reads: *reopen_reads,
            }),
            _ => None,
        });
        let replayed = replay(events).snapshot();
        let replay_matches_live = live.map(|l| replayed == *l);
        DiagnosticBundle {
            reason: reason.to_string(),
            schema: JOURNAL_SCHEMA,
            complete: readout.complete,
            events: events.len(),
            heat,
            locality_score,
            sweep,
            live_capacity,
            sweep_validated,
            slow_statements: slow,
            effects,
            conflicts,
            planner,
            recovery,
            replayed,
            replay_matches_live,
        }
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ =
            writeln!(out, "diagnostic bundle · reason={} · schema=v{}", self.reason, self.schema);
        let _ = writeln!(
            out,
            "journal: {} events, {}",
            self.events,
            if self.complete { "complete" } else { "TRUNCATED (rotation dropped the head)" }
        );
        match self.replay_matches_live {
            Some(true) => {
                let _ = writeln!(out, "replay: reproduces the live MetricsSnapshot exactly");
            }
            Some(false) => {
                let _ = writeln!(out, "replay: DIVERGES from the live MetricsSnapshot");
            }
            None => {
                let _ = writeln!(out, "replay: no live snapshot supplied for comparison");
            }
        }
        let _ = writeln!(out, "\ntrack heat map (locality score {:.3}):", self.locality_score);
        let _ = writeln!(out, "  {:>8}  {:>8}  {:>8}", "track", "reads", "writes");
        for h in self.heat.iter().take(20) {
            let _ = writeln!(out, "  {:>8}  {:>8}  {:>8}", h.track, h.reads, h.writes);
        }
        if self.heat.len() > 20 {
            let _ = writeln!(out, "  … {} more tracks", self.heat.len() - 20);
        }
        let _ = writeln!(out, "\ncache hit-rate vs size (replayed from the recorded I/O):");
        for p in &self.sweep {
            let marker = match self.live_capacity {
                Some(c) if c == p.capacity => "  <- live capacity",
                _ => "",
            };
            let _ = writeln!(
                out,
                "  cap {:>6}: {:>6} hits / {:>6} misses  ({:>5.1}%){}",
                p.capacity,
                p.hits,
                p.misses,
                p.hit_rate() * 100.0,
                marker
            );
        }
        if let Some(ok) = self.sweep_validated {
            let _ = writeln!(
                out,
                "  model check at live capacity: {}",
                if ok { "matches recorded hits/misses" } else { "DIVERGES from recorded counts" }
            );
        }
        // Storage health from the replayed registry: fsync latency
        // quantiles and the per-shard cache hit/miss split (a skewed
        // shard is a clustering hot spot the aggregate hit rate hides).
        let fsync = self.replayed.histogram("storage.disk.fsync_us");
        let shards: Vec<(usize, u64, u64)> = (0..64)
            .map(|i| {
                (
                    i,
                    self.replayed.counter(&format!("storage.cache.shard{i}.hits")),
                    self.replayed.counter(&format!("storage.cache.shard{i}.misses")),
                )
            })
            .filter(|&(_, h, m)| h + m > 0)
            .collect();
        if fsync.map(|f| f.count > 0).unwrap_or(false) || !shards.is_empty() {
            let _ = writeln!(out, "\nstorage health:");
            if let Some(f) = fsync {
                if f.count > 0 {
                    let _ = writeln!(
                        out,
                        "  fsync latency: {} syncs, p50<={}µs p95<={}µs p99<={}µs",
                        f.count,
                        f.quantile(0.5),
                        f.quantile(0.95),
                        f.quantile(0.99)
                    );
                }
            }
            for (i, h, m) in &shards {
                let total = h + m;
                let pct = if total == 0 { 100.0 } else { *h as f64 / total as f64 * 100.0 };
                let _ = writeln!(out, "  cache shard {i}: {h} hits / {m} misses ({pct:.1}%)");
            }
        }
        if !self.slow_statements.is_empty() {
            let _ = writeln!(out, "\nslowest statements:");
            for s in &self.slow_statements {
                let _ = writeln!(
                    out,
                    "  {:>12} ns  [session {}] {}",
                    s.wall_ns,
                    s.session,
                    s.label.replace('\n', "⏎")
                );
            }
        }
        if !self.effects.is_empty() {
            let e = &self.effects;
            let _ = writeln!(out, "\neffect analysis:");
            let per: Vec<String> = EffectProfile::CLASSES
                .iter()
                .zip(e.per_class.iter())
                .filter(|(_, n)| **n > 0)
                .map(|(c, n)| format!("{c} {n}"))
                .collect();
            let _ = writeln!(out, "  {} summaries computed ({})", e.computed, per.join(", "));
            let _ = writeln!(
                out,
                "  {}/{} statements classified statically read-only",
                e.stmts_static_ro, e.stmts_classified
            );
            let _ = writeln!(
                out,
                "  {} static read-only commits, {} cache invalidations",
                e.static_ro_commits, e.invalidations
            );
        }
        if !self.conflicts.is_empty() {
            let c = &self.conflicts;
            let _ = writeln!(out, "\nconflict forensics:");
            let _ = writeln!(
                out,
                "  {} conflicts (overlap {}, watermark {})",
                c.total(),
                c.overlap,
                c.watermark
            );
            if !c.object_heat.is_empty() {
                let per: Vec<String> =
                    c.object_heat.iter().take(10).map(|(g, n)| format!("goop {g} ×{n}")).collect();
                let _ = writeln!(out, "  hottest objects: {}", per.join(", "));
            }
            if !c.track_heat.is_empty() {
                let per: Vec<String> =
                    c.track_heat.iter().take(10).map(|(t, n)| format!("track {t} ×{n}")).collect();
                let _ = writeln!(out, "  hottest tracks: {}", per.join(", "));
            }
        }
        if !self.planner.is_empty() {
            let p = &self.planner;
            let _ = writeln!(out, "\nplanner health:");
            let _ = writeln!(
                out,
                "  {} plan choices ({} cost-based, {} replans), {} stats refreshes",
                p.choices, p.cost_based, p.replans, p.stats_updates
            );
            if !p.worst_statements.is_empty() {
                let _ = writeln!(out, "  worst statements by estimate error:");
                for (label, err, n) in &p.worst_statements {
                    let _ =
                        writeln!(out, "    {:>6}% err ×{}  {}", err, n, label.replace('\n', "⏎"));
                }
            }
            if !p.set_refreshes.is_empty() {
                let per: Vec<String> = p
                    .set_refreshes
                    .iter()
                    .map(|(s, n, c)| format!("goop {s} ×{n} (card {c})"))
                    .collect();
                let _ = writeln!(out, "  stats freshness: {}", per.join(", "));
            }
            for d in &p.drift_episodes {
                let _ = writeln!(
                    out,
                    "  drift: [session {}] op {} est {} actual {} ({}%) in {}",
                    d.session, d.op, d.est, d.actual, d.err_pct, d.plan
                );
            }
        }
        if let Some(r) = &self.recovery {
            let _ = writeln!(
                out,
                "\nlast recovery pass: roots {}/{} valid ({} torn), epoch {}, \
                 {} tracks salvaged, {} discarded, {} reopen reads",
                r.roots_valid,
                r.roots_considered,
                r.roots_torn,
                r.epoch,
                r.tracks_salvaged,
                r.tracks_discarded,
                r.reopen_reads
            );
        }
        out
    }

    /// The bundle as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"reason\": \"{}\",", esc(&self.reason));
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"complete\": {},", self.complete);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(out, "  \"locality_score\": {:.6},", self.locality_score);
        out.push_str("  \"heat\": [\n");
        for (i, h) in self.heat.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"track\":{},\"reads\":{},\"writes\":{}}}",
                h.track, h.reads, h.writes
            );
            out.push_str(if i + 1 < self.heat.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"sweep\": [\n");
        for (i, p) in self.sweep.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"capacity\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.6}}}",
                p.capacity,
                p.hits,
                p.misses,
                p.hit_rate()
            );
            out.push_str(if i + 1 < self.sweep.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        match self.live_capacity {
            Some(c) => {
                let _ = writeln!(out, "  \"live_capacity\": {c},");
            }
            None => {
                let _ = writeln!(out, "  \"live_capacity\": null,");
            }
        }
        match self.sweep_validated {
            Some(v) => {
                let _ = writeln!(out, "  \"sweep_validated\": {v},");
            }
            None => {
                let _ = writeln!(out, "  \"sweep_validated\": null,");
            }
        }
        out.push_str("  \"slow_statements\": [\n");
        for (i, s) in self.slow_statements.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"session\":{},\"wall_ns\":{},\"label\":\"{}\"}}",
                s.session,
                s.wall_ns,
                esc(&s.label)
            );
            out.push_str(if i + 1 < self.slow_statements.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        {
            let e = &self.effects;
            let _ = write!(out, "  \"effects\": {{\"computed\":{},\"per_class\":{{", e.computed);
            for (i, (c, n)) in EffectProfile::CLASSES.iter().zip(e.per_class.iter()).enumerate() {
                let _ = write!(out, "\"{c}\":{n}");
                if i + 1 < EffectProfile::CLASSES.len() {
                    out.push(',');
                }
            }
            let _ = writeln!(
                out,
                "}},\"stmts_classified\":{},\"stmts_static_ro\":{},\
                 \"static_ro_commits\":{},\"invalidations\":{}}},",
                e.stmts_classified, e.stmts_static_ro, e.static_ro_commits, e.invalidations
            );
        }
        {
            let c = &self.conflicts;
            let heat = |pairs: &[(u64, u64)], key: &str| {
                let per: Vec<String> = pairs
                    .iter()
                    .map(|(k, n)| format!("{{\"{key}\":{k},\"conflicts\":{n}}}"))
                    .collect();
                per.join(",")
            };
            let _ = writeln!(
                out,
                "  \"conflicts\": {{\"overlap\":{},\"watermark\":{},\
                 \"object_heat\":[{}],\"track_heat\":[{}]}},",
                c.overlap,
                c.watermark,
                heat(&c.object_heat, "goop"),
                heat(&c.track_heat, "track")
            );
        }
        {
            let p = &self.planner;
            let worst: Vec<String> = p
                .worst_statements
                .iter()
                .map(|(l, e, n)| {
                    format!("{{\"label\":\"{}\",\"worst_err_pct\":{e},\"episodes\":{n}}}", esc(l))
                })
                .collect();
            let sets: Vec<String> = p
                .set_refreshes
                .iter()
                .map(|(s, n, c)| format!("{{\"set\":{s},\"refreshes\":{n},\"cardinality\":{c}}}"))
                .collect();
            let drifts: Vec<String> = p
                .drift_episodes
                .iter()
                .map(|d| {
                    format!(
                        "{{\"session\":{},\"label\":\"{}\",\"plan\":\"{}\",\"op\":{},\
                         \"est\":{},\"actual\":{},\"err_pct\":{}}}",
                        d.session,
                        esc(&d.label),
                        esc(&d.plan),
                        d.op,
                        d.est,
                        d.actual,
                        d.err_pct
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "  \"planner\": {{\"choices\":{},\"cost_based\":{},\"replans\":{},\
                 \"stats_updates\":{},\"worst_statements\":[{}],\"set_refreshes\":[{}],\
                 \"drift_episodes\":[{}]}},",
                p.choices,
                p.cost_based,
                p.replans,
                p.stats_updates,
                worst.join(","),
                sets.join(","),
                drifts.join(",")
            );
        }
        match &self.recovery {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  \"recovery\": {{\"roots_considered\":{},\"roots_valid\":{},\
                     \"roots_torn\":{},\"epoch\":{},\"tracks_salvaged\":{},\
                     \"tracks_discarded\":{},\"reopen_reads\":{}}},",
                    r.roots_considered,
                    r.roots_valid,
                    r.roots_torn,
                    r.epoch,
                    r.tracks_salvaged,
                    r.tracks_discarded,
                    r.reopen_reads
                );
            }
            None => {
                let _ = writeln!(out, "  \"recovery\": null,");
            }
        }
        match self.replay_matches_live {
            Some(v) => {
                let _ = writeln!(out, "  \"replay_matches_live\": {v},");
            }
            None => {
                let _ = writeln!(out, "  \"replay_matches_live\": null,");
            }
        }
        out.push_str("  \"replayed_metrics\": [\n");
        let json_lines = self.replayed.to_json_lines();
        let all: Vec<&str> = json_lines.lines().collect();
        for (i, line) in all.iter().enumerate() {
            let _ = write!(out, "    {line}");
            out.push_str(if i + 1 < all.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sort a heat table hottest-first (count desc, then key asc for
/// determinism) and keep the top entries.
fn top_heat(per: HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut heat: Vec<(u64, u64)> = per.into_iter().collect();
    heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    heat.truncate(CONFLICT_HEAT_TOP_N);
    heat
}

/// Per-track reads/writes plus the locality score over successful reads.
fn heat_map(events: &[JournalEvent]) -> (Vec<TrackHeat>, f64) {
    let mut per: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut reads_total = 0u64;
    for e in events {
        match e {
            JournalEvent::TrackRead { track, ok: true, .. } => {
                per.entry(*track).or_default().0 += 1;
                reads_total += 1;
            }
            JournalEvent::TrackWrite { track, ok: true, .. } => {
                per.entry(*track).or_default().1 += 1;
            }
            _ => {}
        }
    }
    let unique_read = per.values().filter(|(r, _)| *r > 0).count() as u64;
    let locality =
        if reads_total == 0 { 0.0 } else { 1.0 - unique_read as f64 / reads_total as f64 };
    let mut heat: Vec<TrackHeat> = per
        .into_iter()
        .map(|(track, (reads, writes))| TrackHeat { track, reads, writes })
        .collect();
    heat.sort_by(|a, b| {
        (b.reads + b.writes).cmp(&(a.reads + a.writes)).then(a.track.cmp(&b.track))
    });
    (heat, locality)
}

/// A standalone LRU mirroring `TrackCache` semantics: recency is updated
/// on hit and on insert/refresh; eviction removes the least recently
/// touched entry; capacity 0 caches nothing.
struct ModelLru {
    cap: usize,
    slots: HashMap<u64, u64>,
    tick: u64,
}

impl ModelLru {
    fn new(cap: usize) -> ModelLru {
        ModelLru { cap, slots: HashMap::new(), tick: 0 }
    }

    fn contains(&self, track: u64) -> bool {
        self.slots.contains_key(&track)
    }

    fn touch(&mut self, track: u64) {
        self.tick += 1;
        self.slots.insert(track, self.tick);
    }

    fn insert(&mut self, track: u64) {
        if self.cap == 0 {
            return;
        }
        if !self.slots.contains_key(&track) && self.slots.len() >= self.cap {
            if let Some((&lru, _)) = self.slots.iter().min_by_key(|(_, &t)| t) {
                self.slots.remove(&lru);
            }
        }
        self.touch(track);
    }
}

/// Replay the recorded cache traffic at capacity `cap`.  On an access
/// miss the live system read through and filled the cache, so the model
/// inserts; recorded read-through fills are therefore skipped (they are
/// implied by the model's own misses), while commit-path fills happen at
/// any capacity and are replayed as inserts.
fn simulate(events: &[JournalEvent], cap: u64) -> CacheSweepPoint {
    let mut lru = ModelLru::new(cap as usize);
    let mut hits = 0u64;
    let mut misses = 0u64;
    for e in events {
        match e {
            JournalEvent::CacheAccess { track, .. } => {
                if lru.contains(*track) {
                    hits += 1;
                    lru.touch(*track);
                } else {
                    misses += 1;
                    lru.insert(*track);
                }
            }
            JournalEvent::CacheFill { track, commit: true } => lru.insert(*track),
            _ => {}
        }
    }
    CacheSweepPoint { capacity: cap, hits, misses }
}

fn cache_sweep(
    events: &[JournalEvent],
    live_capacity: Option<u64>,
) -> (Vec<CacheSweepPoint>, Option<bool>) {
    let mut unique: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut recorded_hits = 0u64;
    let mut recorded_misses = 0u64;
    for e in events {
        match e {
            JournalEvent::CacheAccess { track, hit, .. } => {
                unique.insert(*track);
                if *hit {
                    recorded_hits += 1;
                } else {
                    recorded_misses += 1;
                }
            }
            JournalEvent::CacheFill { track, .. } => {
                unique.insert(*track);
            }
            _ => {}
        }
    }
    if recorded_hits + recorded_misses == 0 {
        return (Vec::new(), None);
    }
    let mut caps: Vec<u64> = Vec::new();
    let mut c = 1u64;
    while c < unique.len() as u64 * 2 {
        caps.push(c);
        c *= 2;
    }
    caps.push(c);
    if let Some(live) = live_capacity {
        caps.push(live);
    }
    caps.sort_unstable();
    caps.dedup();
    let sweep: Vec<CacheSweepPoint> = caps.iter().map(|&cap| simulate(events, cap)).collect();
    let validated = live_capacity.map(|live| {
        sweep
            .iter()
            .find(|p| p.capacity == live)
            .map(|p| p.hits == recorded_hits && p.misses == recorded_misses)
            .unwrap_or(false)
    });
    (sweep, validated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn readout(events: Vec<JournalEvent>) -> JournalReadout {
        JournalReadout { events, complete: true, segments: 1 }
    }

    #[test]
    fn heat_map_counts_and_locality() {
        let rd = |track, ok| JournalEvent::TrackRead { track, ok, backend: "sim".into() };
        let events = vec![
            rd(1, true),
            rd(1, true),
            rd(1, true),
            rd(2, true),
            rd(9, false),
            JournalEvent::TrackWrite { track: 2, ok: true, bytes: 100, backend: "sim".into() },
        ];
        let b = DiagnosticBundle::build(&readout(events), None, "test");
        assert_eq!(b.heat[0], TrackHeat { track: 1, reads: 3, writes: 0 });
        assert_eq!(b.heat[1], TrackHeat { track: 2, reads: 1, writes: 1 });
        assert_eq!(b.heat.len(), 2, "failed reads don't heat tracks");
        // 4 successful reads over 2 unique tracks → 1 - 2/4 = 0.5.
        assert!((b.locality_score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sweep_validates_against_recorded_counts() {
        // Live capacity 1: access A miss (fill), access A hit, access B
        // miss (fill, evicts A), access A miss again.
        let events = vec![
            JournalEvent::CacheConfigured { tracks: 1 },
            JournalEvent::CacheAccess { track: 10, shard: 10 % 8, hit: false },
            JournalEvent::CacheFill { track: 10, commit: false },
            JournalEvent::CacheAccess { track: 10, shard: 10 % 8, hit: true },
            JournalEvent::CacheAccess { track: 20, shard: 20 % 8, hit: false },
            JournalEvent::CacheFill { track: 20, commit: false },
            JournalEvent::CacheAccess { track: 10, shard: 10 % 8, hit: false },
            JournalEvent::CacheFill { track: 10, commit: false },
        ];
        let b = DiagnosticBundle::build(&readout(events), None, "test");
        assert_eq!(b.live_capacity, Some(1));
        assert_eq!(b.sweep_validated, Some(true), "model reproduces the live trace");
        let at2 = b.sweep.iter().find(|p| p.capacity == 2).expect("cap-2 point");
        assert_eq!((at2.hits, at2.misses), (2, 2), "a larger cache keeps both tracks");
    }

    #[test]
    fn slow_statements_ranked_and_bounded() {
        let mut events = Vec::new();
        for i in 0..20u64 {
            events.push(JournalEvent::Statement {
                session: 1,
                wall_ns: i * 100,
                label: format!("stmt {i}"),
            });
        }
        let b = DiagnosticBundle::build(&readout(events), None, "test");
        assert_eq!(b.slow_statements.len(), 10);
        assert_eq!(b.slow_statements[0].label, "stmt 19", "slowest first");
        assert!(b.slow_statements.windows(2).all(|w| w[0].wall_ns >= w[1].wall_ns));
    }

    #[test]
    fn effect_profile_counts_per_class() {
        let events = vec![
            JournalEvent::EffectSummary {
                selector: "do:".into(),
                effect: "WritesLocal".into(),
                reads: 0,
                writes: 0,
            },
            JournalEvent::EffectSummary {
                selector: "size".into(),
                effect: "ReadOnly".into(),
                reads: 1,
                writes: 0,
            },
            JournalEvent::EffectClassify { static_ro: true },
            JournalEvent::EffectClassify { static_ro: false },
            JournalEvent::EffectCommit,
            JournalEvent::EffectInvalidate,
        ];
        let b = DiagnosticBundle::build(&readout(events), None, "test");
        let e = &b.effects;
        assert_eq!(e.computed, 2);
        assert_eq!(e.per_class, [0, 1, 1, 0, 0]);
        assert_eq!((e.stmts_classified, e.stmts_static_ro), (2, 1));
        assert_eq!((e.static_ro_commits, e.invalidations), (1, 1));
        let text = b.render();
        assert!(text.contains("2 summaries computed (ReadOnly 1, WritesLocal 1)"), "{text}");
        assert!(text.contains("1/2 statements classified statically read-only"), "{text}");
        let json = b.to_json();
        assert!(json.contains("\"static_ro_commits\":1"), "{json}");
        // A journal without effect events keeps the section out entirely.
        let quiet = DiagnosticBundle::build(&readout(vec![JournalEvent::TxnBegin]), None, "t");
        assert!(!quiet.render().contains("effect analysis"));
    }

    #[test]
    fn conflict_profile_attributes_and_ranks() {
        let overlap = |goops: Vec<u64>, tracks: Vec<u64>| JournalEvent::TxnConflict {
            kind: "overlap".into(),
            session: 2,
            start: 5,
            culprit_time: 9,
            culprit_session: 1,
            goops,
            tracks,
        };
        let events = vec![
            overlap(vec![77, 90], vec![3]),
            overlap(vec![77], vec![3]),
            JournalEvent::TxnConflict {
                kind: "watermark".into(),
                session: 4,
                start: 1,
                culprit_time: 0,
                culprit_session: 0,
                goops: vec![],
                tracks: vec![],
            },
        ];
        let b = DiagnosticBundle::build(&readout(events), None, "test");
        let c = &b.conflicts;
        assert_eq!((c.overlap, c.watermark, c.total()), (2, 1, 3));
        assert_eq!(c.object_heat, vec![(77, 2), (90, 1)], "hottest goop first");
        assert_eq!(c.track_heat, vec![(3, 2)]);
        let text = b.render();
        assert!(text.contains("3 conflicts (overlap 2, watermark 1)"), "{text}");
        assert!(text.contains("hottest objects: goop 77 ×2, goop 90 ×1"), "{text}");
        assert!(text.contains("hottest tracks: track 3 ×2"), "{text}");
        let json = b.to_json();
        assert!(json.contains("\"object_heat\":[{\"goop\":77,\"conflicts\":2}"), "{json}");
        // A conflict-free journal keeps the section out entirely.
        let quiet = DiagnosticBundle::build(&readout(vec![JournalEvent::TxnBegin]), None, "t");
        assert!(!quiet.render().contains("conflict forensics"));
    }

    #[test]
    fn planner_profile_ranks_statements_and_keeps_drift_episodes() {
        let events = vec![
            JournalEvent::StatsUpdate {
                set: 40,
                path: "Cust".into(),
                cardinality: 100,
                total: 100,
                distinct: 5,
                fuzz: 0,
                points: "1:20".into(),
            },
            JournalEvent::StatsUpdate {
                set: 40,
                path: "Cust".into(),
                cardinality: 140,
                total: 140,
                distinct: 5,
                fuzz: 0,
                points: "1:28".into(),
            },
            JournalEvent::StatsUpdate {
                set: 55,
                path: String::new(),
                cardinality: 7,
                total: 0,
                distinct: 0,
                fuzz: 0,
                points: String::new(),
            },
            JournalEvent::PlanChoice {
                session: 1,
                label: "orders detect".into(),
                chosen: "HashJoin(Scan,Scan)".into(),
                cost_milli: 140_000,
                alternatives: 6,
                cost_based: true,
                replan: false,
            },
            JournalEvent::PlanDrift {
                session: 1,
                label: "orders detect".into(),
                plan: "HashJoin(Scan,Scan)".into(),
                op: 2,
                est: 4,
                actual: 64,
                err_pct: -94,
            },
            JournalEvent::PlanDrift {
                session: 1,
                label: "regions sweep".into(),
                plan: "NestJoin(Scan,IndexScan)".into(),
                op: 1,
                est: 80,
                actual: 5,
                err_pct: 1500,
            },
            JournalEvent::PlanChoice {
                session: 1,
                label: "orders detect".into(),
                chosen: "HashJoin(Scan,IndexScan)".into(),
                cost_milli: 12_000,
                alternatives: 6,
                cost_based: true,
                replan: true,
            },
        ];
        let b = DiagnosticBundle::build(&readout(events), None, "test");
        let p = &b.planner;
        assert_eq!((p.choices, p.cost_based, p.replans, p.stats_updates), (2, 2, 1, 3));
        assert_eq!(
            p.worst_statements,
            vec![("regions sweep".into(), 1500, 1), ("orders detect".into(), 94, 1)],
            "worst |err_pct| first"
        );
        assert_eq!(
            p.set_refreshes,
            vec![(40, 2, 140), (55, 1, 7)],
            "most-refreshed first, last cardinality kept"
        );
        assert_eq!(p.drift_episodes.len(), 2);
        assert_eq!(p.drift_episodes[0].label, "orders detect", "episodes stay in journal order");
        let text = b.render();
        assert!(
            text.contains("2 plan choices (2 cost-based, 1 replans), 3 stats refreshes"),
            "{text}"
        );
        assert!(text.contains("1500% err ×1  regions sweep"), "{text}");
        assert!(text.contains("goop 40 ×2 (card 140)"), "{text}");
        assert!(text.contains("drift: [session 1] op 2 est 4 actual 64 (-94%)"), "{text}");
        let json = b.to_json();
        assert!(
            json.contains("\"planner\": {\"choices\":2,\"cost_based\":2,\"replans\":1"),
            "{json}"
        );
        assert!(json.contains("{\"set\":40,\"refreshes\":2,\"cardinality\":140}"), "{json}");
        assert!(json.contains("\"plan\":\"NestJoin(Scan,IndexScan)\""), "{json}");
        // A journal without planner events keeps the section out entirely.
        let quiet = DiagnosticBundle::build(&readout(vec![JournalEvent::TxnBegin]), None, "t");
        assert!(!quiet.render().contains("planner health"));
    }

    #[test]
    fn replay_verdict_and_renderings() {
        let events = vec![
            JournalEvent::TxnBegin,
            JournalEvent::TxnCommit,
            JournalEvent::Statement { session: 1, wall_ns: 5000, label: "X := 1".into() },
        ];
        let live = replay(&events).snapshot();
        let b = DiagnosticBundle::build(&readout(events), Some(&live), "test");
        assert_eq!(b.replay_matches_live, Some(true));
        let text = b.render();
        assert!(text.contains("reproduces the live MetricsSnapshot exactly"));
        assert!(text.contains("track heat map"));
        let json = b.to_json();
        assert!(json.contains("\"replay_matches_live\": true"));
        assert!(json.contains("\"reason\": \"test\""));
    }
}
