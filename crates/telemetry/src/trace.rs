//! Hierarchical span tracing with a bounded ring-buffer event log.
//!
//! Spans form a tree per session: session → transaction → statement →
//! plan-operator / track-I/O.  Completed spans are pushed into a ring
//! buffer (oldest dropped first); statement spans can be sampled 1-in-*n*,
//! and child spans of an unsampled statement are suppressed by the
//! parent-id-0 rule, so sampling a statement samples its whole subtree.

use crate::clock::TelemetryClock;
use crate::metrics::Counter;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What level of the stack a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    Session,
    Transaction,
    Statement,
    PlanOperator,
    TrackIo,
}

impl SpanKind {
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Transaction => "transaction",
            SpanKind::Statement => "statement",
            SpanKind::PlanOperator => "plan-operator",
            SpanKind::TrackIo => "track-io",
        }
    }
}

/// A completed span as stored in the ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Owning session id (0 when unattributed).
    pub session: u64,
    pub kind: SpanKind,
    pub label: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanEvent {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// An in-flight span handle.  `id == 0` means the span is disabled
/// (tracing off or unsampled) and `end` is a no-op; callers pass the id on
/// to children unconditionally, which is how suppression propagates.
#[derive(Debug)]
pub struct OpenSpan {
    id: u64,
    parent: u64,
    session: u64,
    kind: SpanKind,
    label: String,
    start_ns: u64,
}

impl OpenSpan {
    /// This span's id, for use as a child's parent (0 when disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    fn disabled() -> OpenSpan {
        OpenSpan {
            id: 0,
            parent: 0,
            session: 0,
            kind: SpanKind::Statement,
            label: String::new(),
            start_ns: 0,
        }
    }
}

const DEFAULT_CAPACITY: usize = 4096;

#[derive(Debug)]
struct TracerShared {
    enabled: AtomicBool,
    /// Record 1 in n statement spans (n = 1: all).
    sample_every: AtomicU64,
    statement_seq: AtomicU64,
    next_id: AtomicU64,
    recorded: Counter,
    dropped: Counter,
    clock: TelemetryClock,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<SpanEvent>,
    capacity: usize,
}

/// The span recorder; clones share one ring buffer.  Disabled (the
/// default) it costs one relaxed atomic load per `begin`.
#[derive(Clone, Debug)]
pub struct Tracer(Arc<TracerShared>);

impl Tracer {
    pub fn new(clock: TelemetryClock) -> Tracer {
        Tracer(Arc::new(TracerShared {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(1),
            statement_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            recorded: Counter::new(),
            dropped: Counter::new(),
            clock,
            ring: Mutex::new(Ring { events: VecDeque::new(), capacity: DEFAULT_CAPACITY }),
        }))
    }

    pub fn enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.0.enabled.store(on, Ordering::Relaxed);
    }

    /// Record 1 in `n` statement spans; `n` is clamped to ≥ 1.
    pub fn set_sampling(&self, n: u64) {
        self.0.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = self.0.ring.lock().unwrap();
        ring.capacity = capacity.max(1);
        while ring.events.len() > ring.capacity {
            ring.events.pop_front();
            self.0.dropped.inc();
        }
    }

    /// Open a span.  Returns a disabled handle when tracing is off, when a
    /// statement span loses the sampling draw, or when a child kind
    /// (plan-operator / track-I/O / transaction under a sampled-out
    /// statement) is begun with `parent == 0`.
    pub fn begin(&self, kind: SpanKind, session: u64, parent: u64, label: &str) -> OpenSpan {
        if !self.enabled() {
            return OpenSpan::disabled();
        }
        match kind {
            SpanKind::Statement => {
                let seq = self.0.statement_seq.fetch_add(1, Ordering::Relaxed);
                let every = self.0.sample_every.load(Ordering::Relaxed);
                if !seq.is_multiple_of(every) {
                    return OpenSpan::disabled();
                }
            }
            SpanKind::PlanOperator | SpanKind::TrackIo => {
                if parent == 0 {
                    return OpenSpan::disabled();
                }
            }
            SpanKind::Session | SpanKind::Transaction => {}
        }
        OpenSpan {
            id: self.0.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            session,
            kind,
            label: label.to_string(),
            start_ns: self.0.clock.now_ns(),
        }
    }

    /// Close a span and push it into the ring (no-op for disabled spans).
    /// Returns the span id.
    pub fn end(&self, span: OpenSpan) -> u64 {
        if span.id == 0 {
            return 0;
        }
        let end_ns = self.0.clock.now_ns();
        self.push(SpanEvent {
            id: span.id,
            parent: span.parent,
            session: span.session,
            kind: span.kind,
            label: span.label,
            start_ns: span.start_ns,
            end_ns,
        });
        span.id
    }

    /// Record an already-measured span (used for plan-operator spans
    /// reconstructed from a per-operator profile, and for instantaneous
    /// marker events).  Returns the new span id, 0 when tracing is off.
    pub fn record(
        &self,
        kind: SpanKind,
        session: u64,
        parent: u64,
        label: &str,
        start_ns: u64,
        end_ns: u64,
    ) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let id = self.0.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanEvent {
            id,
            parent,
            session,
            kind,
            label: label.to_string(),
            start_ns,
            end_ns,
        });
        id
    }

    fn push(&self, ev: SpanEvent) {
        let mut ring = self.0.ring.lock().unwrap();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            self.0.dropped.inc();
        }
        ring.events.push_back(ev);
        self.0.recorded.inc();
    }

    /// All buffered events, oldest first, optionally restricted to one
    /// session.
    pub fn events(&self, session: Option<u64>) -> Vec<SpanEvent> {
        let ring = self.0.ring.lock().unwrap();
        ring.events
            .iter()
            .filter(|e| session.map(|s| e.session == s).unwrap_or(true))
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        self.0.ring.lock().unwrap().events.clear();
    }

    /// Total spans ever recorded (survives ring eviction and `clear`) —
    /// this is what the counter-based overhead gate asserts against.
    pub fn events_recorded(&self) -> u64 {
        self.0.recorded.get()
    }

    /// Spans evicted from the ring before being read.
    pub fn events_dropped(&self) -> u64 {
        self.0.dropped.get()
    }

    /// Shared handles for registry binding.
    pub fn recorded_counter(&self) -> Counter {
        self.0.recorded.clone()
    }

    pub fn dropped_counter(&self) -> Counter {
        self.0.dropped.clone()
    }

    pub fn clock(&self) -> &TelemetryClock {
        &self.0.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualTime;

    fn manual_tracer() -> (Tracer, ManualTime) {
        let src = ManualTime::new();
        let t = Tracer::new(TelemetryClock::manual(src.clone()));
        (t, src)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let (t, _) = manual_tracer();
        let s = t.begin(SpanKind::Statement, 1, 0, "x");
        assert_eq!(s.id(), 0);
        t.end(s);
        assert_eq!(t.events_recorded(), 0);
        assert!(t.events(None).is_empty());
    }

    #[test]
    fn spans_nest_and_have_nonzero_duration() {
        let (t, _) = manual_tracer();
        t.set_enabled(true);
        let txn = t.begin(SpanKind::Transaction, 7, 0, "txn");
        let stmt = t.begin(SpanKind::Statement, 7, txn.id(), "stmt");
        let op = t.begin(SpanKind::PlanOperator, 7, stmt.id(), "scan");
        let op_parent = stmt.id();
        t.end(op);
        t.end(stmt);
        t.end(txn);
        let evs = t.events(Some(7));
        assert_eq!(evs.len(), 3);
        let scan = evs.iter().find(|e| e.label == "scan").unwrap();
        assert_eq!(scan.parent, op_parent);
        assert!(evs.iter().all(|e| e.duration_ns() > 0), "strict clock → nonzero spans");
    }

    #[test]
    fn statement_sampling_suppresses_subtree() {
        let (t, _) = manual_tracer();
        t.set_enabled(true);
        t.set_sampling(2);
        let mut recorded = 0;
        for _ in 0..4 {
            let stmt = t.begin(SpanKind::Statement, 1, 0, "s");
            let op = t.begin(SpanKind::PlanOperator, 1, stmt.id(), "op");
            t.end(op);
            if t.end(stmt) != 0 {
                recorded += 1;
            }
        }
        assert_eq!(recorded, 2, "1-in-2 sampling");
        // Each sampled statement carries its operator child; unsampled
        // statements suppress theirs via the parent-0 rule.
        assert_eq!(t.events(None).len(), 4);
    }

    #[test]
    fn ring_drops_oldest() {
        let (t, _) = manual_tracer();
        t.set_enabled(true);
        t.set_capacity(2);
        for i in 0..3 {
            let s = t.begin(SpanKind::Statement, 1, 0, &format!("s{i}"));
            t.end(s);
        }
        let evs = t.events(None);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].label, "s1");
        assert_eq!(t.events_recorded(), 3);
        assert_eq!(t.events_dropped(), 1);
    }

    #[test]
    fn session_filter_is_strict() {
        let (t, _) = manual_tracer();
        t.set_enabled(true);
        for sid in [1u64, 2] {
            let s = t.begin(SpanKind::Statement, sid, 0, "s");
            t.end(s);
        }
        assert_eq!(t.events(Some(1)).len(), 1);
        assert_eq!(t.events(Some(2)).len(), 1);
        assert_eq!(t.events(None).len(), 2);
    }
}
