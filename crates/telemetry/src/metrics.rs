//! Named counters, gauges, and log-scale histograms.
//!
//! The hot path is lock-free: a [`Counter`] is one relaxed atomic add, a
//! [`Histogram`] record is three.  The registry mutex is touched only when
//! looking up or registering instruments by name and when snapshotting —
//! layers cache their handles once and never hit it again.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.  Clones share the same cell;
/// use [`Counter::detached_copy`] for value-copy semantics (e.g. when a
/// simulated disk is checkpoint-cloned).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// A brand-new counter holding the current value — subsequent updates
    /// to either copy are independent.
    pub fn detached_copy(&self) -> Counter {
        Counter(Arc::new(AtomicU64::new(self.get())))
    }
}

/// A point-in-time signed value (sizes, epochs, configuration knobs).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistInner {
    fn default() -> HistInner {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples (latencies in ns, group
/// sizes in tracks, …).  Bucket 0 holds the value 0; bucket *i* ≥ 1 covers
/// `[2^(i-1), 2^i)`.  Clones share the same cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistInner>);

#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { h.min.load(Ordering::Relaxed) },
            max: h.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
        }
    }

    pub fn reset(&self) {
        let h = &*self.0;
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.min.store(u64::MAX, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }

    /// Merge a frozen snapshot into this histogram — journal replay uses
    /// this to reload a recorded baseline.  No-op for empty snapshots so
    /// the min sentinel stays untouched.
    pub fn load(&self, s: &HistogramSnapshot) {
        if s.count == 0 {
            return;
        }
        let h = &*self.0;
        for (i, &n) in s.buckets.iter().enumerate() {
            if n > 0 {
                h.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        h.count.fetch_add(s.count, Ordering::Relaxed);
        h.sum.fetch_add(s.sum, Ordering::Relaxed);
        h.min.fetch_min(s.min, Ordering::Relaxed);
        h.max.fetch_max(s.max, Ordering::Relaxed);
    }

    /// A brand-new histogram holding a copy of the current contents.
    pub fn detached_copy(&self) -> Histogram {
        let src = &*self.0;
        let dst = HistInner {
            buckets: std::array::from_fn(|i| {
                AtomicU64::new(src.buckets[i].load(Ordering::Relaxed))
            }),
            count: AtomicU64::new(src.count.load(Ordering::Relaxed)),
            sum: AtomicU64::new(src.sum.load(Ordering::Relaxed)),
            min: AtomicU64::new(src.min.load(Ordering::Relaxed)),
            max: AtomicU64::new(src.max.load(Ordering::Relaxed)),
        };
        Histogram(Arc::new(dst))
    }
}

/// Frozen histogram contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Smallest recorded sample (0 when empty); carried as-is through
    /// [`HistogramSnapshot::diff`].
    pub min: u64,
    /// Largest recorded sample; carried as-is through `diff`.
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-quantile (p in 0..=1).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64.checked_shl(i as u32).unwrap_or(u64::MAX) };
            }
        }
        self.max
    }

    /// Samples recorded since `earlier` (count/sum/buckets subtract;
    /// min/max keep this snapshot's values).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The process-wide instrument namespace.  Handles returned by the
/// `counter`/`gauge`/`histogram` lookups are shared: updating a handle
/// updates what `snapshot` reports.  Layers that already own their
/// instruments bind them with the `register_*` methods instead.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Bind an existing counter under `name` (replacing any previous
    /// binding) so the owner's handle and the registry share one cell.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.insert(name.to_string(), c.clone());
    }

    /// Bind an existing gauge under `name`.
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), g.clone());
    }

    /// Bind an existing histogram under `name`.
    pub fn register_histogram(&self, name: &str, h: &Histogram) {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.insert(name.to_string(), h.clone());
    }

    /// Apply every binding in `batch` under one lock acquisition: a
    /// concurrent [`MetricsRegistry::snapshot`] observes either none of the
    /// batch or all of it, never a half-bound layer. Use this instead of a
    /// run of `register_*` calls when wiring a subsystem's instruments.
    pub fn register_batch(&self, batch: MetricsBatch) {
        let mut inner = self.inner.lock().unwrap();
        for (name, c) in batch.counters {
            inner.counters.insert(name, c);
        }
        for (name, g) in batch.gauges {
            inner.gauges.insert(name, g);
        }
        for (name, h) in batch.histograms {
            inner.histograms.insert(name, h);
        }
    }

    /// Freeze every instrument into a diffable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// A set of instrument bindings staged off-lock and applied atomically by
/// [`MetricsRegistry::register_batch`].
#[derive(Default)]
pub struct MetricsBatch {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsBatch {
    pub fn new() -> MetricsBatch {
        MetricsBatch::default()
    }

    /// Stage a counter binding (the owner's cell and the registry will
    /// share it).
    pub fn counter(mut self, name: &str, c: &Counter) -> MetricsBatch {
        self.counters.push((name.to_string(), c.clone()));
        self
    }

    /// Stage a gauge binding.
    pub fn gauge(mut self, name: &str, g: &Gauge) -> MetricsBatch {
        self.gauges.push((name.to_string(), g.clone()));
        self
    }

    /// Stage a histogram binding.
    pub fn histogram(mut self, name: &str, h: &Histogram) -> MetricsBatch {
        self.histograms.push((name.to_string(), h.clone()));
        self
    }
}

/// A frozen view of every registered instrument.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Activity since `earlier`: counters and histograms subtract, gauges
    /// keep their current values.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| match earlier.histograms.get(k) {
                    Some(e) => (k.clone(), h.diff(e)),
                    None => (k.clone(), h.clone()),
                })
                .collect(),
        }
    }

    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Human-readable aligned table of every instrument.
    pub fn render_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k:<width$}  count={} sum={} min={} max={} mean={:.1} p50<={} p95<={} p99<={}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
            );
        }
        out
    }

    /// One JSON object per line per instrument (no external deps; metric
    /// names are plain ASCII so escaping is restricted to `"` and `\`).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"type\":\"counter\",\"value\":{v}}}",
                json_escape(k)
            );
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"type\":\"gauge\",\"value\":{v}}}",
                json_escape(k)
            );
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"metric\":\"{}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
            );
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_and_detach() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), 4);
        let d = a.detached_copy();
        d.add(10);
        assert_eq!(a.get(), 4, "detached copy is independent");
        assert_eq!(d.get(), 14);
    }

    #[test]
    fn register_binds_existing_handle() {
        let reg = MetricsRegistry::new();
        let owned = Counter::new();
        owned.add(7);
        reg.register_counter("layer.events", &owned);
        owned.inc();
        assert_eq!(reg.snapshot().counter("layer.events"), 8);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1105);
        assert_eq!((s.min, s.max), (0, 1000));
        assert_eq!(s.buckets[0], 1, "zero bucket");
        assert_eq!(s.buckets[1], 2, "[1,2)");
        assert_eq!(s.buckets[2], 1, "[2,4)");
        assert_eq!(s.buckets[7], 1, "[64,128)");
        assert_eq!(s.buckets[10], 1, "[512,1024)");
        assert!(s.quantile(0.5) <= 4);
        assert!(s.quantile(1.0) >= 1000 || s.quantile(1.0) == 1024);
    }

    #[test]
    fn snapshot_diff_subtracts() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let h = reg.histogram("lat");
        c.add(5);
        h.record(10);
        let s0 = reg.snapshot();
        c.add(2);
        h.record(20);
        h.record(30);
        let d = reg.snapshot().diff(&s0);
        assert_eq!(d.counter("n"), 2);
        assert_eq!(d.histogram("lat").unwrap().count, 2);
        assert_eq!(d.histogram("lat").unwrap().sum, 50);
    }

    #[test]
    fn exporters_mention_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").inc();
        reg.gauge("g").set(-3);
        reg.histogram("h").record(9);
        let snap = reg.snapshot();
        let table = snap.render_table();
        assert!(table.contains("a.b") && table.contains("g") && table.contains("h"));
        let json = snap.to_json_lines();
        assert!(json.lines().count() == 3);
        assert!(json.contains("\"metric\":\"a.b\"") && json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"p95\":") && table.contains("p95<="), "quantiles rendered");
    }

    #[test]
    fn batch_registration_binds_shared_cells() {
        let reg = MetricsRegistry::new();
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        reg.register_batch(
            MetricsBatch::new()
                .counter("layer.c", &c)
                .gauge("layer.g", &g)
                .histogram("layer.h", &h),
        );
        c.inc();
        g.set(7);
        h.record(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("layer.c"), 1);
        assert_eq!(snap.gauge("layer.g"), 7);
        assert_eq!(snap.histogram("layer.h").unwrap().count, 1);
    }

    #[test]
    fn batch_registration_is_atomic_under_concurrent_snapshots() {
        // A snapshot taken while a layer registers must see either none of
        // the layer's names or all of them — never a half-bound registry.
        use std::sync::atomic::{AtomicBool, Ordering};
        let reg = MetricsRegistry::new();
        let names: Vec<String> = (0..24).map(|i| format!("layer.m{i}")).collect();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let reader_reg = reg.clone();
            let reader_names = names.clone();
            let done_ref = &done;
            s.spawn(move || {
                while !done_ref.load(Ordering::Relaxed) {
                    let snap = reader_reg.snapshot();
                    let bound =
                        reader_names.iter().filter(|n| snap.counters.contains_key(*n)).count();
                    assert!(
                        bound == 0 || bound == reader_names.len(),
                        "snapshot saw a half-bound layer: {bound}/{}",
                        reader_names.len()
                    );
                }
            });
            let cells: Vec<Counter> = names.iter().map(|_| Counter::new()).collect();
            let mut batch = MetricsBatch::new();
            for (n, c) in names.iter().zip(&cells) {
                batch = batch.counter(n, c);
            }
            reg.register_batch(batch);
            done.store(true, Ordering::Relaxed);
        });
        let snap = reg.snapshot();
        assert!(names.iter().all(|n| snap.counters.contains_key(n)));
    }
}
