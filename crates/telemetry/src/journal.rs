//! The persistent flight recorder: a bounded, schema-versioned,
//! append-only event journal.
//!
//! Events are one JSON object per line (JSONL) across numbered segment
//! files `journal-NNNNNNNN.jsonl`; segments rotate at a byte budget and
//! the oldest are deleted past a segment budget, so the journal is
//! bounded on disk.  Every segment opens with a `{"e":"header","v":N}`
//! line and readers reject unknown schema versions.
//!
//! The journal is the durable twin of the metrics registry: every event
//! corresponds to exactly the counter/histogram moves the live layer
//! made, and [`JournalEvent::apply_to`] is the single replay rule-set.
//! Replaying a journal recorded from birth (or from a
//! [`Journal::emit_baseline`] point) through a fresh registry reproduces
//! the live [`MetricsSnapshot`] byte-for-byte — the determinism contract
//! that keeps the recorder honest.
//!
//! Disabled (the default), the journal costs one relaxed atomic load at
//! each emission site and adds zero interpreter dispatches.

use crate::metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal schema version written by this build.
///
/// v2: track-I/O and safe-write-group events carry the storage backend
/// (`sim` / `file`), groups carry their fsync count, and the `disk_sync`
/// event exists (PR 8's durable file backend).
///
/// v3: conflict forensics and commit-latency observability — the
/// `txn_conflict` event (structured abort attribution: kind, culprit,
/// overlapping objects and home tracks), the `commit_timeline` event
/// (per-commit phase breakdown feeding the `commit.phase.*_us`
/// histograms) and the `fsync_latency` event (per-barrier duration
/// feeding `storage.disk.fsync_us`).
///
/// v4: the statistics observatory and cost-based planner — the
/// `stats_update` event (one refreshed key-distribution sketch, wire
/// form included so replay round-trips the sketch bytes exactly), the
/// `plan_choice` event (which plan the cost model picked, how many
/// alternatives it weighed, and whether the choice was a drift-forced
/// re-plan) and the `plan_drift` event (an analyzed operator whose
/// actual cardinality strayed past the drift threshold from its
/// estimate).
///
/// The reader is version-aware: it accepts any segment whose header
/// version is in [`JOURNAL_SCHEMA_MIN`]`..=JOURNAL_SCHEMA`, but rejects
/// an event under a header too old to have defined it (a v3-only event
/// in a v2 segment is corruption, not forward compatibility).
pub const JOURNAL_SCHEMA: u64 = 4;

/// Oldest journal schema version this build's reader still replays.
pub const JOURNAL_SCHEMA_MIN: u64 = 2;

const BUCKETS: usize = 64;

/// Sizing for the on-disk journal.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this size.
    pub max_segment_bytes: u64,
    /// Keep at most this many segments; the oldest are deleted.
    pub max_segments: usize,
}

impl JournalConfig {
    /// Default sizing (1 MiB segments, 8 segments) in `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { dir: dir.into(), max_segment_bytes: 1 << 20, max_segments: 8 }
    }
}

/// One recorded event.  Each variant mirrors exactly one set of counter
/// or histogram moves in the live system; `apply_to` replays them.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// Registry state at recording start: one event per counter.
    BaselineCounter {
        name: String,
        value: u64,
    },
    /// Registry state at recording start: one event per gauge.
    BaselineGauge {
        name: String,
        value: i64,
    },
    /// Registry state at recording start: one event per histogram.
    /// Boxed: the bucket array dwarfs every other variant.
    BaselineHistogram {
        name: String,
        snap: Box<HistogramSnapshot>,
    },
    /// Informational: the live track-cache capacity (drives the doctor's
    /// sweep validation; no counter effect).
    CacheConfigured {
        tracks: u64,
    },
    /// One executed statement (`session.statements` / `session.statement_ns`).
    Statement {
        session: u64,
        wall_ns: u64,
        label: String,
    },
    /// One interpreter stats flush (`opal.interp.dispatches` / `.sends`).
    Interp {
        dispatches: u64,
        sends: u64,
    },
    /// One query-plan execution (the `calculus.*` counters).
    Plan {
        rows_scanned: u64,
        index_rows: u64,
        index_hits: u64,
        index_fallbacks: u64,
        select_in: u64,
        select_out: u64,
        nest_loops: u64,
        hash_builds: u64,
        hash_probes: u64,
        hash_matches: u64,
        rows_out: u64,
    },
    TxnBegin,
    TxnCommit,
    TxnAbort {
        conflict: bool,
    },
    /// Forensic record of one validation conflict (v3). Emitted beside
    /// the [`JournalEvent::TxnAbort`] that moves the counters, under the
    /// same lock, so `txn.conflicts == count(txn_conflict)` always holds.
    /// Purely informational for replay (the paired abort event moves the
    /// counters); the doctor distills it into conflict-heat tables.
    TxnConflict {
        /// `"overlap"` or `"watermark"` (the txn layer's `ConflictKind`
        /// rendered as a string — telemetry stays dependency-free).
        kind: String,
        /// Telemetry session id of the aborted transaction (0 when the
        /// transaction was begun outside a session).
        session: u64,
        /// Transaction time at which the aborted transaction began.
        start: u64,
        /// Commit time of the culprit transaction (for `watermark`: the
        /// prune watermark that made validation impossible).
        culprit_time: u64,
        /// Telemetry session id of the culprit (0 for `watermark`).
        culprit_session: u64,
        /// Overlapping object identities (capped; oldest conflict first).
        goops: Vec<u64>,
        /// Home tracks of the overlapping objects, where resolvable.
        tracks: Vec<u64>,
    },
    /// Per-commit phase breakdown (v3): how one writing commit spent its
    /// time, recorded into the `commit.phase.*_us` histograms.
    CommitTimeline {
        session: u64,
        /// Age of the transaction's snapshot when the commit began.
        snapshot_age_us: u64,
        /// Validation, including the wait for the commit critical section.
        validation_us: u64,
        /// The safe-write group: track writes on both replicas.
        safe_write_us: u64,
        /// Durability barriers inside the group (subset of safe-write).
        fsync_us: u64,
        /// View publication after finalize.
        publish_us: u64,
    },
    /// One durability barrier's duration (v3): `storage.disk.fsync_us`.
    /// The matching [`JournalEvent::DiskSync`] moves the fsync counter;
    /// this event carries its latency.
    FsyncLatency {
        us: u64,
        backend: String,
    },
    /// One committed safe-write group (`storage.store.commits`,
    /// `.objects_written`, `storage.commit.group_tracks`). `fsyncs` is how
    /// many sync barriers the group issued (informational — the matching
    /// [`JournalEvent::DiskSync`] events move the counter); `backend`
    /// identifies the disk that took the group (`sim` / `file`).
    SafeWriteGroup {
        tracks: u64,
        objects: u64,
        fsyncs: u64,
        backend: String,
    },
    TrackRead {
        track: u64,
        ok: bool,
        backend: String,
    },
    TrackWrite {
        track: u64,
        ok: bool,
        bytes: u64,
        backend: String,
    },
    /// One durability barrier (`fsync`/`fdatasync` on the file backend, a
    /// counted no-op on the simulated disk): `storage.disk.fsyncs`.
    DiskSync {
        ok: bool,
        backend: String,
    },
    CacheAccess {
        track: u64,
        /// Which cache shard served the access (`storage.cache.shard<i>.*`).
        shard: u64,
        hit: bool,
    },
    /// One transaction validation: how long the committer waited to enter
    /// the validation critical section (`txn.validation_wait_us`).
    ValidationWait {
        us: u64,
    },
    CacheFill {
        track: u64,
        commit: bool,
    },
    CacheEvict {
        track: u64,
    },
    ObjectFault {
        goop: u64,
    },
    VerifyCheck {
        rejected: bool,
    },
    /// One freshly computed method effect summary (`opal.effects.computed`
    /// plus the per-effect-class counter). `reads`/`writes` are the sizes
    /// of the summary's global read/write sets (informational).
    EffectSummary {
        selector: String,
        effect: String,
        reads: u64,
        writes: u64,
    },
    /// One statement classified before execution
    /// (`opal.effects.stmts_classified` / `.stmts_static_ro`).
    EffectClassify {
        static_ro: bool,
    },
    /// One commit taken on the statically-proven read-only fast path
    /// (`opal.effects.static_ro_commits`).
    EffectCommit,
    /// One wholesale effect-cache invalidation at a method install
    /// (`opal.effects.invalidations`).
    EffectInvalidate,
    /// One refreshed statistics sketch (v4): a per-directory
    /// key-distribution histogram rebuilt at commit time
    /// (`calculus.stats.updates`). `points` is the sketch's exact wire
    /// encoding (bit-exact f64 keys), so a replayed journal carries the
    /// same statistics the planner saw.
    StatsUpdate {
        /// Object identity of the statistics' collection.
        set: u64,
        /// Canonical indexed-path key (`stats::path_key`), or `""` for a
        /// cardinality-only refresh of an unindexed set.
        path: String,
        /// Set cardinality at refresh time.
        cardinality: u64,
        /// Keys summarized by the sketch.
        total: u64,
        /// Distinct-key estimate.
        distinct: u64,
        /// Documented rank-error bound of the sketch.
        fuzz: u64,
        /// `KeySketch::encode_points` wire form (exact round-trip).
        points: String,
    },
    /// One planning decision (v4): the canonical plan string the
    /// translator chose and what it weighed (`calculus.plan.choices`,
    /// `.cost_based`, `.replans`).
    PlanChoice {
        session: u64,
        /// Statement label (as in [`JournalEvent::Statement`]).
        label: String,
        /// Canonical string of the chosen plan.
        chosen: String,
        /// Estimated cost of the chosen plan, in milli-row-visits.
        cost_milli: u64,
        /// How many distinct alternatives the cost model compared.
        alternatives: u64,
        /// False when statistics were absent and the historical fixed
        /// plan shape was kept.
        cost_based: bool,
        /// True when this choice re-planned a statement after drift.
        replan: bool,
    },
    /// One estimate-vs-actual miss past the drift threshold (v4):
    /// the worst analyzed operator of a statement strayed from its
    /// cardinality estimate (`calculus.plan.drift`). The next execution
    /// of the statement re-plans with fresh statistics.
    PlanDrift {
        session: u64,
        label: String,
        /// Canonical string of the drifted plan.
        plan: String,
        /// Pre-order index of the worst operator.
        op: u64,
        /// Planner's cardinality estimate for that operator.
        est: u64,
        /// Observed rows-out.
        actual: u64,
        /// Signed error percentage (`est_err_pct`).
        err_pct: i64,
    },
    /// One recovery pass (the `storage.recovery.*` gauges).
    Recovery {
        roots_considered: u64,
        roots_valid: u64,
        roots_torn: u64,
        epoch: u64,
        tracks_salvaged: u64,
        tracks_discarded: u64,
        reopen_reads: u64,
    },
}

impl JournalEvent {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        use JournalEvent::*;
        match self {
            BaselineCounter { name, value } => {
                format!("{{\"e\":\"base_counter\",\"name\":\"{}\",\"value\":{value}}}", esc(name))
            }
            BaselineGauge { name, value } => {
                format!("{{\"e\":\"base_gauge\",\"name\":\"{}\",\"value\":{value}}}", esc(name))
            }
            BaselineHistogram { name, snap } => format!(
                "{{\"e\":\"base_hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":\"{}\"}}",
                esc(name),
                snap.count,
                snap.sum,
                snap.min,
                snap.max,
                buckets_to_str(&snap.buckets),
            ),
            CacheConfigured { tracks } => {
                format!("{{\"e\":\"cache_configured\",\"tracks\":{tracks}}}")
            }
            Statement { session, wall_ns, label } => format!(
                "{{\"e\":\"statement\",\"session\":{session},\"wall_ns\":{wall_ns},\"label\":\"{}\"}}",
                esc(label)
            ),
            Interp { dispatches, sends } => {
                format!("{{\"e\":\"interp\",\"dispatches\":{dispatches},\"sends\":{sends}}}")
            }
            Plan {
                rows_scanned,
                index_rows,
                index_hits,
                index_fallbacks,
                select_in,
                select_out,
                nest_loops,
                hash_builds,
                hash_probes,
                hash_matches,
                rows_out,
            } => format!(
                "{{\"e\":\"plan\",\"rows_scanned\":{rows_scanned},\"index_rows\":{index_rows},\
                 \"index_hits\":{index_hits},\"index_fallbacks\":{index_fallbacks},\
                 \"select_in\":{select_in},\"select_out\":{select_out},\"nest_loops\":{nest_loops},\
                 \"hash_builds\":{hash_builds},\"hash_probes\":{hash_probes},\
                 \"hash_matches\":{hash_matches},\"rows_out\":{rows_out}}}"
            ),
            TxnBegin => "{\"e\":\"txn_begin\"}".to_string(),
            TxnCommit => "{\"e\":\"txn_commit\"}".to_string(),
            TxnAbort { conflict } => format!("{{\"e\":\"txn_abort\",\"conflict\":{conflict}}}"),
            TxnConflict { kind, session, start, culprit_time, culprit_session, goops, tracks } => {
                format!(
                    "{{\"e\":\"txn_conflict\",\"kind\":\"{}\",\"session\":{session},\
                     \"start\":{start},\"culprit_time\":{culprit_time},\
                     \"culprit_session\":{culprit_session},\"goops\":{},\"tracks\":{}}}",
                    esc(kind),
                    nums_to_str(goops),
                    nums_to_str(tracks)
                )
            }
            CommitTimeline {
                session,
                snapshot_age_us,
                validation_us,
                safe_write_us,
                fsync_us,
                publish_us,
            } => format!(
                "{{\"e\":\"commit_timeline\",\"session\":{session},\
                 \"snapshot_age_us\":{snapshot_age_us},\"validation_us\":{validation_us},\
                 \"safe_write_us\":{safe_write_us},\"fsync_us\":{fsync_us},\
                 \"publish_us\":{publish_us}}}"
            ),
            FsyncLatency { us, backend } => {
                format!("{{\"e\":\"fsync_latency\",\"us\":{us},\"backend\":\"{}\"}}", esc(backend))
            }
            SafeWriteGroup { tracks, objects, fsyncs, backend } => format!(
                "{{\"e\":\"safe_write_group\",\"tracks\":{tracks},\"objects\":{objects},\
                 \"fsyncs\":{fsyncs},\"backend\":\"{}\"}}",
                esc(backend)
            ),
            TrackRead { track, ok, backend } => {
                format!(
                    "{{\"e\":\"track_read\",\"track\":{track},\"ok\":{ok},\"backend\":\"{}\"}}",
                    esc(backend)
                )
            }
            TrackWrite { track, ok, bytes, backend } => {
                format!(
                    "{{\"e\":\"track_write\",\"track\":{track},\"ok\":{ok},\"bytes\":{bytes},\
                     \"backend\":\"{}\"}}",
                    esc(backend)
                )
            }
            DiskSync { ok, backend } => {
                format!("{{\"e\":\"disk_sync\",\"ok\":{ok},\"backend\":\"{}\"}}", esc(backend))
            }
            CacheAccess { track, shard, hit } => {
                format!("{{\"e\":\"cache_access\",\"track\":{track},\"shard\":{shard},\"hit\":{hit}}}")
            }
            ValidationWait { us } => format!("{{\"e\":\"validation_wait\",\"us\":{us}}}"),
            CacheFill { track, commit } => {
                format!("{{\"e\":\"cache_fill\",\"track\":{track},\"commit\":{commit}}}")
            }
            CacheEvict { track } => format!("{{\"e\":\"cache_evict\",\"track\":{track}}}"),
            ObjectFault { goop } => format!("{{\"e\":\"object_fault\",\"goop\":{goop}}}"),
            VerifyCheck { rejected } => format!("{{\"e\":\"verify\",\"rejected\":{rejected}}}"),
            EffectSummary { selector, effect, reads, writes } => format!(
                "{{\"e\":\"effect_summary\",\"selector\":\"{}\",\"effect\":\"{}\",\
                 \"reads\":{reads},\"writes\":{writes}}}",
                esc(selector),
                esc(effect)
            ),
            EffectClassify { static_ro } => {
                format!("{{\"e\":\"effect_classify\",\"static_ro\":{static_ro}}}")
            }
            EffectCommit => "{\"e\":\"effect_commit\"}".to_string(),
            EffectInvalidate => "{\"e\":\"effect_invalidate\"}".to_string(),
            StatsUpdate { set, path, cardinality, total, distinct, fuzz, points } => format!(
                "{{\"e\":\"stats_update\",\"set\":{set},\"path\":\"{}\",\
                 \"cardinality\":{cardinality},\"total\":{total},\"distinct\":{distinct},\
                 \"fuzz\":{fuzz},\"points\":\"{}\"}}",
                esc(path),
                esc(points)
            ),
            PlanChoice { session, label, chosen, cost_milli, alternatives, cost_based, replan } => {
                format!(
                    "{{\"e\":\"plan_choice\",\"session\":{session},\"label\":\"{}\",\
                     \"chosen\":\"{}\",\"cost_milli\":{cost_milli},\
                     \"alternatives\":{alternatives},\"cost_based\":{cost_based},\
                     \"replan\":{replan}}}",
                    esc(label),
                    esc(chosen)
                )
            }
            PlanDrift { session, label, plan, op, est, actual, err_pct } => format!(
                "{{\"e\":\"plan_drift\",\"session\":{session},\"label\":\"{}\",\"plan\":\"{}\",\
                 \"op\":{op},\"est\":{est},\"actual\":{actual},\"err_pct\":{err_pct}}}",
                esc(label),
                esc(plan)
            ),
            Recovery {
                roots_considered,
                roots_valid,
                roots_torn,
                epoch,
                tracks_salvaged,
                tracks_discarded,
                reopen_reads,
            } => format!(
                "{{\"e\":\"recovery\",\"roots_considered\":{roots_considered},\
                 \"roots_valid\":{roots_valid},\"roots_torn\":{roots_torn},\"epoch\":{epoch},\
                 \"tracks_salvaged\":{tracks_salvaged},\"tracks_discarded\":{tracks_discarded},\
                 \"reopen_reads\":{reopen_reads}}}"
            ),
        }
    }

    /// Parse one JSON line back into an event.  Unknown event names are
    /// an error: within one schema version the event set is closed.
    pub fn parse(line: &str) -> Result<JournalEvent, String> {
        JournalEvent::parse_at(line, JOURNAL_SCHEMA)
    }

    /// Parse one JSON line under a specific segment schema version.  An
    /// event introduced after `schema` is rejected exactly like an
    /// unknown name: within one schema version the event set is closed,
    /// so a v3-only event in a v2 segment is corruption.
    pub fn parse_at(line: &str, schema: u64) -> Result<JournalEvent, String> {
        let obj = parse_flat(line)?;
        let kind = obj.str("e")?;
        let ev = match kind.as_str() {
            "base_counter" => {
                JournalEvent::BaselineCounter { name: obj.str("name")?, value: obj.u64("value")? }
            }
            "base_gauge" => {
                JournalEvent::BaselineGauge { name: obj.str("name")?, value: obj.i64("value")? }
            }
            "base_hist" => JournalEvent::BaselineHistogram {
                name: obj.str("name")?,
                snap: Box::new(HistogramSnapshot {
                    count: obj.u64("count")?,
                    sum: obj.u64("sum")?,
                    min: obj.u64("min")?,
                    max: obj.u64("max")?,
                    buckets: buckets_from_str(&obj.str("buckets")?)?,
                }),
            },
            "cache_configured" => JournalEvent::CacheConfigured { tracks: obj.u64("tracks")? },
            "statement" => JournalEvent::Statement {
                session: obj.u64("session")?,
                wall_ns: obj.u64("wall_ns")?,
                label: obj.str("label")?,
            },
            "interp" => JournalEvent::Interp {
                dispatches: obj.u64("dispatches")?,
                sends: obj.u64("sends")?,
            },
            "plan" => JournalEvent::Plan {
                rows_scanned: obj.u64("rows_scanned")?,
                index_rows: obj.u64("index_rows")?,
                index_hits: obj.u64("index_hits")?,
                index_fallbacks: obj.u64("index_fallbacks")?,
                select_in: obj.u64("select_in")?,
                select_out: obj.u64("select_out")?,
                nest_loops: obj.u64("nest_loops")?,
                hash_builds: obj.u64("hash_builds")?,
                hash_probes: obj.u64("hash_probes")?,
                hash_matches: obj.u64("hash_matches")?,
                rows_out: obj.u64("rows_out")?,
            },
            "txn_begin" => JournalEvent::TxnBegin,
            "txn_commit" => JournalEvent::TxnCommit,
            "txn_abort" => JournalEvent::TxnAbort { conflict: obj.bool("conflict")? },
            "txn_conflict" => JournalEvent::TxnConflict {
                kind: obj.str("kind")?,
                session: obj.u64("session")?,
                start: obj.u64("start")?,
                culprit_time: obj.u64("culprit_time")?,
                culprit_session: obj.u64("culprit_session")?,
                goops: obj.u64_array("goops")?,
                tracks: obj.u64_array("tracks")?,
            },
            "commit_timeline" => JournalEvent::CommitTimeline {
                session: obj.u64("session")?,
                snapshot_age_us: obj.u64("snapshot_age_us")?,
                validation_us: obj.u64("validation_us")?,
                safe_write_us: obj.u64("safe_write_us")?,
                fsync_us: obj.u64("fsync_us")?,
                publish_us: obj.u64("publish_us")?,
            },
            "fsync_latency" => {
                JournalEvent::FsyncLatency { us: obj.u64("us")?, backend: obj.str("backend")? }
            }
            "safe_write_group" => JournalEvent::SafeWriteGroup {
                tracks: obj.u64("tracks")?,
                objects: obj.u64("objects")?,
                fsyncs: obj.u64("fsyncs")?,
                backend: obj.str("backend")?,
            },
            "track_read" => JournalEvent::TrackRead {
                track: obj.u64("track")?,
                ok: obj.bool("ok")?,
                backend: obj.str("backend")?,
            },
            "track_write" => JournalEvent::TrackWrite {
                track: obj.u64("track")?,
                ok: obj.bool("ok")?,
                bytes: obj.u64("bytes")?,
                backend: obj.str("backend")?,
            },
            "disk_sync" => {
                JournalEvent::DiskSync { ok: obj.bool("ok")?, backend: obj.str("backend")? }
            }
            "cache_access" => JournalEvent::CacheAccess {
                track: obj.u64("track")?,
                shard: obj.u64("shard")?,
                hit: obj.bool("hit")?,
            },
            "validation_wait" => JournalEvent::ValidationWait { us: obj.u64("us")? },
            "cache_fill" => {
                JournalEvent::CacheFill { track: obj.u64("track")?, commit: obj.bool("commit")? }
            }
            "cache_evict" => JournalEvent::CacheEvict { track: obj.u64("track")? },
            "object_fault" => JournalEvent::ObjectFault { goop: obj.u64("goop")? },
            "verify" => JournalEvent::VerifyCheck { rejected: obj.bool("rejected")? },
            "effect_summary" => JournalEvent::EffectSummary {
                selector: obj.str("selector")?,
                effect: obj.str("effect")?,
                reads: obj.u64("reads")?,
                writes: obj.u64("writes")?,
            },
            "effect_classify" => JournalEvent::EffectClassify { static_ro: obj.bool("static_ro")? },
            "effect_commit" => JournalEvent::EffectCommit,
            "effect_invalidate" => JournalEvent::EffectInvalidate,
            "stats_update" => JournalEvent::StatsUpdate {
                set: obj.u64("set")?,
                path: obj.str("path")?,
                cardinality: obj.u64("cardinality")?,
                total: obj.u64("total")?,
                distinct: obj.u64("distinct")?,
                fuzz: obj.u64("fuzz")?,
                points: obj.str("points")?,
            },
            "plan_choice" => JournalEvent::PlanChoice {
                session: obj.u64("session")?,
                label: obj.str("label")?,
                chosen: obj.str("chosen")?,
                cost_milli: obj.u64("cost_milli")?,
                alternatives: obj.u64("alternatives")?,
                cost_based: obj.bool("cost_based")?,
                replan: obj.bool("replan")?,
            },
            "plan_drift" => JournalEvent::PlanDrift {
                session: obj.u64("session")?,
                label: obj.str("label")?,
                plan: obj.str("plan")?,
                op: obj.u64("op")?,
                est: obj.u64("est")?,
                actual: obj.u64("actual")?,
                err_pct: obj.i64("err_pct")?,
            },
            "recovery" => JournalEvent::Recovery {
                roots_considered: obj.u64("roots_considered")?,
                roots_valid: obj.u64("roots_valid")?,
                roots_torn: obj.u64("roots_torn")?,
                epoch: obj.u64("epoch")?,
                tracks_salvaged: obj.u64("tracks_salvaged")?,
                tracks_discarded: obj.u64("tracks_discarded")?,
                reopen_reads: obj.u64("reopen_reads")?,
            },
            other => return Err(format!("unknown journal event {other:?}")),
        };
        if ev.min_schema() > schema {
            return Err(format!("unknown journal event {kind:?}"));
        }
        Ok(ev)
    }

    /// The oldest schema version that defines this event.
    fn min_schema(&self) -> u64 {
        match self {
            JournalEvent::StatsUpdate { .. }
            | JournalEvent::PlanChoice { .. }
            | JournalEvent::PlanDrift { .. } => 4,
            JournalEvent::TxnConflict { .. }
            | JournalEvent::CommitTimeline { .. }
            | JournalEvent::FsyncLatency { .. } => 3,
            _ => JOURNAL_SCHEMA_MIN,
        }
    }

    /// Replay this event's counter/gauge/histogram moves into `r`.  This
    /// is the single rule-set that makes a journal equivalent to the
    /// live metric stream.
    pub fn apply_to(&self, r: &MetricsRegistry) {
        use JournalEvent::*;
        match self {
            BaselineCounter { name, value } => r.counter(name).add(*value),
            BaselineGauge { name, value } => r.gauge(name).set(*value),
            BaselineHistogram { name, snap } => r.histogram(name).load(snap),
            CacheConfigured { .. } => {}
            Statement { wall_ns, .. } => {
                r.counter("session.statements").inc();
                r.histogram("session.statement_ns").record(*wall_ns);
            }
            Interp { dispatches, sends } => {
                r.counter("opal.interp.dispatches").add(*dispatches);
                r.counter("opal.interp.sends").add(*sends);
            }
            Plan {
                rows_scanned,
                index_rows,
                index_hits,
                index_fallbacks,
                select_in,
                select_out,
                nest_loops,
                hash_builds,
                hash_probes,
                hash_matches,
                rows_out,
            } => {
                r.counter("calculus.rows_scanned").add(*rows_scanned);
                r.counter("calculus.index_rows").add(*index_rows);
                r.counter("calculus.index_hits").add(*index_hits);
                r.counter("calculus.index_fallbacks").add(*index_fallbacks);
                r.counter("calculus.select_in").add(*select_in);
                r.counter("calculus.select_out").add(*select_out);
                r.counter("calculus.nest_loops").add(*nest_loops);
                r.counter("calculus.hash_builds").add(*hash_builds);
                r.counter("calculus.hash_probes").add(*hash_probes);
                r.counter("calculus.hash_matches").add(*hash_matches);
                r.counter("calculus.rows_out").add(*rows_out);
            }
            TxnBegin => r.counter("txn.begins").inc(),
            TxnCommit => r.counter("txn.commits").inc(),
            TxnAbort { conflict } => {
                r.counter("txn.aborts").inc();
                if *conflict {
                    r.counter("txn.conflicts").inc();
                }
            }
            // Forensic only: the paired TxnAbort moved the counters, so
            // this event must move nothing or replay would double-count.
            TxnConflict { .. } => {}
            CommitTimeline {
                snapshot_age_us,
                validation_us,
                safe_write_us,
                fsync_us,
                publish_us,
                ..
            } => {
                r.histogram("commit.phase.snapshot_age_us").record(*snapshot_age_us);
                r.histogram("commit.phase.validation_us").record(*validation_us);
                r.histogram("commit.phase.safe_write_us").record(*safe_write_us);
                r.histogram("commit.phase.fsync_us").record(*fsync_us);
                r.histogram("commit.phase.publish_us").record(*publish_us);
            }
            FsyncLatency { us, .. } => r.histogram("storage.disk.fsync_us").record(*us),
            SafeWriteGroup { tracks, objects, .. } => {
                r.counter("storage.store.commits").inc();
                r.counter("storage.store.objects_written").add(*objects);
                r.histogram("storage.commit.group_tracks").record(*tracks);
            }
            DiskSync { ok, .. } => {
                // Only successful barriers move the live counter; a failed
                // sync (dead disk) moves nothing, so replay stays exact.
                if *ok {
                    r.counter("storage.disk.fsyncs").inc();
                }
            }
            TrackRead { ok, .. } => {
                if *ok {
                    r.counter("storage.disk.reads").inc();
                } else {
                    r.counter("storage.disk.failed_reads").inc();
                }
            }
            TrackWrite { ok, bytes, .. } => {
                if *ok {
                    r.counter("storage.disk.writes").inc();
                    r.counter("storage.disk.bytes_written").add(*bytes);
                } else {
                    r.counter("storage.disk.failed_writes").inc();
                }
            }
            CacheAccess { shard, hit, .. } => {
                if *hit {
                    r.counter("storage.cache.hits").inc();
                    r.counter(&format!("storage.cache.shard{shard}.hits")).inc();
                } else {
                    r.counter("storage.cache.misses").inc();
                    r.counter(&format!("storage.cache.shard{shard}.misses")).inc();
                }
            }
            ValidationWait { us } => r.histogram("txn.validation_wait_us").record(*us),
            CacheFill { commit, .. } => {
                if *commit {
                    r.counter("storage.cache.fills_commit").inc();
                } else {
                    r.counter("storage.cache.fills_read").inc();
                }
            }
            CacheEvict { .. } => r.counter("storage.cache.evictions").inc(),
            ObjectFault { .. } => r.counter("storage.store.object_faults").inc(),
            VerifyCheck { rejected } => {
                r.counter("opal.verify.checks").inc();
                if *rejected {
                    r.counter("opal.verify.rejects").inc();
                }
            }
            EffectSummary { effect, .. } => {
                r.counter("opal.effects.computed").inc();
                r.counter(effect_class_counter(effect)).inc();
            }
            EffectClassify { static_ro } => {
                r.counter("opal.effects.stmts_classified").inc();
                if *static_ro {
                    r.counter("opal.effects.stmts_static_ro").inc();
                }
            }
            EffectCommit => r.counter("opal.effects.static_ro_commits").inc(),
            EffectInvalidate => r.counter("opal.effects.invalidations").inc(),
            StatsUpdate { .. } => r.counter("calculus.stats.updates").inc(),
            PlanChoice { cost_based, replan, .. } => {
                r.counter("calculus.plan.choices").inc();
                if *cost_based {
                    r.counter("calculus.plan.cost_based").inc();
                }
                if *replan {
                    r.counter("calculus.plan.replans").inc();
                }
            }
            PlanDrift { .. } => r.counter("calculus.plan.drift").inc(),
            Recovery {
                roots_considered,
                roots_valid,
                roots_torn,
                epoch,
                tracks_salvaged,
                tracks_discarded,
                reopen_reads,
            } => {
                r.gauge("storage.recovery.roots_considered").set(*roots_considered as i64);
                r.gauge("storage.recovery.roots_valid").set(*roots_valid as i64);
                r.gauge("storage.recovery.roots_torn").set(*roots_torn as i64);
                r.gauge("storage.recovery.epoch").set(*epoch as i64);
                r.gauge("storage.recovery.tracks_salvaged").set(*tracks_salvaged as i64);
                r.gauge("storage.recovery.tracks_discarded").set(*tracks_discarded as i64);
                r.gauge("storage.recovery.reopen_reads").set(*reopen_reads as i64);
            }
        }
    }
}

/// The per-effect-class counter an effect display name maps to. Unknown
/// names (a future lattice level) conservatively count as `unknown`, so
/// replay still moves exactly one class counter per summary.
pub fn effect_class_counter(effect: &str) -> &'static str {
    match effect {
        "Pure" => "opal.effects.pure",
        "ReadOnly" => "opal.effects.read_only",
        "WritesLocal" => "opal.effects.writes_local",
        "WritesGlobal" => "opal.effects.writes_global",
        _ => "opal.effects.unknown",
    }
}

/// Replay a journal into a fresh registry.
pub fn replay(events: &[JournalEvent]) -> MetricsRegistry {
    let r = MetricsRegistry::new();
    for e in events {
        e.apply_to(&r);
    }
    r
}

/// Everything a reader learned from a journal directory.
#[derive(Debug)]
pub struct JournalReadout {
    /// Events across all surviving segments, oldest first.
    pub events: Vec<JournalEvent>,
    /// False when rotation deleted the oldest segments, so the stream no
    /// longer starts at segment 1 and replay is only partial.
    pub complete: bool,
    /// Surviving segment count.
    pub segments: usize,
}

struct JournalState {
    cfg: JournalConfig,
    seq: u64,
    seg_bytes: u64,
    writer: BufWriter<std::fs::File>,
    live_segments: Vec<u64>,
}

struct JournalShared {
    enabled: AtomicBool,
    bundle_seq: AtomicU64,
    state: Mutex<Option<JournalState>>,
}

/// A handle on the flight recorder; clones share one recorder.  Disabled
/// (the default) every emission site pays one relaxed atomic load.
#[derive(Clone)]
pub struct Journal(Arc<JournalShared>);

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("enabled", &self.enabled()).finish()
    }
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::disabled()
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:08}.jsonl"))
}

fn header_line(seq: u64) -> String {
    format!("{{\"e\":\"header\",\"v\":{JOURNAL_SCHEMA},\"seq\":{seq}}}\n")
}

impl Journal {
    /// A recorder that is off until [`Journal::start`] is called.
    pub fn disabled() -> Journal {
        Journal(Arc::new(JournalShared {
            enabled: AtomicBool::new(false),
            bundle_seq: AtomicU64::new(1),
            state: Mutex::new(None),
        }))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Begin recording into `cfg.dir`, replacing any previous recording
    /// there (stale `journal-*.jsonl` segments are removed so the stream
    /// restarts at segment 1).
    pub fn start(&self, cfg: JournalConfig) -> std::io::Result<()> {
        std::fs::create_dir_all(&cfg.dir)?;
        for entry in std::fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("journal-") && name.ends_with(".jsonl") {
                std::fs::remove_file(entry.path())?;
            }
        }
        let mut writer = BufWriter::new(std::fs::File::create(segment_path(&cfg.dir, 1))?);
        let header = header_line(1);
        writer.write_all(header.as_bytes())?;
        let mut state = self.0.state.lock().unwrap();
        *state = Some(JournalState {
            seg_bytes: header.len() as u64,
            cfg,
            seq: 1,
            writer,
            live_segments: vec![1],
        });
        self.0.enabled.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Stop recording and close the current segment.
    pub fn stop(&self) {
        self.0.enabled.store(false, Ordering::Relaxed);
        let mut state = self.0.state.lock().unwrap();
        if let Some(s) = state.as_mut() {
            let _ = s.writer.flush();
        }
        *state = None;
    }

    /// The directory being recorded into, while recording.
    pub fn dir(&self) -> Option<PathBuf> {
        self.0.state.lock().unwrap().as_ref().map(|s| s.cfg.dir.clone())
    }

    /// `(current segment seq, live segment count, bytes in current
    /// segment)`, while recording.
    pub fn status(&self) -> Option<(u64, usize, u64)> {
        let state = self.0.state.lock().unwrap();
        state.as_ref().map(|s| (s.seq, s.live_segments.len(), s.seg_bytes))
    }

    /// Push buffered lines to disk.
    pub fn flush(&self) {
        let mut state = self.0.state.lock().unwrap();
        if let Some(s) = state.as_mut() {
            let _ = s.writer.flush();
        }
    }

    /// A fresh sequence number for naming captured diagnostic bundles.
    pub fn next_bundle_seq(&self) -> u64 {
        self.0.bundle_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Append one event (no-op when disabled).  Write errors are
    /// swallowed: the recorder must never take the database down.
    pub fn emit(&self, ev: &JournalEvent) {
        if !self.enabled() {
            return;
        }
        let mut state = self.0.state.lock().unwrap();
        let Some(s) = state.as_mut() else { return };
        let mut line = ev.to_line();
        line.push('\n');
        let _ = s.writer.write_all(line.as_bytes());
        s.seg_bytes += line.len() as u64;
        if s.seg_bytes >= s.cfg.max_segment_bytes {
            let _ = rotate(s);
        }
    }

    /// Record the full current registry state as baseline events, so a
    /// replay from this point reconstructs absolute values rather than
    /// deltas.  Every instrument is emitted (even zero-valued) so the
    /// replayed registry's name set matches the live one exactly.
    pub fn emit_baseline(&self, snap: &MetricsSnapshot) {
        if !self.enabled() {
            return;
        }
        for (name, &value) in &snap.counters {
            self.emit(&JournalEvent::BaselineCounter { name: name.clone(), value });
        }
        for (name, &value) in &snap.gauges {
            self.emit(&JournalEvent::BaselineGauge { name: name.clone(), value });
        }
        for (name, h) in &snap.histograms {
            self.emit(&JournalEvent::BaselineHistogram {
                name: name.clone(),
                snap: Box::new(h.clone()),
            });
        }
    }

    /// Read every surviving segment in `dir`, oldest first.  Rejects
    /// unknown schema versions and malformed events; tolerates one
    /// partial trailing line in the newest segment (an in-flight write).
    pub fn read_from(dir: &Path) -> Result<JournalReadout, String> {
        let mut seqs: Vec<u64> = Vec::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("journal dir {}: {e}", dir.display()))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if let Some(num) = name.strip_prefix("journal-").and_then(|n| n.strip_suffix(".jsonl"))
            {
                seqs.push(num.parse::<u64>().map_err(|_| format!("bad segment name {name:?}"))?);
            }
        }
        if seqs.is_empty() {
            return Err(format!("no journal segments in {}", dir.display()));
        }
        seqs.sort_unstable();
        let complete = seqs[0] == 1;
        let mut events = Vec::new();
        let last_seq = *seqs.last().unwrap();
        for &seq in &seqs {
            let path = segment_path(dir, seq);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("segment {}: {e}", path.display()))?;
            let ends_clean = text.ends_with('\n');
            let lines: Vec<&str> = text.lines().collect();
            let mut seg_schema = JOURNAL_SCHEMA;
            for (i, line) in lines.iter().enumerate() {
                if line.is_empty() {
                    continue;
                }
                if i == 0 {
                    let hdr = parse_flat(line).map_err(|e| format!("segment {seq} header: {e}"))?;
                    if hdr.str("e").ok().as_deref() != Some("header") {
                        return Err(format!("segment {seq} does not start with a header"));
                    }
                    let v = hdr.u64("v").map_err(|e| format!("segment {seq} header: {e}"))?;
                    if !(JOURNAL_SCHEMA_MIN..=JOURNAL_SCHEMA).contains(&v) {
                        return Err(format!(
                            "unsupported journal schema v{v} (this reader speaks \
                             v{JOURNAL_SCHEMA_MIN}..=v{JOURNAL_SCHEMA})"
                        ));
                    }
                    seg_schema = v;
                    continue;
                }
                match JournalEvent::parse_at(line, seg_schema) {
                    Ok(ev) => events.push(ev),
                    Err(_) if seq == last_seq && i == lines.len() - 1 && !ends_clean => {
                        // In-flight partial write at the live tail.
                    }
                    Err(e) => return Err(format!("segment {seq} line {}: {e}", i + 1)),
                }
            }
        }
        Ok(JournalReadout { events, complete, segments: seqs.len() })
    }
}

fn rotate(s: &mut JournalState) -> std::io::Result<()> {
    s.writer.flush()?;
    s.seq += 1;
    let mut writer = BufWriter::new(std::fs::File::create(segment_path(&s.cfg.dir, s.seq))?);
    let header = header_line(s.seq);
    writer.write_all(header.as_bytes())?;
    s.writer = writer;
    s.seg_bytes = header.len() as u64;
    s.live_segments.push(s.seq);
    while s.live_segments.len() > s.cfg.max_segments.max(1) {
        let old = s.live_segments.remove(0);
        let _ = std::fs::remove_file(segment_path(&s.cfg.dir, old));
    }
    Ok(())
}

/// Render a u64 slice as a JSON number array (`[1,2,3]`).
fn nums_to_str(nums: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, n) in nums.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.to_string());
    }
    out.push(']');
    out
}

fn buckets_to_str(buckets: &[u64; BUCKETS]) -> String {
    let mut out = String::new();
    for (i, &n) in buckets.iter().enumerate() {
        if n > 0 {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(&format!("{i}:{n}"));
        }
    }
    out
}

fn buckets_from_str(s: &str) -> Result<[u64; BUCKETS], String> {
    let mut buckets = [0u64; BUCKETS];
    if s.is_empty() {
        return Ok(buckets);
    }
    for pair in s.split(',') {
        let (i, n) = pair.split_once(':').ok_or_else(|| format!("bad bucket pair {pair:?}"))?;
        let i: usize = i.parse().map_err(|_| format!("bad bucket index {i:?}"))?;
        if i >= BUCKETS {
            return Err(format!("bucket index {i} out of range"));
        }
        buckets[i] = n.parse().map_err(|_| format!("bad bucket count {n:?}"))?;
    }
    Ok(buckets)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One value in a flat JSON object.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Str(String),
    Num(i128),
    Bool(bool),
    /// A `[...]` of numbers (bench trajectory files use these).
    NumArray(Vec<i128>),
}

/// A parsed flat JSON object (string/number/bool/number-array values
/// only — exactly the shapes the journal and the bench trajectory emit).
#[derive(Debug, Default)]
pub struct FlatObject(BTreeMap<String, JsonValue>);

impl FlatObject {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.0.get(key)
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(|k| k.as_str())
    }

    pub fn str(&self, key: &str) -> Result<String, String> {
        match self.0.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }

    pub fn u64(&self, key: &str) -> Result<u64, String> {
        match self.0.get(key) {
            Some(JsonValue::Num(n)) if *n >= 0 && *n <= u64::MAX as i128 => Ok(*n as u64),
            other => Err(format!("field {key:?}: expected u64, got {other:?}")),
        }
    }

    pub fn i64(&self, key: &str) -> Result<i64, String> {
        match self.0.get(key) {
            Some(JsonValue::Num(n)) if *n >= i64::MIN as i128 && *n <= i64::MAX as i128 => {
                Ok(*n as i64)
            }
            other => Err(format!("field {key:?}: expected i64, got {other:?}")),
        }
    }

    pub fn bool(&self, key: &str) -> Result<bool, String> {
        match self.0.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            other => Err(format!("field {key:?}: expected bool, got {other:?}")),
        }
    }

    pub fn u64_array(&self, key: &str) -> Result<Vec<u64>, String> {
        match self.0.get(key) {
            Some(JsonValue::NumArray(a)) if a.iter().all(|n| *n >= 0 && *n <= u64::MAX as i128) => {
                Ok(a.iter().map(|n| *n as u64).collect())
            }
            other => Err(format!("field {key:?}: expected u64 array, got {other:?}")),
        }
    }
}

/// Parse one flat JSON object line (string / integer / bool / number
/// array values).  Hand-rolled: the toolchain has no JSON dependency.
pub fn parse_flat(line: &str) -> Result<FlatObject, String> {
    let mut chars = line.trim().chars().peekable();
    let mut map = BTreeMap::new();
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(FlatObject(map));
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_value(&mut chars)?;
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(FlatObject(map))
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut Chars) {
    while matches!(chars.peek(), Some(' ' | '\t')) {
        chars.next();
    }
}

fn expect(chars: &mut Chars, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_value(chars: &mut Chars) -> Result<JsonValue, String> {
    match chars.peek() {
        Some('"') => Ok(JsonValue::Str(parse_string(chars)?)),
        Some('t') | Some('f') => parse_bool(chars).map(JsonValue::Bool),
        Some('[') => parse_num_array(chars).map(JsonValue::NumArray),
        Some(c) if c.is_ascii_digit() || *c == '-' => parse_number(chars).map(JsonValue::Num),
        other => Err(format!("unexpected value start {other:?}")),
    }
}

fn parse_bool(chars: &mut Chars) -> Result<bool, String> {
    let mut word = String::new();
    while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
        word.push(chars.next().unwrap());
    }
    match word.as_str() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected bool, got {other:?}")),
    }
}

fn parse_number(chars: &mut Chars) -> Result<i128, String> {
    let mut text = String::new();
    if chars.peek() == Some(&'-') {
        text.push(chars.next().unwrap());
    }
    while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
        text.push(chars.next().unwrap());
    }
    // Fractional part: the trajectory files carry a few float fields
    // (timings, scores).  Truncate toward zero — every gated field is
    // integral, floats are informational.
    if chars.peek() == Some(&'.') {
        chars.next();
        while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
            chars.next();
        }
    }
    text.parse::<i128>().map_err(|_| format!("bad number {text:?}"))
}

fn parse_num_array(chars: &mut Chars) -> Result<Vec<i128>, String> {
    expect(chars, '[')?;
    let mut out = Vec::new();
    skip_ws(chars);
    if chars.peek() == Some(&']') {
        chars.next();
        return Ok(out);
    }
    loop {
        skip_ws(chars);
        out.push(parse_number(chars)?);
        skip_ws(chars);
        match chars.next() {
            Some(',') => continue,
            Some(']') => break,
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
    Ok(out)
}

fn parse_string(chars: &mut Chars) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('/') => out.push('/'),
                Some('u') => {
                    let mut hex = String::new();
                    for _ in 0..4 {
                        hex.push(chars.next().ok_or("truncated \\u escape")?);
                    }
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u{hex}"))?;
                    out.push(char::from_u32(code).ok_or(format!("bad codepoint \\u{hex}"))?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gemstone-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::TxnBegin,
            JournalEvent::Statement { session: 1, wall_ns: 1234, label: "X := 1\n\"q\"".into() },
            JournalEvent::Interp { dispatches: 42, sends: 7 },
            JournalEvent::TrackWrite { track: 3, ok: true, bytes: 8192, backend: "sim".into() },
            JournalEvent::TrackRead { track: 3, ok: false, backend: "file".into() },
            JournalEvent::DiskSync { ok: true, backend: "file".into() },
            JournalEvent::DiskSync { ok: false, backend: "file".into() },
            JournalEvent::CacheAccess { track: 3, shard: 3, hit: true },
            JournalEvent::CacheFill { track: 9, commit: false },
            JournalEvent::CacheEvict { track: 2 },
            JournalEvent::ObjectFault { goop: 77 },
            JournalEvent::VerifyCheck { rejected: true },
            JournalEvent::EffectSummary {
                selector: "do:".into(),
                effect: "WritesLocal".into(),
                reads: 2,
                writes: 0,
            },
            JournalEvent::EffectClassify { static_ro: true },
            JournalEvent::EffectCommit,
            JournalEvent::EffectInvalidate,
            JournalEvent::SafeWriteGroup {
                tracks: 4,
                objects: 11,
                fsyncs: 2,
                backend: "file".into(),
            },
            JournalEvent::TxnAbort { conflict: true },
            JournalEvent::TxnConflict {
                kind: "overlap".into(),
                session: 2,
                start: 10,
                culprit_time: 12,
                culprit_session: 1,
                goops: vec![77, 90],
                tracks: vec![3],
            },
            JournalEvent::TxnConflict {
                kind: "watermark".into(),
                session: 0,
                start: 4,
                culprit_time: 9,
                culprit_session: 0,
                goops: vec![],
                tracks: vec![],
            },
            JournalEvent::CommitTimeline {
                session: 2,
                snapshot_age_us: 1500,
                validation_us: 40,
                safe_write_us: 900,
                fsync_us: 600,
                publish_us: 5,
            },
            JournalEvent::FsyncLatency { us: 480, backend: "file".into() },
            JournalEvent::StatsUpdate {
                set: 4096,
                path: "s3.i0".into(),
                cardinality: 100,
                total: 100,
                distinct: 10,
                fuzz: 0,
                points: "4059000000000000:5a,4024000000000000:a".into(),
            },
            JournalEvent::PlanChoice {
                session: 2,
                label: "Emp select: [:e | e dept = 7]".into(),
                chosen: "hash-join[v1=v0](scan v1, scan v0)".into(),
                cost_milli: 123_500,
                alternatives: 4,
                cost_based: true,
                replan: false,
            },
            JournalEvent::PlanChoice {
                session: 2,
                label: "no stats".into(),
                chosen: "scan v0".into(),
                cost_milli: 1000,
                alternatives: 1,
                cost_based: false,
                replan: true,
            },
            JournalEvent::PlanDrift {
                session: 2,
                label: "Emp select: [:e | e dept = 7]".into(),
                plan: "select(scan v0)".into(),
                op: 1,
                est: 3,
                actual: 90,
                err_pct: 2900,
            },
            JournalEvent::TxnCommit,
            JournalEvent::Recovery {
                roots_considered: 2,
                roots_valid: 1,
                roots_torn: 1,
                epoch: 5,
                tracks_salvaged: 9,
                tracks_discarded: 1,
                reopen_reads: 12,
            },
            JournalEvent::CacheConfigured { tracks: 16 },
        ]
    }

    #[test]
    fn events_round_trip_through_lines() {
        for ev in sample_events() {
            let line = ev.to_line();
            let back = JournalEvent::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "round trip for {line}");
        }
    }

    #[test]
    fn apply_matches_live_counter_rules() {
        let r = MetricsRegistry::new();
        for ev in sample_events() {
            ev.apply_to(&r);
        }
        let s = r.snapshot();
        assert_eq!(s.counter("txn.begins"), 1);
        assert_eq!(s.counter("txn.commits"), 1);
        assert_eq!(s.counter("txn.aborts"), 1);
        assert_eq!(s.counter("txn.conflicts"), 1);
        assert_eq!(s.counter("session.statements"), 1);
        assert_eq!(s.counter("opal.interp.dispatches"), 42);
        assert_eq!(s.counter("storage.disk.writes"), 1);
        assert_eq!(s.counter("storage.disk.bytes_written"), 8192);
        assert_eq!(s.counter("storage.disk.failed_reads"), 1);
        assert_eq!(s.counter("storage.disk.fsyncs"), 1, "only the ok sync counts");
        assert_eq!(s.counter("storage.cache.hits"), 1);
        assert_eq!(s.counter("storage.cache.fills_read"), 1);
        assert_eq!(s.counter("storage.cache.evictions"), 1);
        assert_eq!(s.counter("storage.store.object_faults"), 1);
        assert_eq!(s.counter("storage.store.commits"), 1);
        assert_eq!(s.counter("storage.store.objects_written"), 11);
        assert_eq!(s.counter("opal.verify.checks"), 1);
        assert_eq!(s.counter("opal.verify.rejects"), 1);
        assert_eq!(s.counter("opal.effects.computed"), 1);
        assert_eq!(s.counter("opal.effects.writes_local"), 1);
        assert_eq!(s.counter("opal.effects.stmts_classified"), 1);
        assert_eq!(s.counter("opal.effects.stmts_static_ro"), 1);
        assert_eq!(s.counter("opal.effects.static_ro_commits"), 1);
        assert_eq!(s.counter("opal.effects.invalidations"), 1);
        assert_eq!(s.counter("calculus.stats.updates"), 1);
        assert_eq!(s.counter("calculus.plan.choices"), 2);
        assert_eq!(s.counter("calculus.plan.cost_based"), 1);
        assert_eq!(s.counter("calculus.plan.replans"), 1);
        assert_eq!(s.counter("calculus.plan.drift"), 1);
        assert_eq!(s.gauge("storage.recovery.epoch"), 5);
        assert_eq!(s.histogram("storage.commit.group_tracks").unwrap().count, 1);
        assert_eq!(s.histogram("session.statement_ns").unwrap().sum, 1234);
        assert_eq!(s.histogram("commit.phase.fsync_us").unwrap().sum, 600);
        assert_eq!(s.histogram("commit.phase.snapshot_age_us").unwrap().count, 1);
        assert_eq!(s.histogram("storage.disk.fsync_us").unwrap().sum, 480);
        assert_eq!(
            s.counter("txn.conflicts"),
            1,
            "txn_conflict events are forensic only; the paired abort moves the counter"
        );
    }

    #[test]
    fn baseline_reloads_absolute_state() {
        let live = MetricsRegistry::new();
        live.counter("a.b").add(41);
        live.gauge("g").set(-6);
        let h = live.histogram("lat");
        for v in [0u64, 3, 900] {
            h.record(v);
        }
        let snap = live.snapshot();

        let j = Journal::disabled();
        let dir = temp_dir("baseline");
        j.start(JournalConfig::at(&dir)).unwrap();
        j.emit_baseline(&snap);
        j.stop();

        let readout = Journal::read_from(&dir).unwrap();
        let replayed = replay(&readout.events).snapshot();
        assert_eq!(replayed, snap);
        assert_eq!(replayed.to_json_lines(), snap.to_json_lines());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_segments_and_marks_incomplete() {
        let j = Journal::disabled();
        let dir = temp_dir("rotate");
        j.start(JournalConfig { dir: dir.clone(), max_segment_bytes: 256, max_segments: 3 })
            .unwrap();
        for i in 0..200 {
            j.emit(&JournalEvent::TrackWrite {
                track: i,
                ok: true,
                bytes: 8192,
                backend: "sim".into(),
            });
        }
        j.flush();
        let (seq, live, _) = j.status().unwrap();
        assert!(seq > 3, "many rotations happened: seq={seq}");
        assert!(live <= 3, "segment budget enforced: {live}");
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("journal-"))
            .count();
        assert!(on_disk <= 3, "old segments deleted from disk: {on_disk}");

        let readout = Journal::read_from(&dir).unwrap();
        assert!(!readout.complete, "rotated-away head makes the journal incomplete");
        assert!(readout.events.len() < 200, "oldest events gone");
        assert!(!readout.events.is_empty());
        j.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let dir = temp_dir("schema");
        std::fs::write(
            dir.join("journal-00000001.jsonl"),
            "{\"e\":\"header\",\"v\":99,\"seq\":1}\n{\"e\":\"txn_begin\"}\n",
        )
        .unwrap();
        let err = Journal::read_from(&dir).unwrap_err();
        assert!(err.contains("unsupported journal schema v99"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_event_is_rejected() {
        let dir = temp_dir("unknown-event");
        std::fs::write(
            dir.join("journal-00000001.jsonl"),
            format!("{}{{\"e\":\"warp_drive\",\"x\":1}}\n", header_line(1)),
        )
        .unwrap();
        let err = Journal::read_from(&dir).unwrap_err();
        assert!(err.contains("unknown journal event"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal committed under schema v2 (the previous release) must
    /// still replay, byte-exact, after the v3 bump: the v2 event set is a
    /// strict subset of v3 and the replay rules for it are unchanged.
    #[test]
    fn v2_fixture_replays_byte_exact_under_v3_reader() {
        let dir = temp_dir("v2-compat");
        std::fs::write(
            dir.join("journal-00000001.jsonl"),
            concat!(
                "{\"e\":\"header\",\"v\":2,\"seq\":1}\n",
                "{\"e\":\"txn_begin\"}\n",
                "{\"e\":\"cache_access\",\"track\":3,\"shard\":3,\"hit\":true}\n",
                "{\"e\":\"track_write\",\"track\":3,\"ok\":true,\"bytes\":8192,\
                 \"backend\":\"file\"}\n",
                "{\"e\":\"disk_sync\",\"ok\":true,\"backend\":\"file\"}\n",
                "{\"e\":\"safe_write_group\",\"tracks\":1,\"objects\":2,\"fsyncs\":2,\
                 \"backend\":\"file\"}\n",
                "{\"e\":\"txn_abort\",\"conflict\":true}\n",
                "{\"e\":\"txn_commit\"}\n",
            ),
        )
        .unwrap();
        let readout = Journal::read_from(&dir).unwrap();
        assert!(readout.complete);
        assert_eq!(readout.events.len(), 7);

        // The same moves made live must match the replay byte-for-byte.
        let live = MetricsRegistry::new();
        live.counter("txn.begins").inc();
        live.counter("storage.cache.hits").inc();
        live.counter("storage.cache.shard3.hits").inc();
        live.counter("storage.disk.writes").inc();
        live.counter("storage.disk.bytes_written").add(8192);
        live.counter("storage.disk.fsyncs").inc();
        live.counter("storage.store.commits").inc();
        live.counter("storage.store.objects_written").add(2);
        live.histogram("storage.commit.group_tracks").record(1);
        live.counter("txn.aborts").inc();
        live.counter("txn.conflicts").inc();
        live.counter("txn.commits").inc();
        let replayed = replay(&readout.events).snapshot();
        assert_eq!(replayed.to_json_lines(), live.snapshot().to_json_lines());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A v3-only event under a v2 segment header is corruption, not
    /// forward compatibility: within one schema version the event set is
    /// closed, so the reader refuses it with the unknown-event error.
    #[test]
    fn v3_event_under_v2_header_is_rejected() {
        let dir = temp_dir("v3-in-v2");
        std::fs::write(
            dir.join("journal-00000001.jsonl"),
            "{\"e\":\"header\",\"v\":2,\"seq\":1}\n\
             {\"e\":\"fsync_latency\",\"us\":480,\"backend\":\"file\"}\n",
        )
        .unwrap();
        let err = Journal::read_from(&dir).unwrap_err();
        assert!(err.contains("unknown journal event \"fsync_latency\""), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal committed under schema v3 (the previous release) must
    /// still replay, byte-exact, after the v4 bump: the v3 event set is a
    /// strict subset of v4 and the replay rules for it are unchanged.
    #[test]
    fn v3_fixture_replays_byte_exact_under_v4_reader() {
        let dir = temp_dir("v3-compat");
        std::fs::write(
            dir.join("journal-00000001.jsonl"),
            concat!(
                "{\"e\":\"header\",\"v\":3,\"seq\":1}\n",
                "{\"e\":\"txn_begin\"}\n",
                "{\"e\":\"txn_abort\",\"conflict\":true}\n",
                "{\"e\":\"txn_conflict\",\"kind\":\"overlap\",\"session\":2,\"start\":10,\
                 \"culprit_time\":12,\"culprit_session\":1,\"goops\":[77],\"tracks\":[3]}\n",
                "{\"e\":\"commit_timeline\",\"session\":2,\"snapshot_age_us\":1500,\
                 \"validation_us\":40,\"safe_write_us\":900,\"fsync_us\":600,\
                 \"publish_us\":5}\n",
                "{\"e\":\"fsync_latency\",\"us\":480,\"backend\":\"file\"}\n",
                "{\"e\":\"txn_commit\"}\n",
            ),
        )
        .unwrap();
        let readout = Journal::read_from(&dir).unwrap();
        assert!(readout.complete);
        assert_eq!(readout.events.len(), 6);

        // The same moves made live must match the replay byte-for-byte.
        let live = MetricsRegistry::new();
        live.counter("txn.begins").inc();
        live.counter("txn.aborts").inc();
        live.counter("txn.conflicts").inc();
        live.histogram("commit.phase.snapshot_age_us").record(1500);
        live.histogram("commit.phase.validation_us").record(40);
        live.histogram("commit.phase.safe_write_us").record(900);
        live.histogram("commit.phase.fsync_us").record(600);
        live.histogram("commit.phase.publish_us").record(5);
        live.histogram("storage.disk.fsync_us").record(480);
        live.counter("txn.commits").inc();
        let replayed = replay(&readout.events).snapshot();
        assert_eq!(replayed.to_json_lines(), live.snapshot().to_json_lines());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A v4-only event under a v3 segment header is corruption, not
    /// forward compatibility: within one schema version the event set is
    /// closed, so the reader refuses it with the unknown-event error.
    #[test]
    fn v4_event_under_v3_header_is_rejected() {
        for line in [
            "{\"e\":\"stats_update\",\"set\":1,\"path\":\"s3\",\"cardinality\":9,\"total\":9,\
             \"distinct\":3,\"fuzz\":0,\"points\":\"\"}",
            "{\"e\":\"plan_choice\",\"session\":1,\"label\":\"q\",\"chosen\":\"scan v0\",\
             \"cost_milli\":1000,\"alternatives\":1,\"cost_based\":false,\"replan\":false}",
            "{\"e\":\"plan_drift\",\"session\":1,\"label\":\"q\",\"plan\":\"scan v0\",\"op\":0,\
             \"est\":1,\"actual\":50,\"err_pct\":4900}",
        ] {
            let dir = temp_dir("v4-in-v3");
            std::fs::write(
                dir.join("journal-00000001.jsonl"),
                format!("{{\"e\":\"header\",\"v\":3,\"seq\":1}}\n{line}\n"),
            )
            .unwrap();
            let err = Journal::read_from(&dir).unwrap_err();
            assert!(err.contains("unknown journal event"), "{err}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn disabled_journal_emits_nothing() {
        let j = Journal::disabled();
        j.emit(&JournalEvent::TxnBegin);
        assert!(j.dir().is_none());
        assert!(!j.enabled());
    }

    #[test]
    fn partial_trailing_line_is_tolerated() {
        let dir = temp_dir("partial");
        std::fs::write(
            dir.join("journal-00000001.jsonl"),
            format!("{}{{\"e\":\"txn_begin\"}}\n{{\"e\":\"txn_co", header_line(1)),
        )
        .unwrap();
        let readout = Journal::read_from(&dir).unwrap();
        assert_eq!(readout.events, vec![JournalEvent::TxnBegin]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
