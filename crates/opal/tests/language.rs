//! End-to-end OPAL language tests: source blocks executed against the
//! in-memory [`BasicWorld`] — the ST80-equivalent, non-persistent language
//! substrate of §4.

use gemstone_object::{GemError, Oop, OopKind};
use gemstone_opal::{run_block, BasicWorld, OpalWorld};

fn eval(src: &str) -> Oop {
    let mut w = BasicWorld::new();
    run_block(&mut w, src).unwrap_or_else(|e| panic!("{src}\n→ {e}"))
}

fn eval_in(w: &mut BasicWorld, src: &str) -> Oop {
    run_block(w, src).unwrap_or_else(|e| panic!("{src}\n→ {e}"))
}

fn eval_err(src: &str) -> GemError {
    let mut w = BasicWorld::new();
    run_block(&mut w, src).expect_err(src)
}

fn as_string(w: &BasicWorld, v: Oop) -> String {
    w.string_value(v).unwrap_or_else(|| panic!("{v:?} is not stringlike"))
}

#[test]
fn arithmetic_tower() {
    assert_eq!(eval("3 + 4 * 2").as_int(), Some(14), "no precedence: left to right");
    assert_eq!(eval("3 + (4 * 2)").as_int(), Some(11));
    assert_eq!(eval("7 // 2").as_int(), Some(3));
    assert_eq!(eval("7 \\\\ 2").as_int(), Some(1));
    assert_eq!(eval("-7 \\\\ 2").as_int(), Some(1), "euclidean mod");
    assert_eq!(eval("6 / 3").as_int(), Some(2), "exact division stays integer");
    assert_eq!(eval("7 / 2").as_float(), Some(3.5));
    assert_eq!(eval("2.5 + 1").as_float(), Some(3.5));
    assert_eq!(eval("3 max: 9").as_int(), Some(9));
    assert_eq!(eval("3 negated abs").as_int(), Some(3));
    assert_eq!(eval("24650 > (0.10 * 142000)").as_bool(), Some(true));
}

#[test]
fn arithmetic_errors() {
    assert!(matches!(eval_err("1 / 0"), GemError::ZeroDivide));
    assert!(matches!(eval_err("1 // 0"), GemError::ZeroDivide));
    assert!(matches!(eval_err("1 + 'x'"), GemError::TypeMismatch { .. }));
}

#[test]
fn comparisons_and_booleans() {
    assert_eq!(eval("3 < 4").as_bool(), Some(true));
    assert_eq!(eval("(3 < 4) & (4 < 3)").as_bool(), Some(false));
    assert_eq!(eval("(3 < 4) | (4 < 3)").as_bool(), Some(true));
    assert_eq!(eval("(3 < 4) not").as_bool(), Some(false));
    assert_eq!(eval("3 = 3.0").as_bool(), Some(true), "numeric equivalence");
    assert_eq!(eval("3 == 3").as_bool(), Some(true), "immediates are identical");
    assert_eq!(eval("'ab' < 'b'").as_bool(), Some(true));
}

#[test]
fn identity_vs_equivalence_of_strings() {
    // §4.2: "Two entities can have equivalent structures … but not be the
    // same object."
    assert_eq!(eval("'Sales' = 'Sales'").as_bool(), Some(true));
    assert_eq!(eval("'Sales' == 'Sales'").as_bool(), Some(false), "two distinct objects");
    assert_eq!(eval("| s | s := 'Sales'. s == s").as_bool(), Some(true));
}

#[test]
fn strings_and_symbols() {
    let mut w = BasicWorld::new();
    let v = eval_in(&mut w, "'Gem', 'Stone'");
    assert_eq!(as_string(&w, v), "GemStone");
    assert_eq!(eval("'abc' size").as_int(), Some(3));
    assert_eq!(eval("'abc' at: 2").as_char(), Some('b'));
    assert!(matches!(eval("#name").kind(), OopKind::Sym(_)));
    assert_eq!(eval("'name' asSymbol = #name").as_bool(), Some(true));
    assert!(matches!(eval_err("'abc' at: 4"), GemError::IndexOutOfRange { .. }));
}

#[test]
fn control_flow_inlining() {
    assert_eq!(eval("3 < 4 ifTrue: ['yes' size] ifFalse: [0]").as_int(), Some(3));
    assert_eq!(eval("3 > 4 ifTrue: [1]").kind(), OopKind::Nil);
    assert_eq!(eval("3 > 4 ifFalse: [9]").as_int(), Some(9));
    assert_eq!(eval("(3 < 4) and: [4 < 5]").as_bool(), Some(true));
    assert_eq!(eval("(3 > 4) and: [1 / 0]").as_bool(), Some(false), "short circuit");
    assert_eq!(eval("(3 < 4) or: [1 / 0]").as_bool(), Some(true), "short circuit");
    assert_eq!(
        eval("| i sum | i := 0. sum := 0. [i < 10] whileTrue: [i := i + 1. sum := sum + i]. sum")
            .as_int(),
        Some(55)
    );
    assert_eq!(eval("| s | s := 0. 1 to: 5 do: [:i | s := s + i]. s").as_int(), Some(15));
    assert_eq!(eval("| n | n := 0. 3 timesRepeat: [n := n + 2]. n").as_int(), Some(6));
}

#[test]
fn blocks_are_closures() {
    assert_eq!(eval("[:x | x * x] value: 7").as_int(), Some(49));
    assert_eq!(eval("[:a :b | a - b] value: 10 value: 3").as_int(), Some(7));
    assert_eq!(
        eval("| n add | n := 10. add := [:x | x + n]. n := 20. add value: 1").as_int(),
        Some(21),
        "closures see the live variable, not a copy"
    );
    assert_eq!(
        eval("| b | b := [:x | | y | y := x * 2. y + 1]. (b value: 3) + (b value: 4)").as_int(),
        Some(16),
        "block temps are per-activation"
    );
}

#[test]
fn nested_blocks_close_over_outer_block_variables() {
    // d is an outer *block* parameter referenced two blocks down — the
    // §5.1 query's nested-loop shape.
    assert_eq!(
        eval(
            "| outer pairs |
             outer := OrderedCollection new. outer add: 10; add: 20.
             pairs := 0.
             outer do: [:d | | inner |
                 inner := OrderedCollection new. inner add: 1; add: 2; add: 3.
                 inner do: [:e | (e + d) > 12 ifTrue: [pairs := pairs + 1]]].
             pairs"
        )
        .as_int(),
        Some(4),
        "11,12,13 vs 21,22,23 → 13, 21, 22, 23 exceed 12"
    );
    // Writing an outer block variable from the inner block.
    assert_eq!(
        eval(
            "| c total |
             c := OrderedCollection new. c add: 2; add: 3.
             total := 0.
             c do: [:x | | acc | acc := 0.
                 c do: [:y | acc := acc + (x * y)].
                 total := total + acc].
             total"
        )
        .as_int(),
        Some(25),
        "(2+3)·2 + (2+3)·3"
    );
}

#[test]
fn non_local_return_from_block() {
    let mut w = BasicWorld::new();
    eval_in(
        &mut w,
        "Object subclass: 'Finder' instVarNames: #().
         Finder compile: 'findIn: coll coll do: [:e | e > 2 ifTrue: [^e]]. ^0'",
    );
    let v = eval_in(
        &mut w,
        "| c | c := OrderedCollection new. c add: 1; add: 5; add: 9. Finder new findIn: c",
    );
    assert_eq!(v.as_int(), Some(5), "^ inside do: block returns from findIn:");
}

#[test]
fn collections_protocols() {
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 3; add: 1. c size").as_int(),
        Some(2)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 3; add: 1. c first").as_int(),
        Some(3)
    );
    assert_eq!(eval("| s | s := Set new. s add: 5; add: 5; add: 6. s size").as_int(), Some(2));
    assert_eq!(eval("| b | b := Bag new. b add: 5; add: 5. b size").as_int(), Some(2));
    assert_eq!(
        eval("| b | b := Bag new. b add: 5; add: 5; add: 7. b occurrencesOf: 5").as_int(),
        Some(2)
    );
    assert_eq!(eval("| s | s := Set new. s add: 2. s includes: 2").as_bool(), Some(true));
    assert_eq!(eval("| s | s := Set new. s add: 2. s includes: 3").as_bool(), Some(false));
    assert_eq!(eval("Set new isEmpty").as_bool(), Some(true));
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. c inject: 0 into: [:a :e | a + e]")
            .as_int(),
        Some(6)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. (c collect: [:e | e * e]) last")
            .as_int(),
        Some(9)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. 1 to: 10 do: [:i | c add: i]. (c select: [:e | e printString size > 1]) size")
            .as_int(),
        Some(1),
        "procedural select fallback (printString is not calculus)"
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 9; add: 4. c detect: [:e | e < 5]").as_int(),
        Some(4)
    );
    assert!(matches!(
        eval_err("OrderedCollection new detect: [:e | true]"),
        GemError::RuntimeError(_)
    ));
}

#[test]
fn collection_arithmetic_protocols() {
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 3; add: 9; add: 5. c sum").as_int(),
        Some(17)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 3; add: 9; add: 5. c max").as_int(),
        Some(9)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 3; add: 9; add: 5. c min").as_int(),
        Some(3)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 2; add: 4. c average").as_int(),
        Some(3)
    );
    assert_eq!(
        eval(
            "| c | c := OrderedCollection new. 1 to: 10 do: [:i | c add: i]. c count: [:e | e > 7]"
        )
        .as_int(),
        Some(3)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 1; add: 1; add: 2. c asSet size").as_int(),
        Some(2)
    );
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 1; add: 1. c asBag size").as_int(),
        Some(2)
    );
}

#[test]
fn sorting_and_searching() {
    let mut w = BasicWorld::new();
    let v = eval_in(
        &mut w,
        "| c | c := OrderedCollection new. c add: 5; add: 1; add: 9; add: 3. c asSortedArray printString",
    );
    assert_eq!(as_string(&w, v), "Array (1 3 5 9)");
    let v = eval_in(
        &mut w,
        "| c | c := OrderedCollection new. c add: 'pear'; add: 'apple'; add: 'fig'. (c asSortedArray at: 1)",
    );
    assert_eq!(as_string(&w, v), "apple");
    assert_eq!(
        eval("| c | c := OrderedCollection new. c add: 7; add: 8; add: 9. c indexOf: 8").as_int(),
        Some(2)
    );
    assert_eq!(eval("| c | c := OrderedCollection new. c add: 7. c indexOf: 99").as_int(), Some(0));
}

#[test]
fn subset_test_reads_naturally() {
    // §5.2: "stipulating one set is the subset of another set requires two
    // quantifiers in relational calculus" — here it is one message.
    assert_eq!(
        eval(
            "| kids all | kids := Set new. kids add: 'Olivia'; add: 'Dale'; add: 'Paul'.
             all := Set new. all add: 'Olivia'; add: 'Dale'; add: 'Paul'; add: 'Sam'.
             all includesAll: kids"
        )
        .as_bool(),
        Some(true)
    );
}

#[test]
fn dictionaries() {
    assert_eq!(
        eval("| d | d := Dictionary new. d at: #name put: 'Ellen'. (d at: #name) size").as_int(),
        Some(5)
    );
    assert_eq!(
        eval("| d | d := Dictionary new. d at: 'Acme Corp' put: 42. d at: 'Acme Corp'").as_int(),
        Some(42),
        "string keys intern to the same element names"
    );
    assert_eq!(eval("| d | d := Dictionary new. d at: #x").kind(), OopKind::Nil);
    assert_eq!(eval("| d | d := Dictionary new. d at: #x ifAbsent: [99]").as_int(), Some(99));
    assert_eq!(
        eval("| d | d := Dictionary new. d at: 1 put: 'a'. d at: #b put: 2. d keys size").as_int(),
        Some(2)
    );
    assert_eq!(
        eval("| d | d := Dictionary new. d at: #x put: 5. d removeKey: #x. d includesKey: #x")
            .as_bool(),
        Some(false)
    );
}

#[test]
fn class_definition_from_opal() {
    // §4.1's Employee/Manager, entirely from OPAL source.
    let mut w = BasicWorld::new();
    eval_in(
        &mut w,
        "Object subclass: 'Employee' instVarNames: #('name' 'salary' 'depts').
         Employee subclass: 'Manager' instVarNames: #('departmentManaged').
         Employee compile: 'raiseBy: pct salary := salary + (salary * pct / 100) asInteger. ^salary'",
    );
    let v = eval_in(&mut w, "| m | m := Manager new. m salary: 24000. m raiseBy: 10");
    assert_eq!(v.as_int(), Some(26400), "Manager inherits Employee's method");
    let v = eval_in(&mut w, "Manager new isKindOf: Employee");
    assert_eq!(v.as_bool(), Some(true));
    let v = eval_in(&mut w, "Employee new isKindOf: Manager");
    assert_eq!(v.as_bool(), Some(false));
}

#[test]
fn accessors_fall_out_of_element_semantics() {
    let mut w = BasicWorld::new();
    eval_in(&mut w, "Object subclass: 'Pt' instVarNames: #('x' 'y')");
    let v = eval_in(&mut w, "| p | p := Pt new. p x: 3. p y: 4. (p x * p x) + (p y * p y)");
    assert_eq!(v.as_int(), Some(25), "declared instvars read/write without boilerplate");
}

#[test]
fn optional_instvars_cost_nothing_and_schema_evolves() {
    let mut w = BasicWorld::new();
    eval_in(&mut w, "Object subclass: 'Emp' instVarNames: #('name')");
    let v = eval_in(&mut w, "| e | e := Emp new. e size");
    assert_eq!(v.as_int(), Some(0), "unset optional variables occupy no elements");
    // Add a variable to the class; existing instances simply lack it (§2C).
    eval_in(&mut w, "Emp addInstVarName: 'phone'");
    let v = eval_in(&mut w, "| e | e := Emp new. e phone: 3949. e phone");
    assert_eq!(v.as_int(), Some(3949));
    let v = eval_in(&mut w, "| e | e := Emp new. e phone");
    assert_eq!(v.kind(), OopKind::Nil);
}

#[test]
fn undefined_selector_is_dnu() {
    let mut w = BasicWorld::new();
    eval_in(&mut w, "Object subclass: 'Emp' instVarNames: #('name')");
    match run_block(&mut w, "Emp new launchRockets").unwrap_err() {
        GemError::DoesNotUnderstand { class, selector } => {
            assert_eq!(class, "Emp");
            assert_eq!(selector, "launchRockets");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn paths_navigate_dictionaries() {
    // The §5.1 database fragment built and navigated with ! paths.
    let v = eval(
        "| acme dept | acme := Dictionary new.
         dept := Dictionary new.
         dept at: #Name put: 'Sales'. dept at: #Budget put: 142000.
         acme at: #Departments put: Dictionary new.
         acme ! Departments ! A12 := dept.
         acme ! Departments ! A12 ! Budget",
    );
    assert_eq!(v.as_int(), Some(142_000));
}

#[test]
fn path_through_nil_is_an_error() {
    assert!(matches!(
        eval_err("| d | d := Dictionary new. d ! missing ! deeper"),
        GemError::PathThroughNil(_)
    ));
}

#[test]
fn temporal_path_needs_a_database() {
    // BasicWorld keeps no history: the @ operator parses and compiles but
    // reports the missing substrate (the core crate supplies it).
    assert!(matches!(
        eval_err("| d | d := Dictionary new. d at: #x put: 1. d ! x @ 3"),
        GemError::RuntimeError(_)
    ));
}

#[test]
fn cascades_return_last_message_value() {
    assert_eq!(eval("| c | c := OrderedCollection new. c add: 1; add: 2; size").as_int(), Some(2));
}

#[test]
fn printing() {
    let mut w = BasicWorld::new();
    let v = eval_in(&mut w, "42 printString");
    assert_eq!(as_string(&w, v), "42");
    let v = eval_in(&mut w, "3.5 printString");
    assert_eq!(as_string(&w, v), "3.5");
    let v = eval_in(&mut w, "'hi' printString");
    assert_eq!(as_string(&w, v), "'hi'");
    let v = eval_in(&mut w, "#sym printString");
    assert_eq!(as_string(&w, v), "#sym");
    let v = eval_in(&mut w, "nil printString");
    assert_eq!(as_string(&w, v), "nil");
    let v = eval_in(&mut w, "| c | c := OrderedCollection new. c add: 1; add: 2. c printString");
    assert_eq!(as_string(&w, v), "OrderedCollection (1 2)");
    let v = eval_in(&mut w, "Employee := nil. Object printString");
    assert_eq!(as_string(&w, v), "Object");
}

#[test]
fn globals_persist_across_doits_in_a_session() {
    let mut w = BasicWorld::new();
    eval_in(&mut w, "Counter := 10");
    assert_eq!(eval_in(&mut w, "Counter + 5").as_int(), Some(15));
}

#[test]
fn array_literals() {
    assert_eq!(eval("#(10 20 30) size").as_int(), Some(3));
    assert_eq!(eval("#(10 20 30) at: 2").as_int(), Some(20));
    assert_eq!(eval("#('a' 'bb' 'ccc') last size").as_int(), Some(3));
}

#[test]
fn to_do_inside_block() {
    // Inlined to:do: inside a real block exercises frame-local slots.
    assert_eq!(
        eval("| f | f := [:n | | s | s := 0. 1 to: n do: [:i | s := s + i]. s]. f value: 4")
            .as_int(),
        Some(10)
    );
}

#[test]
fn impure_select_block_is_rejected_at_install() {
    let mut w = BasicWorld::new();
    eval_in(&mut w, "Object subclass: 'Reg' instVarNames: #(log)");
    eval_in(&mut w, "Reg compile: 'note: x log add: x. ^x'");
    // The fallback block calls a user-defined mutating method: the effect
    // analysis proves it WritesLocal, so installation fails structurally.
    let err = run_block(&mut w, "Reg compile: 'sift: c ^c select: [:e | (self note: e) > 0]'")
        .unwrap_err();
    match err {
        GemError::ImpureSelectBlock { selector, effect } => {
            assert_eq!(selector, "sift:");
            assert_eq!(effect, "WritesLocal");
        }
        other => panic!("expected ImpureSelectBlock, got {other:?}"),
    }
    // A pure predicate (even one the calculus cannot translate) installs.
    eval_in(&mut w, "Reg compile: 'odds: c ^c select: [:e | e isNil not]'");
}

#[test]
fn deep_recursion_is_guarded() {
    let mut w = BasicWorld::new();
    eval_in(&mut w, "Object subclass: 'R' instVarNames: #(). R compile: 'go ^self go'");
    assert!(matches!(run_block(&mut w, "R new go").unwrap_err(), GemError::ResourceExhausted(_)));
}

#[test]
fn error_raises() {
    match eval_err("3 error: 'boom'") {
        GemError::RuntimeError(m) => assert_eq!(m, "boom"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn assignment_is_an_expression() {
    assert_eq!(eval("| a b | a := b := 4. a + b").as_int(), Some(8));
}

#[test]
fn associations() {
    assert_eq!(eval("(#k -> 42) value").as_int(), Some(42));
    assert_eq!(eval("(#k -> 42) key = #k").as_bool(), Some(true));
}

#[test]
fn comments_are_skipped() {
    assert_eq!(eval("\"the answer\" 6 * 7 \"trailing\"").as_int(), Some(42));
}
