//! Soundness property for the effect analysis: **no statement classified
//! `Pure` or `ReadOnly` ever performs a write at runtime.**
//!
//! "Write" means exactly what the commit fast path cares about: any world
//! operation that dirties or allocates workspace state (a fresh object is
//! born dirty), changes a global binding, or changes schema. A wrapper
//! world counts every such entry point; random programs mixing reads and
//! writes are classified first and executed second, and a read-only
//! verdict with a nonzero write count is a soundness bug.

use gemstone_object::{
    BodyFormat, ClassId, ElemName, GemResult, Kernel, MethodId, MethodRef, Oop, SymbolId,
};
use gemstone_opal::effects::{self, EffectCache};
use gemstone_opal::{
    compile_doit, run_block, BasicWorld, CompiledMethod, OpalWorld, QueryTemplate,
};
use gemstone_temporal::TxnTime;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::sync::Arc;

/// Counts every mutating/allocating world call made through it. Faulting
/// reads (`get_elem`, `elements`, `equals`…) are not writes.
struct CountingWorld {
    inner: BasicWorld,
    writes: u64,
}

impl CountingWorld {
    fn new(inner: BasicWorld) -> CountingWorld {
        CountingWorld { inner, writes: 0 }
    }
}

impl OpalWorld for CountingWorld {
    fn intern(&mut self, name: &str) -> SymbolId {
        self.inner.intern(name)
    }
    fn sym_name(&self, id: SymbolId) -> String {
        self.inner.sym_name(id)
    }
    fn class_named(&self, name: SymbolId) -> Option<ClassId> {
        self.inner.class_named(name)
    }
    fn class_name_of(&self, class: ClassId) -> SymbolId {
        self.inner.class_name_of(class)
    }
    fn superclass_of(&self, class: ClassId) -> Option<ClassId> {
        self.inner.superclass_of(class)
    }
    fn define_subclass(
        &mut self,
        superclass: ClassId,
        name: SymbolId,
        instvars: Vec<SymbolId>,
    ) -> GemResult<ClassId> {
        self.writes += 1;
        self.inner.define_subclass(superclass, name, instvars)
    }
    fn add_instvar(&mut self, class: ClassId, var: SymbolId) -> GemResult<()> {
        self.writes += 1;
        self.inner.add_instvar(class, var)
    }
    fn declares_instvar(&self, class: ClassId, var: SymbolId) -> bool {
        self.inner.declares_instvar(class, var)
    }
    fn lookup_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef> {
        self.inner.lookup_method(class, selector)
    }
    fn lookup_class_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef> {
        self.inner.lookup_class_method(class, selector)
    }
    fn install_method(
        &mut self,
        class: ClassId,
        selector: SymbolId,
        m: MethodRef,
        class_side: bool,
    ) {
        self.writes += 1;
        self.inner.install_method(class, selector, m, class_side)
    }
    fn is_kind_of(&self, a: ClassId, b: ClassId) -> bool {
        self.inner.is_kind_of(a, b)
    }
    fn kernel(&self) -> Kernel {
        self.inner.kernel()
    }
    fn class_of(&self, oop: Oop) -> ClassId {
        self.inner.class_of(oop)
    }
    fn class_format(&self, class: ClassId) -> BodyFormat {
        self.inner.class_format(class)
    }
    fn block_class(&self) -> ClassId {
        self.inner.block_class()
    }
    fn selector_defined_anywhere(&self, selector: SymbolId) -> bool {
        self.inner.selector_defined_anywhere(selector)
    }
    fn selector_targets(&self, selector: SymbolId) -> Vec<MethodRef> {
        self.inner.selector_targets(selector)
    }
    fn method(&self, id: MethodId) -> Arc<CompiledMethod> {
        self.inner.method(id)
    }
    fn add_method_code(&mut self, m: CompiledMethod) -> GemResult<MethodId> {
        // Registering the doIt being run is not a workspace write.
        self.inner.add_method_code(m)
    }
    fn new_object(&mut self, class: ClassId) -> GemResult<Oop> {
        self.writes += 1;
        self.inner.new_object(class)
    }
    fn new_string(&mut self, s: &str) -> Oop {
        self.writes += 1;
        self.inner.new_string(s)
    }
    fn string_value(&self, oop: Oop) -> Option<String> {
        self.inner.string_value(oop)
    }
    fn get_elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop> {
        self.inner.get_elem(obj, name)
    }
    fn get_elem_at(&mut self, obj: Oop, name: ElemName, t: TxnTime) -> GemResult<Oop> {
        self.inner.get_elem_at(obj, name, t)
    }
    fn set_elem(&mut self, obj: Oop, name: ElemName, v: Oop) -> GemResult<()> {
        self.writes += 1;
        self.inner.set_elem(obj, name, v)
    }
    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>> {
        self.inner.elements(obj)
    }
    fn element_names(&mut self, obj: Oop) -> GemResult<Vec<ElemName>> {
        self.inner.element_names(obj)
    }
    fn add_aliased(&mut self, obj: Oop, v: Oop) -> GemResult<()> {
        self.writes += 1;
        self.inner.add_aliased(obj, v)
    }
    fn push_indexed(&mut self, obj: Oop, v: Oop) -> GemResult<i64> {
        self.writes += 1;
        self.inner.push_indexed(obj, v)
    }
    fn obj_size(&mut self, obj: Oop) -> GemResult<usize> {
        self.inner.obj_size(obj)
    }
    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool> {
        self.inner.equals(a, b)
    }
    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<Ordering>> {
        self.inner.compare(a, b)
    }
    fn get_global(&self, name: SymbolId) -> Option<Oop> {
        self.inner.get_global(name)
    }
    fn set_global(&mut self, name: SymbolId, v: Oop) -> GemResult<()> {
        self.writes += 1;
        self.inner.set_global(name, v)
    }
    fn system_message(&mut self, selector: SymbolId, args: &[Oop]) -> GemResult<Oop> {
        // BasicWorld has no transactions; anything it does accept
        // (time dial) is session state. Count it to stay conservative.
        self.writes += 1;
        self.inner.system_message(selector, args)
    }
    fn run_select(
        &mut self,
        coll: Oop,
        template: &QueryTemplate,
        captured: &[Oop],
    ) -> GemResult<Vec<Oop>> {
        self.inner.run_select(coll, template, captured)
    }
}

/// A world with shared state to read and write: a populated dictionary
/// `D`, a collection `C`, and a class `Pt` with accessors.
fn seeded_world() -> BasicWorld {
    let mut w = BasicWorld::new();
    for src in [
        "D := Dictionary new. D at: #a put: 3. D at: #b put: 7",
        "C := OrderedCollection new. C add: 1; add: 2; add: 3",
        "Object subclass: 'Pt' instVarNames: #('x').
         Pt compile: 'getX ^x'.
         Pt compile: 'setX: ax x := ax. ^self'.
         P := Pt new setX: 5",
    ] {
        run_block(&mut w, src).expect("seed");
    }
    w
}

/// Statement pool mixing proven-read-only material with writes of every
/// kind, so random programs land on both sides of the classification.
fn stmt_pool() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        // Reads and pure computation.
        Just("t := 1 + 2 * 3"),
        Just("t := D size"),
        Just("t := (D at: #a) max: (D at: #b)"),
        Just("t := (C includes: 2) ifTrue: [1] ifFalse: [0]"),
        Just("t := P getX"),
        Just("t := nil isNil ifTrue: [4] ifFalse: [5]"),
        Just("1 to: 3 do: [:i | t := i]"),
        // Local writes: allocation, element stores, instvar stores.
        Just("t := OrderedCollection new"),
        Just("D at: #c put: 9"),
        Just("C add: 99"),
        Just("P setX: 8"),
        Just("t := 'a' , 'b'"),
        Just("t := D printString"),
        // Global writes.
        Just("G := 5"),
        // Higher-order over shared state.
        Just("C do: [:e | t := e]"),
        Just("t := (C inject: 0 into: [:acc :e | acc + e])"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The soundness bar: a statement the analysis calls Pure/ReadOnly
    /// performs zero writes (and zero allocations) when actually run.
    #[test]
    fn read_only_classification_is_sound(
        stmts in prop::collection::vec(stmt_pool(), 1..5),
    ) {
        let src = format!("| t | t := 0. {}. t", stmts.join(". "));
        let mut w = CountingWorld::new(seeded_world());
        let m = compile_doit(&mut w, &src).expect("pool programs compile");
        let mut cache = EffectCache::new();
        let summary = effects::summarize_body(&w, &mut cache, &m);
        w.writes = 0;
        let outcome = run_block(&mut w, &src);
        if summary.effect.is_read_only() {
            prop_assert!(outcome.is_ok(), "read-only program failed: {src} → {outcome:?}");
            prop_assert_eq!(
                w.writes, 0,
                "classified {} but performed {} writes: {}",
                summary.effect, w.writes, src
            );
        }
    }

    /// Classification is independent of execution: summarizing before and
    /// after a run produces the same summary (summaries are static).
    #[test]
    fn summaries_are_execution_independent(
        stmts in prop::collection::vec(stmt_pool(), 1..4),
    ) {
        let src = format!("| t | t := 0. {}. t", stmts.join(". "));
        let mut w = seeded_world();
        let m = compile_doit(&mut w, &src).expect("pool programs compile");
        let mut cache = EffectCache::new();
        let before = effects::summarize_body(&w, &mut cache, &m);
        let _ = run_block(&mut w, &src);
        let mut cache2 = EffectCache::new();
        let after = effects::summarize_body(&w, &mut cache2, &m);
        prop_assert_eq!(before, after, "summary changed across execution: {}", src);
    }
}
