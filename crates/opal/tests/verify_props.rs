//! Property tests for the bytecode verifier:
//!
//! 1. whatever the compiler emits, the verifier accepts;
//! 2. whatever the verifier accepts, the interpreter executes without
//!    crashing (every outcome is `Ok` or a structured `GemError`);
//! 3. rejection is deterministic, with stable positions.

use gemstone_opal::verify;
use gemstone_opal::{BasicWorld, Bc, CompiledMethod, Interpreter, Literal, OpalWorld};
use proptest::prelude::*;

/// Strategy over single bytecodes, biased toward small indices so that
/// accepted sequences occur at a useful rate. Jump offsets stay small for
/// the same reason; the verifier bounds them regardless.
fn bc_strategy() -> impl Strategy<Value = Bc> {
    prop_oneof![
        (0u16..4).prop_map(Bc::PushLit),
        Just(Bc::PushNil),
        Just(Bc::PushTrue),
        Just(Bc::PushFalse),
        Just(Bc::PushSelf),
        (0u8..4).prop_map(Bc::PushTemp),
        (0u8..4).prop_map(Bc::StoreTemp),
        (0u8..4).prop_map(Bc::PushHome),
        (0u8..4).prop_map(Bc::StoreHome),
        Just(Bc::Pop),
        Just(Bc::Dup),
        (-4i32..6).prop_map(Bc::Jump),
        (-4i32..6).prop_map(Bc::JumpIfFalse),
        (-4i32..6).prop_map(Bc::JumpIfTrue),
        (0u16..2).prop_map(Bc::PushBlock),
        Just(Bc::ReturnTop),
        Just(Bc::ReturnSelf),
        (0u16..4, 0u8..3).prop_map(|(sel, argc)| Bc::Send { sel, argc }),
    ]
}

/// Wrap a random code body in a method with a small frame and a literal
/// pool of plain values (so `PushLit`/`Send` indices can be in range).
fn method_strategy() -> impl Strategy<Value = CompiledMethod> {
    (prop::collection::vec(bc_strategy(), 0..24), 0u8..3, 0u8..3).prop_map(
        |(mut code, n_params, n_temps)| {
            // Give fall-off-free endings a chance without forcing them.
            code.push(Bc::ReturnSelf);
            CompiledMethod {
                selector: gemstone_object::SymbolId(0),
                n_params,
                n_temps,
                literals: vec![
                    Literal::Int(1),
                    Literal::Int(2),
                    Literal::Sym(gemstone_object::SymbolId(0)),
                    Literal::Str("p".into()),
                ],
                code,
                blocks: Vec::new(),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any random bytecode the verifier accepts runs to *some* structured
    /// outcome — a value or a `GemError` — never a panic, whatever the
    /// sends resolve to. (Accepted methods are a minority of the generated
    /// space; rejection exercises property 3 below on the same inputs.)
    #[test]
    fn verified_bytecode_never_crashes_interpreter(m in method_strategy()) {
        match verify::check(&m) {
            Ok(_) => {
                let mut w = BasicWorld::new();
                if let Ok(id) = w.add_method_code(m) {
                    let _ = Interpreter::new(&mut w).with_step_limit(20_000).run_doit(id);
                }
            }
            Err(first) => {
                // Property 3: deterministic rejection, stable position.
                let second = verify::check(&m).expect_err("rejection must be stable");
                prop_assert_eq!(first.clone(), second);
                prop_assert!(!first.to_string().is_empty());
            }
        }
    }

    /// The compiler's output always verifies: random straight-line programs
    /// built from assignments, arithmetic, blocks and conditionals over a
    /// couple of temps compile to methods the verifier accepts.
    #[test]
    fn compiler_output_always_verifies(
        exprs in prop::collection::vec(
            prop_oneof![
                Just("x := x + 1"),
                Just("y := x * 2"),
                Just("x := [:e | e + y] value: x"),
                Just("x < 10 ifTrue: [y := y + 1] ifFalse: [y := 0]"),
                Just("1 to: 3 do: [:i | x := x + i]"),
                Just("[x > 0] whileTrue: [x := x - 1]"),
                Just("2 timesRepeat: [y := y + x]"),
            ],
            1..8,
        ),
    ) {
        let src = format!("| x y | x := 0. y := 0. {}. x + y", exprs.join(". "));
        let mut w = BasicWorld::new();
        let m = gemstone_opal::compile_doit(&mut w, &src)
            .expect("random straight-line program must compile");
        prop_assert!(
            verify::check(&m).is_ok(),
            "verifier rejected compiler output for {}", src
        );
        // And it runs: the verified claim is about execution safety too.
        let id = w.add_method_code(m).expect("verified install");
        prop_assert!(Interpreter::new(&mut w).with_step_limit(200_000).run_doit(id).is_ok());
    }
}
