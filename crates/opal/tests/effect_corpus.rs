//! Effect analysis over the verification corpus, plus the lint-vs-analysis
//! audit of PR 2's syntactic select-block impurity lint.
//!
//! The corpus below mirrors `verify_corpus.rs` — every program the
//! verifier/interpreter corpus exercises must classify without falling to
//! `Unknown`, except where a block escapes into a variable and is invoked
//! dynamically (the one construct the analysis deliberately gives up on;
//! those programs are allowlisted by source text so a regression that
//! *adds* Unknowns is caught, not papered over).

use gemstone_opal::effects::{self, Effect, EffectCache};
use gemstone_opal::{compile_doit, compile_doit_with_lints, run_block, BasicWorld, LintKind};

const CORPUS: &[&str] = &[
    "3 + 4 * 2",
    "| x y | x := 3. y := x * x. y + 1",
    "true ifTrue: [1] ifFalse: [2]",
    "3 < 4 ifTrue: ['yes'] ifFalse: ['no']",
    "| s | s := 0. 1 to: 10 do: [:i | s := s + i]. s",
    "| s i | s := 0. i := 0. [i < 5] whileTrue: [i := i + 1. s := s + i]. s",
    "| n | n := 0. 3 timesRepeat: [n := n + 2]. n",
    "| b | b := [:a :c | a + c]. b value: 3 value: 4",
    "| make | make := [:n | [:m | n + m]]. (make value: 10) value: 5",
    "| t | 3 < 4 ifTrue: [| u | u := 1. u] ifFalse: [0]",
    "| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. c size",
    "| c | c := OrderedCollection new. c add: 9. (c includes: 9)",
    "#(1 2 3) size",
    "'abc' size",
    "$a value",
    "(1 = 2) not",
    "nil isNil",
    "-7 abs max: 3",
    "| x | x := 2. [x := x * x] value. x",
    "[:e | e * 2] value: 21",
    "| agg | agg := 0. #(1 2 3) do: [:e | agg := agg + e]. agg",
    "| p | Object subclass: 'VPoint' instVarNames: #('x' 'y').
     VPoint compile: 'getX ^x'.
     VPoint compile: 'setX: ax x := ax. ^self'.
     p := VPoint new. p setX: 4. p getX",
    "| c | Object subclass: 'VCounter' instVarNames: #('n').
     VCounter compile: 'bump n isNil ifTrue: [n := 0]. n := n + 1. ^n'.
     c := VCounter new. c bump. c bump",
    "Object subclass: 'VFind' instVarNames: #().
     VFind compile: 'findIn: coll coll do: [:e | e > 2 ifTrue: [^e]]. ^0'.
     VFind new findIn: #(1 2 5 7)",
    "Object subclass: 'VRec' instVarNames: #('depth').
     VRec compile: 'count: n n <= 0 ifTrue: [^0]. ^1 + (self count: n - 1)'.
     VRec new count: 7",
    "| p | Object subclass: 'VBox' instVarNames: #('v').
     p := VBox new. p v: 9. p ! v",
    "| sum | sum := 0.
     1 to: 3 do: [:i | 1 to: 3 do: [:j | sum := sum + (i * j)]]. sum",
    "| r | r := OrderedCollection new.
     1 to: 5 do: [:i | | sq | sq := i * i. r add: sq]. r size",
];

/// Programs where a send cannot be resolved statically at doIt-analysis
/// time, so `Unknown` is the correct (sound) answer:
/// - a block escapes through a variable and is invoked as the *result of
///   another send* (genuinely dynamic invocation);
/// - a doIt installs a method and then calls it — at analysis time the
///   selector resolves only to an unrelated kernel method that invokes a
///   block parameter, and the argument here is a scalar.
const DYNAMIC_SEND: &[&str] = &[
    "| make | make := [:n | [:m | n + m]]. (make value: 10) value: 5",
    "Object subclass: 'VRec' instVarNames: #('depth').
     VRec compile: 'count: n n <= 0 ifTrue: [^0]. ^1 + (self count: n - 1)'.
     VRec new count: 7",
];

/// The acceptance bar: zero `Unknown` on the static-send corpus subset.
/// Classes are not pinned per program (that would freeze precision), only
/// the sound/precise boundary is.
#[test]
fn corpus_has_zero_unknown_outside_dynamic_sends() {
    for src in CORPUS {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, src).expect("corpus compiles");
        let mut cache = EffectCache::new();
        let s = effects::summarize_body(&w, &mut cache, &m);
        if DYNAMIC_SEND.contains(src) {
            assert_eq!(
                s.effect,
                Effect::Unknown,
                "allowlisted dynamic program now classifies as {} — \
                 if precision improved, move it out of DYNAMIC_SEND: {src}",
                s.effect
            );
        } else {
            assert_ne!(
                s.effect,
                Effect::Unknown,
                "static-send corpus program fell to Unknown: {src}"
            );
        }
    }
}

/// Spot-check the precise end of the lattice on corpus programs whose
/// classification is forced by the model (allocation = write).
#[test]
fn corpus_spot_classifications() {
    let cases: &[(&str, Effect)] = &[
        ("3 + 4 * 2", Effect::Pure),
        ("| x y | x := 3. y := x * x. y + 1", Effect::Pure),
        ("nil isNil", Effect::Pure),
        // `=` routes through the world's structural `equals`, which may
        // fault objects in — ReadOnly, never Pure.
        ("(1 = 2) not", Effect::ReadOnly),
        // `to:do:` with a literal block is compiled inline: no closure
        // allocation, so a pure loop body stays Pure.
        ("| s | s := 0. 1 to: 10 do: [:i | s := s + i]. s", Effect::Pure),
        // Array/string literals materialize fresh objects at runtime:
        // born-dirty ⇒ WritesLocal, never higher.
        ("#(1 2 3) size", Effect::WritesLocal),
        ("'abc' size", Effect::WritesLocal),
    ];
    for (src, want) in cases {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, src).expect("compiles");
        let mut cache = EffectCache::new();
        let s = effects::summarize_body(&w, &mut cache, &m);
        assert_eq!(&s.effect, want, "classification drifted for: {src}");
    }
}

/// Every corpus program still runs under a world whose compile path now
/// performs the effect refinement (guards against the analysis perturbing
/// compilation itself).
#[test]
fn corpus_still_executes_after_effect_refinement() {
    for src in CORPUS {
        let mut w = BasicWorld::new();
        run_block(&mut w, src).unwrap_or_else(|e| panic!("corpus program failed: {src}\n{e}"));
    }
}

/// The audit (satellite): PR 2's syntactic select-block lint and the
/// effect analysis must agree on the whole corpus — a surviving
/// `SelectBlockImpure` lint implies the analysis proved a fallback block
/// impure (and cites its effect class), and a proven-impure fallback block
/// implies a lint. The corpus itself contains no `select:`; the audit
/// extends it with select-bearing programs covering both verdicts.
#[test]
fn select_lint_agrees_with_effect_analysis_on_corpus() {
    let audit: Vec<&str> = CORPUS
        .iter()
        .copied()
        .chain([
            // Pure predicate — translatable; no lint must survive.
            "| c | c := OrderedCollection new. c add: 3.
             (c select: [:e | e > 2]) size",
            // Untranslatable but pure (message send on the parameter).
            "| c | c := OrderedCollection new. c add: 3.
             (c select: [:e | e isNil not]) size",
            // Syntactically suspicious capture, hoisted at translation:
            // the analysis proves the block itself writes nothing.
            "| c box | c := OrderedCollection new. box := OrderedCollection new.
             box add: 1. (c select: [:e | e > (box removeFirst)]) size",
            // Genuinely impure predicate: mutates during the scan.
            "| c | c := OrderedCollection new. c add: 3.
             (c select: [:e | c add: e. e > 2]) size",
            // Impure through a global.
            "| c | G := 0. c := OrderedCollection new.
             (c select: [:e | G := e. e > 1]) size",
        ])
        .collect();

    for src in audit {
        let mut w = BasicWorld::new();
        let (m, lints) = compile_doit_with_lints(&mut w, src).expect("audit programs compile");
        let mut cache = EffectCache::new();
        let impure: Vec<Effect> = effects::select_fallback_blocks(&w, &mut cache, &m)
            .into_iter()
            .filter(|(_, s)| !s.effect.is_read_only())
            .map(|(_, s)| s.effect)
            .collect();
        let linted: Vec<&LintKind> = lints
            .iter()
            .filter(|l| matches!(l.kind, LintKind::SelectBlockImpure { .. }))
            .map(|l| &l.kind)
            .collect();

        assert_eq!(
            linted.is_empty(),
            impure.is_empty(),
            "lint and analysis diverge on: {src}\nlints: {linted:?}\nimpure: {impure:?}"
        );
        // Surviving lints must cite the proven effect class, not a guess.
        for kind in linted {
            let LintKind::SelectBlockImpure { effect, .. } = kind else { unreachable!() };
            assert!(
                impure.iter().any(|e| e.as_str() == effect),
                "lint cites {effect:?} but analysis proved {impure:?}: {src}"
            );
        }
    }
}
