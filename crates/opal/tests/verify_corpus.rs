//! Verifier corpus tests: every method the compiler produces — across the
//! whole surface of the language — must pass [`gemstone_opal::verify`]
//! (zero false rejections), and each defect class a hand-built method can
//! exhibit must be rejected with a stable, position-carrying error.

use gemstone_object::GemError;
use gemstone_opal::verify::{self, CodeLoc, VerifyErrorKind};
use gemstone_opal::{
    compile_doit, run_block, BasicWorld, Bc, CompiledBlock, CompiledMethod, Literal,
};

/// Representative programs over the full language surface: literals,
/// arithmetic, messages, blocks and closures, control flow, loops, paths,
/// class and method definition. Each is a complete doIt.
const CORPUS: &[&str] = &[
    "3 + 4 * 2",
    "| x y | x := 3. y := x * x. y + 1",
    "true ifTrue: [1] ifFalse: [2]",
    "3 < 4 ifTrue: ['yes'] ifFalse: ['no']",
    "| s | s := 0. 1 to: 10 do: [:i | s := s + i]. s",
    "| s i | s := 0. i := 0. [i < 5] whileTrue: [i := i + 1. s := s + i]. s",
    "| n | n := 0. 3 timesRepeat: [n := n + 2]. n",
    "| b | b := [:a :c | a + c]. b value: 3 value: 4",
    "| make | make := [:n | [:m | n + m]]. (make value: 10) value: 5",
    "| t | 3 < 4 ifTrue: [| u | u := 1. u] ifFalse: [0]",
    "| c | c := OrderedCollection new. c add: 1; add: 2; add: 3. c size",
    "| c | c := OrderedCollection new. c add: 9. (c includes: 9)",
    "#(1 2 3) size",
    "'abc' size",
    "$a value",
    "(1 = 2) not",
    "nil isNil",
    "-7 abs max: 3",
    "| x | x := 2. [x := x * x] value. x",
    "[:e | e * 2] value: 21",
    "| agg | agg := 0. #(1 2 3) do: [:e | agg := agg + e]. agg",
    "| p | Object subclass: 'VPoint' instVarNames: #('x' 'y').
     VPoint compile: 'getX ^x'.
     VPoint compile: 'setX: ax x := ax. ^self'.
     p := VPoint new. p setX: 4. p getX",
    "| c | Object subclass: 'VCounter' instVarNames: #('n').
     VCounter compile: 'bump n isNil ifTrue: [n := 0]. n := n + 1. ^n'.
     c := VCounter new. c bump. c bump",
    "Object subclass: 'VFind' instVarNames: #().
     VFind compile: 'findIn: coll coll do: [:e | e > 2 ifTrue: [^e]]. ^0'.
     VFind new findIn: #(1 2 5 7)",
    "Object subclass: 'VRec' instVarNames: #('depth').
     VRec compile: 'count: n n <= 0 ifTrue: [^0]. ^1 + (self count: n - 1)'.
     VRec new count: 7",
    "| p | Object subclass: 'VBox' instVarNames: #('v').
     p := VBox new. p v: 9. p ! v",
    "| sum | sum := 0.
     1 to: 3 do: [:i | 1 to: 3 do: [:j | sum := sum + (i * j)]]. sum",
    "| r | r := OrderedCollection new.
     1 to: 5 do: [:i | | sq | sq := i * i. r add: sq]. r size",
];

/// The compiler's output is verifiable: no program in the corpus produces a
/// method or doIt the verifier rejects (zero false rejections). `run_block`
/// and the `compile:` primitive both feed `add_method_code`, which verifies,
/// so a false rejection surfaces as a `CorruptMethod` execution error here.
#[test]
fn corpus_runs_and_verifies() {
    for src in CORPUS {
        let mut w = BasicWorld::new();
        match run_block(&mut w, src) {
            Ok(_) => {}
            Err(GemError::CorruptMethod(e)) => {
                panic!("verifier falsely rejected compiler output for {src:?}: {e}")
            }
            Err(e) => panic!("corpus program failed {src:?}: {e}"),
        }
    }
}

/// Every method registered in a world that ran the corpus — kernel methods
/// included — passes an after-the-fact re-verification, and the lint pass
/// runs to completion on all of them.
#[test]
fn installed_corpus_reverifies_clean() {
    let mut w = BasicWorld::new();
    for src in CORPUS {
        let _ = run_block(&mut w, src);
    }
    let mut seen = 0;
    for m in w.installed_methods() {
        verify::check(m).unwrap_or_else(|e| {
            panic!("installed method {:?} failed re-verification: {e}", m.selector)
        });
        let _ = verify::code_lints(m);
        seen += 1;
    }
    assert!(seen > 40, "expected kernel + corpus methods, saw {seen}");
}

/// Compiling alone (without running) also yields verifiable methods.
#[test]
fn compile_only_output_verifies() {
    for src in CORPUS {
        let mut w = BasicWorld::new();
        if let Ok(m) = compile_doit(&mut w, src) {
            verify::check(&m)
                .unwrap_or_else(|e| panic!("compiler output for {src:?} rejected: {e}"));
        }
    }
}

fn method(code: Vec<Bc>) -> CompiledMethod {
    CompiledMethod {
        selector: gemstone_object::SymbolId(0),
        n_params: 0,
        n_temps: 0,
        literals: Vec::new(),
        code,
        blocks: Vec::new(),
    }
}

/// Each defect class is rejected deterministically, with the error pointing
/// at the offending instruction. Running the verifier twice must produce
/// byte-identical diagnostics (stable positions).
#[test]
fn defect_classes_reject_with_positions() {
    let cases: Vec<(&str, CompiledMethod, VerifyErrorKind, CodeLoc)> = vec![
        (
            "stack underflow",
            method(vec![Bc::Pop, Bc::PushNil, Bc::ReturnTop]),
            VerifyErrorKind::StackUnderflow,
            CodeLoc { block: None, pc: 0 },
        ),
        (
            "bad jump target",
            method(vec![Bc::Jump(7), Bc::PushNil, Bc::ReturnTop]),
            VerifyErrorKind::BadJumpTarget { target: 8, len: 3 },
            CodeLoc { block: None, pc: 0 },
        ),
        (
            "temp out of bounds",
            method(vec![Bc::PushTemp(3), Bc::ReturnTop]),
            VerifyErrorKind::TempOutOfBounds { idx: 3, frame: 0 },
            CodeLoc { block: None, pc: 0 },
        ),
        (
            "literal out of bounds",
            method(vec![Bc::PushLit(2), Bc::ReturnTop]),
            VerifyErrorKind::LiteralOutOfBounds { idx: 2, len: 0 },
            CodeLoc { block: None, pc: 0 },
        ),
        (
            "block out of bounds",
            method(vec![Bc::PushBlock(0), Bc::ReturnTop]),
            VerifyErrorKind::BlockOutOfBounds { idx: 0, len: 0 },
            CodeLoc { block: None, pc: 0 },
        ),
        (
            "missing return",
            method(vec![Bc::PushNil, Bc::Pop]),
            VerifyErrorKind::MissingReturn,
            CodeLoc { block: None, pc: 2 },
        ),
    ];
    for (label, m, kind, loc) in cases {
        let first = verify::check(&m).expect_err(label);
        let second = verify::check(&m).expect_err(label);
        assert_eq!(first, second, "{label}: diagnostics must be deterministic");
        assert_eq!(first.kind, kind, "{label}");
        assert_eq!(first.loc, loc, "{label}: position must be stable");
        assert!(!first.to_string().is_empty());
    }
}

/// The remaining acceptance defect classes, where the payload depends on
/// internal ordering: unbalanced merge, out-of-bounds outer slot, query
/// capture arity.
#[test]
fn merge_outer_and_query_defects_reject() {
    use gemstone_calculus::{Pred, Query, Range, Term, VarId};
    use gemstone_opal::QueryTemplate;
    // True branch reaches pc 3 with depth 0, fall-through with depth 1.
    let m = method(vec![Bc::PushTrue, Bc::JumpIfTrue(1), Bc::PushNil, Bc::ReturnSelf]);
    let e = verify::check(&m).expect_err("unbalanced merge");
    assert!(matches!(e.kind, VerifyErrorKind::UnbalancedMerge { .. }), "{e:?}");

    // A block reading slot 9 of the enclosing method frame (size 0).
    let mut m = method(vec![Bc::PushBlock(0), Bc::ReturnTop]);
    m.blocks = vec![CompiledBlock {
        n_params: 0,
        n_temps: 0,
        code: vec![Bc::PushOuter { up: 1, idx: 9 }],
    }];
    let e = verify::check(&m).expect_err("outer out of bounds");
    assert!(matches!(e.kind, VerifyErrorKind::OuterOutOfBounds { up: 1, idx: 9, .. }), "{e:?}");
    assert_eq!(e.loc, CodeLoc { block: Some(0), pc: 0 });

    // SelectQuery pushing fewer captures than the template declares.
    let template = QueryTemplate {
        query: Query {
            result: vec![(gemstone_object::SymbolId(0), Term::Var(VarId(0)))],
            ranges: vec![Range { var: VarId(0), domain: Term::Const(gemstone_object::Oop::NIL) }],
            pred: Pred::True,
        },
        n_captured: 2,
    };
    let mut m = method(vec![Bc::PushNil, Bc::SelectQuery { lit: 0, argc: 0 }, Bc::ReturnTop]);
    m.literals = vec![Literal::Query(template)];
    let e = verify::check(&m).expect_err("bad query arity");
    assert_eq!(e.kind, VerifyErrorKind::BadQueryArity { declared: 2, argc: 0 });
    assert_eq!(e.loc, CodeLoc { block: None, pc: 1 });
}

/// Definite assignment: reading a temp that no store reaches is rejected;
/// the compiler's nil-initialisation means its own output never trips this.
#[test]
fn use_before_store_rejected() {
    let mut m = method(vec![Bc::PushTemp(0), Bc::ReturnTop]);
    m.n_temps = 1;
    let e = verify::check(&m).expect_err("uninitialised read");
    assert_eq!(e.kind, VerifyErrorKind::UseBeforeStore { idx: 0 });
}

/// Defects inside block bodies carry the block index in their location.
#[test]
fn block_defects_carry_block_position() {
    let mut m = method(vec![Bc::PushBlock(0), Bc::ReturnTop]);
    m.blocks = vec![CompiledBlock { n_params: 0, n_temps: 0, code: vec![Bc::Pop] }];
    let e = verify::check(&m).expect_err("block underflow");
    assert_eq!(e.kind, VerifyErrorKind::StackUnderflow);
    assert_eq!(e.loc, CodeLoc { block: Some(0), pc: 0 });
}

/// A rejected method surfaces as `GemError::CorruptMethod` at install time
/// rather than a panic at run time.
#[test]
fn rejection_becomes_structured_error() {
    use gemstone_opal::OpalWorld;
    let mut w = BasicWorld::new();
    let bad = method(vec![Bc::Pop, Bc::PushNil, Bc::ReturnTop]);
    match w.add_method_code(bad) {
        Err(GemError::CorruptMethod(msg)) => {
            assert!(msg.contains("underflow"), "got {msg:?}");
            assert!(msg.contains("pc 0"), "position missing from {msg:?}");
        }
        other => panic!("expected CorruptMethod, got {other:?}"),
    }
}

/// The interpreter's bytecode path must hold no panicking escape hatches:
/// structured `CorruptMethod` errors replaced them all. (`.unwrap_or` /
/// `unwrap_or_else` defaults and `debug_assert` remain legitimate.)
#[test]
fn interpreter_has_no_panic_sites() {
    let src = include_str!("../src/interp.rs");
    for banned in [".expect(", "panic!(", "unreachable!(", "todo!(", ".unwrap()"] {
        let hits: Vec<usize> = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(banned) && !l.trim_start().starts_with("//"))
            .map(|(i, _)| i + 1)
            .collect();
        assert!(hits.is_empty(), "interp.rs contains {banned} at lines {hits:?}");
    }
}
