//! The OPAL abstract syntax tree.
//!
//! Declarations and statements carry [`Span`]s (source line/column from the
//! lexer) so the compiler's lint pass can point diagnostics back at the
//! source text instead of at bytecode offsets.

/// A source position: 1-based line and column of the token that introduced
/// the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A declared variable (method parameter, temporary, or block parameter)
/// with the source position of its declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub name: String,
    pub span: Span,
}

impl VarDecl {
    /// A declaration at a known position.
    pub fn new(name: impl Into<String>, span: Span) -> VarDecl {
        VarDecl { name: name.into(), span }
    }
}

// Lets tests compare `temps == vec!["x", "y"]` without caring about spans.
impl PartialEq<&str> for VarDecl {
    fn eq(&self, other: &&str) -> bool {
        self.name == *other
    }
}

/// A literal value appearing in source.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Sym(String),
    Char(char),
    /// `#( … )` — array of literals.
    Array(Vec<Lit>),
    True,
    False,
    Nil,
}

/// One step of a path expression: `! component [@ time]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    pub component: PathComponent,
    pub at: Option<Expr>,
}

/// What a path component names.
#[derive(Debug, Clone, PartialEq)]
pub enum PathComponent {
    /// `! name` — a symbolic element name.
    Name(String),
    /// `! 'Acme Corp'` — a string label.
    Label(String),
    /// `! 1821` — an integer element name.
    Index(i64),
    /// `! (expr)` — a computed component.
    Dynamic(Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Lit),
    /// Variable reference: parameter, temp, instance variable, global,
    /// class name, or pseudo-variable (`self`, `System`).
    Ident(String),
    /// `x := expr`.
    Assign(String, Box<Expr>),
    /// A message send (unary, binary or keyword — the selector tells).
    Send {
        recv: Box<Expr>,
        selector: String,
        args: Vec<Expr>,
    },
    /// `recv sel1; sel2: x; …` — cascades send each message to `recv`.
    Cascade {
        recv: Box<Expr>,
        sends: Vec<(String, Vec<Expr>)>,
    },
    /// `[:a :b | stmts]`.
    Block(Block),
    /// `root ! a ! b@7 ! c` — OPAL path navigation.
    Path {
        root: Box<Expr>,
        steps: Vec<PathStep>,
    },
    /// `root ! a ! b := v` — assignment through a path (§4.3: "allow
    /// assignments to path expressions").
    PathAssign {
        root: Box<Expr>,
        steps: Vec<PathStep>,
        value: Box<Expr>,
    },
}

/// A block literal.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub params: Vec<VarDecl>,
    pub temps: Vec<VarDecl>,
    pub body: Vec<Stmt>,
    /// Position of the opening `[`.
    pub span: Span,
}

/// A statement with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

/// What a statement does.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    Expr(Expr),
    /// `^ expr` — method return (non-local from inside a block).
    Return(Expr),
}

/// A parsed method: selector pattern, parameters, temporaries, body.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodAst {
    pub selector: String,
    pub params: Vec<VarDecl>,
    pub temps: Vec<VarDecl>,
    pub body: Vec<Stmt>,
}
