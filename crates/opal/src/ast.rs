//! The OPAL abstract syntax tree.

/// A literal value appearing in source.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    Sym(String),
    Char(char),
    /// `#( … )` — array of literals.
    Array(Vec<Lit>),
    True,
    False,
    Nil,
}

/// One step of a path expression: `! component [@ time]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    pub component: PathComponent,
    pub at: Option<Expr>,
}

/// What a path component names.
#[derive(Debug, Clone, PartialEq)]
pub enum PathComponent {
    /// `! name` — a symbolic element name.
    Name(String),
    /// `! 'Acme Corp'` — a string label.
    Label(String),
    /// `! 1821` — an integer element name.
    Index(i64),
    /// `! (expr)` — a computed component.
    Dynamic(Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Lit),
    /// Variable reference: parameter, temp, instance variable, global,
    /// class name, or pseudo-variable (`self`, `System`).
    Ident(String),
    /// `x := expr`.
    Assign(String, Box<Expr>),
    /// A message send (unary, binary or keyword — the selector tells).
    Send {
        recv: Box<Expr>,
        selector: String,
        args: Vec<Expr>,
    },
    /// `recv sel1; sel2: x; …` — cascades send each message to `recv`.
    Cascade {
        recv: Box<Expr>,
        sends: Vec<(String, Vec<Expr>)>,
    },
    /// `[:a :b | stmts]`.
    Block(Block),
    /// `root ! a ! b@7 ! c` — OPAL path navigation.
    Path {
        root: Box<Expr>,
        steps: Vec<PathStep>,
    },
    /// `root ! a ! b := v` — assignment through a path (§4.3: "allow
    /// assignments to path expressions").
    PathAssign {
        root: Box<Expr>,
        steps: Vec<PathStep>,
        value: Box<Expr>,
    },
}

/// A block literal.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub params: Vec<String>,
    pub temps: Vec<String>,
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Expr(Expr),
    /// `^ expr` — method return (non-local from inside a block).
    Return(Expr),
}

/// A parsed method: selector pattern, parameters, temporaries, body.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodAst {
    pub selector: String,
    pub params: Vec<String>,
    pub temps: Vec<String>,
    pub body: Vec<Stmt>,
}
