//! The OPAL recursive-descent parser.
//!
//! Standard ST80 precedence — unary, then binary, then keyword — with OPAL's
//! path syntax binding tighter than unary sends:
//!
//! ```text
//! expr        := IDENT ':=' expr | cascade [':=' expr  when path]
//! cascade     := keyword (';' message)*
//! keyword     := binary (KEYWORD binary)*
//! binary      := unary ((BINSEL | '|') unary)*
//! unary       := path IDENT*
//! path        := primary ('!' component ('@' primary)?)*
//! primary     := literal | IDENT | '(' expr ')' | block | '#(' literals ')'
//! ```

use crate::ast::{
    Block, Expr, Lit, MethodAst, PathComponent, PathStep, Span, Stmt, StmtKind, VarDecl,
};
use crate::lexer::{lex, Tok, Token};
use gemstone_object::{GemError, GemResult};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse a "doIt" — temporaries plus statements, as sent to GemStone in
/// "blocks of OPAL source code" (§6).
pub fn parse_doit(src: &str) -> GemResult<(Vec<VarDecl>, Vec<Stmt>)> {
    let mut p = Parser { toks: lex(src)?, pos: 0 };
    let temps = p.parse_temps()?;
    let body = p.parse_statements(&Tok::Eof)?;
    p.expect(&Tok::Eof)?;
    Ok((temps, body))
}

/// Parse a method definition: selector pattern, temporaries, body.
pub fn parse_method(src: &str) -> GemResult<MethodAst> {
    let mut p = Parser { toks: lex(src)?, pos: 0 };
    let (selector, params) = p.parse_pattern()?;
    let temps = p.parse_temps()?;
    let body = p.parse_statements(&Tok::Eof)?;
    p.expect(&Tok::Eof)?;
    Ok(MethodAst { selector, params, temps, body })
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    /// Source position of the token about to be consumed.
    fn here(&self) -> Span {
        let t = &self.toks[self.pos];
        Span::new(t.line, t.col)
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> GemError {
        let t = &self.toks[self.pos];
        GemError::ParseError { line: t.line, col: t.col, msg: msg.into() }
    }

    fn expect(&mut self, tok: &Tok) -> GemResult<()> {
        if self.peek() == tok {
            self.next();
            Ok(())
        } else {
            Err(self.error(format!("expected {tok}, found {}", self.peek())))
        }
    }

    // -------------------------------------------------------- structure

    fn parse_pattern(&mut self) -> GemResult<(String, Vec<VarDecl>)> {
        match self.next() {
            Tok::Ident(name) => Ok((name, vec![])),
            Tok::BinSel(op) => {
                let span = self.here();
                match self.next() {
                    Tok::Ident(p) => Ok((op, vec![VarDecl::new(p, span)])),
                    t => {
                        Err(self
                            .error(format!("expected parameter after binary selector, found {t}")))
                    }
                }
            }
            Tok::Keyword(first) => {
                let mut selector = format!("{first}:");
                let mut params = Vec::new();
                let span = self.here();
                match self.next() {
                    Tok::Ident(p) => params.push(VarDecl::new(p, span)),
                    t => return Err(self.error(format!("expected parameter, found {t}"))),
                }
                while let Tok::Keyword(k) = self.peek().clone() {
                    self.next();
                    selector.push_str(&k);
                    selector.push(':');
                    let span = self.here();
                    match self.next() {
                        Tok::Ident(p) => params.push(VarDecl::new(p, span)),
                        t => return Err(self.error(format!("expected parameter, found {t}"))),
                    }
                }
                Ok((selector, params))
            }
            t => Err(self.error(format!("expected method pattern, found {t}"))),
        }
    }

    fn parse_temps(&mut self) -> GemResult<Vec<VarDecl>> {
        if self.peek() != &Tok::VBar {
            return Ok(vec![]);
        }
        self.next();
        let mut temps = Vec::new();
        loop {
            let span = self.here();
            match self.next() {
                Tok::Ident(n) => temps.push(VarDecl::new(n, span)),
                Tok::VBar => return Ok(temps),
                t => return Err(self.error(format!("expected temporary name or '|', found {t}"))),
            }
        }
    }

    fn parse_statements(&mut self, end: &Tok) -> GemResult<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.peek() == end {
                return Ok(stmts);
            }
            let span = self.here();
            if self.peek() == &Tok::Caret {
                self.next();
                stmts.push(Stmt { kind: StmtKind::Return(self.parse_expr()?), span });
            } else {
                stmts.push(Stmt { kind: StmtKind::Expr(self.parse_expr()?), span });
            }
            if self.peek() == &Tok::Period {
                self.next();
            } else if self.peek() != end {
                return Err(self.error(format!("expected '.' or {end}, found {}", self.peek())));
            }
        }
    }

    // ------------------------------------------------------ expressions

    fn parse_expr(&mut self) -> GemResult<Expr> {
        // `name := expr`
        if let Tok::Ident(name) = self.peek().clone() {
            if self.peek2() == &Tok::Assign {
                self.next();
                self.next();
                return Ok(Expr::Assign(name, Box::new(self.parse_expr()?)));
            }
        }
        let e = self.parse_cascade()?;
        // `path := expr`
        if self.peek() == &Tok::Assign {
            if let Expr::Path { root, steps } = e {
                self.next();
                let value = Box::new(self.parse_expr()?);
                return Ok(Expr::PathAssign { root, steps, value });
            }
            return Err(self.error("left side of := must be a variable or path"));
        }
        Ok(e)
    }

    fn parse_cascade(&mut self) -> GemResult<Expr> {
        let first = self.parse_keyword_expr()?;
        if self.peek() != &Tok::Semi {
            return Ok(first);
        }
        let Expr::Send { recv, selector, args } = first else {
            return Err(self.error("cascade requires a message send before ';'"));
        };
        let mut sends = vec![(selector, args)];
        while self.peek() == &Tok::Semi {
            self.next();
            sends.push(self.parse_cascade_message()?);
        }
        Ok(Expr::Cascade { recv, sends })
    }

    fn parse_cascade_message(&mut self) -> GemResult<(String, Vec<Expr>)> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.next();
                Ok((name, vec![]))
            }
            Tok::BinSel(op) => {
                self.next();
                let arg = self.parse_unary_expr()?;
                Ok((op, vec![arg]))
            }
            Tok::Keyword(_) => {
                let mut selector = String::new();
                let mut args = Vec::new();
                while let Tok::Keyword(k) = self.peek().clone() {
                    self.next();
                    selector.push_str(&k);
                    selector.push(':');
                    args.push(self.parse_binary_expr()?);
                }
                Ok((selector, args))
            }
            t => Err(self.error(format!("expected message after ';', found {t}"))),
        }
    }

    fn parse_keyword_expr(&mut self) -> GemResult<Expr> {
        let recv = self.parse_binary_expr()?;
        if !matches!(self.peek(), Tok::Keyword(_)) {
            return Ok(recv);
        }
        let mut selector = String::new();
        let mut args = Vec::new();
        while let Tok::Keyword(k) = self.peek().clone() {
            self.next();
            selector.push_str(&k);
            selector.push(':');
            args.push(self.parse_binary_expr()?);
        }
        Ok(Expr::Send { recv: Box::new(recv), selector, args })
    }

    fn parse_binary_expr(&mut self) -> GemResult<Expr> {
        let mut left = self.parse_unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::BinSel(op) => op.clone(),
                Tok::VBar => "|".to_string(),
                _ => break,
            };
            self.next();
            let right = self.parse_unary_expr()?;
            left = Expr::Send { recv: Box::new(left), selector: op, args: vec![right] };
        }
        Ok(left)
    }

    fn parse_unary_expr(&mut self) -> GemResult<Expr> {
        let mut e = self.parse_path_expr()?;
        while let Tok::Ident(name) = self.peek().clone() {
            // An identifier here is a unary selector (keywords were handled
            // above; `:=` lookahead keeps assignments out).
            if self.peek2() == &Tok::Assign {
                break;
            }
            self.next();
            e = Expr::Send { recv: Box::new(e), selector: name, args: vec![] };
        }
        Ok(e)
    }

    fn parse_path_expr(&mut self) -> GemResult<Expr> {
        let root = self.parse_primary()?;
        if self.peek() != &Tok::Bang {
            return Ok(root);
        }
        let mut steps = Vec::new();
        while self.peek() == &Tok::Bang {
            self.next();
            let component = match self.next() {
                Tok::Ident(n) => PathComponent::Name(n),
                Tok::Str(s) => PathComponent::Label(s),
                Tok::Int(i) => PathComponent::Index(i),
                Tok::Sym(s) => PathComponent::Name(s),
                Tok::LParen => {
                    let e = self.parse_expr()?;
                    self.expect(&Tok::RParen)?;
                    PathComponent::Dynamic(Box::new(e))
                }
                t => return Err(self.error(format!("expected path component, found {t}"))),
            };
            let at = if self.peek() == &Tok::At {
                self.next();
                Some(self.parse_primary()?)
            } else {
                None
            };
            steps.push(PathStep { component, at });
        }
        Ok(Expr::Path { root: Box::new(root), steps })
    }

    fn parse_primary(&mut self) -> GemResult<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.next();
                Ok(Expr::Lit(Lit::Int(i)))
            }
            Tok::Float(x) => {
                self.next();
                Ok(Expr::Lit(Lit::Float(x)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Expr::Lit(Lit::Str(s)))
            }
            Tok::Sym(s) => {
                self.next();
                Ok(Expr::Lit(Lit::Sym(s)))
            }
            Tok::Char(c) => {
                self.next();
                Ok(Expr::Lit(Lit::Char(c)))
            }
            // Negative numeric literal: `-3`.
            Tok::BinSel(op) if op == "-" => match self.peek2().clone() {
                Tok::Int(i) => {
                    self.next();
                    self.next();
                    Ok(Expr::Lit(Lit::Int(-i)))
                }
                Tok::Float(x) => {
                    self.next();
                    self.next();
                    Ok(Expr::Lit(Lit::Float(-x)))
                }
                t => Err(self.error(format!("expected number after '-', found {t}"))),
            },
            Tok::Ident(name) => {
                self.next();
                Ok(match name.as_str() {
                    "true" => Expr::Lit(Lit::True),
                    "false" => Expr::Lit(Lit::False),
                    "nil" => Expr::Lit(Lit::Nil),
                    _ => Expr::Ident(name),
                })
            }
            Tok::LParen => {
                self.next();
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::HashParen => {
                self.next();
                let mut items = Vec::new();
                while self.peek() != &Tok::RParen {
                    items.push(self.parse_array_literal_item()?);
                }
                self.next();
                Ok(Expr::Lit(Lit::Array(items)))
            }
            Tok::LBracket => self.parse_block(),
            t => Err(self.error(format!("expected expression, found {t}"))),
        }
    }

    fn parse_array_literal_item(&mut self) -> GemResult<Lit> {
        match self.next() {
            Tok::Int(i) => Ok(Lit::Int(i)),
            Tok::Float(x) => Ok(Lit::Float(x)),
            Tok::Str(s) => Ok(Lit::Str(s)),
            Tok::Sym(s) => Ok(Lit::Sym(s)),
            Tok::Char(c) => Ok(Lit::Char(c)),
            Tok::Ident(n) if n == "true" => Ok(Lit::True),
            Tok::Ident(n) if n == "false" => Ok(Lit::False),
            Tok::Ident(n) if n == "nil" => Ok(Lit::Nil),
            // Bare words inside #( ) are symbols, as in ST80.
            Tok::Ident(n) => Ok(Lit::Sym(n)),
            Tok::Keyword(k) => Ok(Lit::Sym(format!("{k}:"))),
            Tok::HashParen | Tok::LParen => {
                let mut items = Vec::new();
                while self.peek() != &Tok::RParen {
                    items.push(self.parse_array_literal_item()?);
                }
                self.next();
                Ok(Lit::Array(items))
            }
            Tok::BinSel(op) => match self.peek().clone() {
                Tok::Int(i) if op == "-" => {
                    self.next();
                    Ok(Lit::Int(-i))
                }
                Tok::Float(x) if op == "-" => {
                    self.next();
                    Ok(Lit::Float(-x))
                }
                _ => Ok(Lit::Sym(op)),
            },
            t => Err(self.error(format!("bad array literal element {t}"))),
        }
    }

    fn parse_block(&mut self) -> GemResult<Expr> {
        let span = self.here();
        self.expect(&Tok::LBracket)?;
        let mut params = Vec::new();
        while let Tok::BlockParam(p) = self.peek().clone() {
            let pspan = self.here();
            self.next();
            params.push(VarDecl::new(p, pspan));
        }
        if !params.is_empty() {
            self.expect(&Tok::VBar)?;
        }
        let temps = self.parse_temps()?;
        let body = self.parse_statements(&Tok::RBracket)?;
        self.expect(&Tok::RBracket)?;
        Ok(Expr::Block(Block { params, temps, body, span }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doit(src: &str) -> (Vec<VarDecl>, Vec<Stmt>) {
        parse_doit(src).unwrap()
    }

    fn expr(src: &str) -> Expr {
        let (_, mut stmts) = doit(src);
        assert_eq!(stmts.len(), 1);
        match stmts.remove(0).kind {
            StmtKind::Expr(e) => e,
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn precedence_unary_binary_keyword() {
        // `d at: 2 + 3 factorial` parses as `d at: (2 + (3 factorial))`.
        let e = expr("d at: 2 + 3 factorial");
        let Expr::Send { selector, args, .. } = &e else { panic!() };
        assert_eq!(selector, "at:");
        let Expr::Send { selector: plus, args: plus_args, .. } = &args[0] else { panic!() };
        assert_eq!(plus, "+");
        let Expr::Send { selector: fact, .. } = &plus_args[0] else { panic!() };
        assert_eq!(fact, "factorial");
    }

    #[test]
    fn binary_left_associative() {
        let e = expr("1 - 2 - 3");
        let Expr::Send { recv, selector, .. } = &e else { panic!() };
        assert_eq!(selector, "-");
        assert!(matches!(&**recv, Expr::Send { .. }));
    }

    #[test]
    fn keyword_selector_joins() {
        let e = expr("d at: 1 put: 2");
        let Expr::Send { selector, args, .. } = &e else { panic!() };
        assert_eq!(selector, "at:put:");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn assignment_and_temps() {
        let (temps, stmts) = doit("| x y | x := 3. y := x + 1. ^y");
        assert_eq!(temps, vec!["x", "y"]);
        assert_eq!(stmts.len(), 3);
        assert!(matches!(&stmts[0].kind, StmtKind::Expr(Expr::Assign(n, _)) if n == "x"));
        assert!(matches!(&stmts[2].kind, StmtKind::Return(_)));
        // Spans point at the statement's first token.
        assert_eq!(stmts[0].span, Span::new(1, 9));
        assert_eq!(temps[0].span, Span::new(1, 3));
    }

    #[test]
    fn cascades() {
        let e = expr("coll add: 1; add: 2; size");
        let Expr::Cascade { sends, .. } = &e else { panic!("{e:?}") };
        assert_eq!(sends.len(), 3);
        assert_eq!(sends[2].0, "size");
    }

    #[test]
    fn blocks_with_params_and_temps() {
        let e = expr("[:a :b | | t | t := a + b. t]");
        let Expr::Block(b) = &e else { panic!() };
        assert_eq!(b.params, vec!["a", "b"]);
        assert_eq!(b.temps, vec!["t"]);
        assert_eq!(b.body.len(), 2);
    }

    #[test]
    fn paths_with_time() {
        let e = expr("world ! 'Acme Corp' ! president @ 7 ! city");
        let Expr::Path { root, steps } = &e else { panic!("{e:?}") };
        assert!(matches!(&**root, Expr::Ident(n) if n == "world"));
        assert_eq!(steps.len(), 3);
        assert!(matches!(&steps[0].component, PathComponent::Label(l) if l == "Acme Corp"));
        assert!(steps[1].at.is_some());
        assert!(steps[2].at.is_none());
    }

    #[test]
    fn path_assignment() {
        let e = expr("acme ! president ! city := 'Chicago'");
        assert!(matches!(e, Expr::PathAssign { .. }));
    }

    #[test]
    fn plain_assign_beats_path_assign_confusion() {
        let (_, stmts) = doit("x := w ! a");
        assert!(matches!(&stmts[0].kind, StmtKind::Expr(Expr::Assign(_, _))));
    }

    #[test]
    fn unary_chain_on_path() {
        let e = expr("w ! emp size");
        let Expr::Send { recv, selector, .. } = &e else { panic!("{e:?}") };
        assert_eq!(selector, "size");
        assert!(matches!(&**recv, Expr::Path { .. }));
    }

    #[test]
    fn array_literals() {
        let e = expr("#('name' 'salary' 42 sym (1 2))");
        let Expr::Lit(Lit::Array(items)) = &e else { panic!("{e:?}") };
        assert_eq!(items.len(), 5);
        assert_eq!(items[3], Lit::Sym("sym".into()));
        assert!(matches!(&items[4], Lit::Array(inner) if inner.len() == 2));
    }

    #[test]
    fn method_patterns() {
        let m = parse_method("salary ^salary").unwrap();
        assert_eq!(m.selector, "salary");
        assert!(m.params.is_empty());

        let m = parse_method("+ other ^1").unwrap();
        assert_eq!(m.selector, "+");
        assert_eq!(m.params, vec!["other"]);

        let m = parse_method("salary: s depts: d salary := s. depts := d").unwrap();
        assert_eq!(m.selector, "salary:depts:");
        assert_eq!(m.params, vec!["s", "d"]);
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn negative_literals() {
        assert_eq!(expr("-5"), Expr::Lit(Lit::Int(-5)));
        let e = expr("3 - -2");
        let Expr::Send { args, .. } = &e else { panic!() };
        assert_eq!(args[0], Expr::Lit(Lit::Int(-2)));
    }

    #[test]
    fn vbar_as_boolean_or() {
        let e = expr("a | b");
        let Expr::Send { selector, .. } = &e else { panic!("{e:?}") };
        assert_eq!(selector, "|");
    }

    #[test]
    fn errors_are_positioned() {
        match parse_doit("x := .") {
            Err(GemError::ParseError { line, .. }) => assert_eq!(line, 1),
            other => panic!("{other:?}"),
        }
        assert!(parse_doit("(1 + 2").is_err());
        assert!(parse_doit("1 + 2 3").is_err(), "missing period");
    }

    #[test]
    fn pseudo_variables() {
        assert_eq!(expr("nil"), Expr::Lit(Lit::Nil));
        assert_eq!(expr("true"), Expr::Lit(Lit::True));
        assert!(matches!(expr("self"), Expr::Ident(n) if n == "self"));
        assert!(matches!(expr("System"), Expr::Ident(n) if n == "System"));
    }
}
