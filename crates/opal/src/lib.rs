//! OPAL: the GemStone data language (§4–§5 of Copeland & Maier, SIGMOD 1984).
//!
//! "We scrapped the Pascal-based version of OPAL, and \[began\] anew with an
//! object-oriented language, Smalltalk-80, as a basis." OPAL keeps ST80's
//! object/message/class model and syntax, and adds what the paper's §4.3
//! found missing: `!` path expressions (with assignment), `@` temporal
//! access, declarative selection blocks compiled through the set calculus,
//! and system commands sent to the `System` object.
//!
//! Pipeline (§6): source blocks are **compiled** to bytecode — "The
//! Interpreter is an abstract stack machine that executes compiledMethods
//! consisting of sequences of bytecodes, much the same as the ST80
//! interpreter … The Compiler requires some modifications from the ST80
//! compiler. Most are small changes in syntax …, but a large addition is
//! needed \[to\] translate calculus expressions into procedural form."
//!
//! * [`lexer`] / [`parser`] — OPAL surface syntax;
//! * [`compiler`] — AST → [`bytecode`], including the select-block →
//!   calculus translation;
//! * [`verify`] — the bytecode verifier: install-time abstract
//!   interpretation (stack depth, jump targets, slot bounds,
//!   definite assignment, query-template arity) that makes the
//!   interpreter's fast path sound without per-instruction checks;
//! * [`effects`] — interprocedural effect analysis over verified
//!   bytecode: per-method read/write summaries on a small lattice, used
//!   to classify statements as statically read-only (commit fast path)
//!   and to prove select-block purity for calculus pushdown;
//! * [`interp`] — the stack machine and its ~90 primitive methods;
//! * [`OpalWorld`] — the object-system interface the machine runs against:
//!   the core crate implements it with persistence, transactions and the
//!   time dial; [`BasicWorld`] implements it in memory for a standalone,
//!   non-persistent OPAL (what ST80 itself was, per §4.3).

pub mod ast;
pub mod bytecode;
pub mod compiler;
pub mod effects;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod verify;
pub mod world;

pub use bytecode::{Bc, CompiledBlock, CompiledMethod, Literal, QueryTemplate};
pub use compiler::{
    compile_doit, compile_doit_with_lints, compile_method, compile_method_with_lints,
};
pub use effects::{Effect, EffectCache, EffectSummary};
pub use interp::Interpreter;
pub use verify::{Lint, LintKind, LintSite, Verified, VerifyError, VerifyErrorKind};
pub use world::{install_kernel_methods, BasicWorld, OpalWorld, PrintDepth};

/// Convenience: parse, compile and run a source block against a world,
/// returning the value of its last statement.
pub fn run_block<W: OpalWorld>(
    world: &mut W,
    source: &str,
) -> gemstone_object::GemResult<gemstone_object::Oop> {
    let method = compile_doit(world, source)?;
    let id = world.add_method_code(method)?;
    Interpreter::new(world).run_doit(id)
}
