//! Bytecodes for the OPAL abstract stack machine (§6: "compiledMethods
//! consisting of sequences of bytecodes, much the same as the ST80
//! interpreter").

use gemstone_calculus::Query;
use gemstone_object::SymbolId;

/// A literal pooled in a compiled method.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Sym(SymbolId),
    Char(char),
    Array(Vec<Literal>),
    /// A compiled declarative selection (§6's "large addition" to the
    /// compiler): the calculus query template for a `select:` block.
    Query(QueryTemplate),
}

/// A calculus query compiled from a selection block. Range variables occupy
/// `VarId 0..n_ranges`; captured outer values occupy the next `n_captured`
/// ids and are substituted at run time from the operand stack.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    pub query: Query,
    pub n_captured: u16,
}

impl QueryTemplate {
    /// Static arity check, run at compile/install time rather than trusted
    /// at substitution time: the template must have exactly one range over
    /// `VarId(0)` (the select-block's element variable) and every `VarId`
    /// the query mentions must fall inside the declared window
    /// `0..1 + n_captured` (range var + captured outer values).
    pub fn validate(&self) -> Result<(), String> {
        if self.query.ranges.len() != 1 {
            return Err(format!(
                "query template declares {} ranges, expected 1",
                self.query.ranges.len()
            ));
        }
        if self.query.ranges[0].var != gemstone_calculus::VarId(0) {
            return Err(format!(
                "query template range variable is {:?}, expected VarId(0)",
                self.query.ranges[0].var
            ));
        }
        let limit = 1 + self.n_captured as u32;
        for v in self.query.used_vars() {
            if v.0 as u32 >= limit {
                return Err(format!(
                    "query template uses {v:?} but only {} captured values are declared \
                     (valid ids are 0..{limit})",
                    self.n_captured
                ));
            }
        }
        Ok(())
    }
}

/// One bytecode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bc {
    /// Push literal at pool index.
    PushLit(u16),
    PushNil,
    PushTrue,
    PushFalse,
    PushSelf,
    /// The `System` pseudo-object.
    PushSystem,
    /// Local temp of the current activation (params first).
    PushTemp(u8),
    StoreTemp(u8),
    /// Home-method temp, from inside a block.
    PushHome(u8),
    StoreHome(u8),
    /// Temp of the `up`-th lexically enclosing block activation (nested
    /// closures over outer block variables — `do:` inside `do:`).
    PushOuter {
        up: u8,
        idx: u8,
    },
    StoreOuter {
        up: u8,
        idx: u8,
    },
    /// Instance variable of the receiver, by pooled symbol.
    PushInstVar(u16),
    StoreInstVar(u16),
    /// Global or class name, by pooled symbol; resolved at run time.
    PushGlobal(u16),
    StoreGlobal(u16),
    Pop,
    Dup,
    /// Send the pooled selector with `argc` arguments.
    Send {
        sel: u16,
        argc: u8,
    },
    /// Unconditional relative jump (offset from the *next* instruction).
    Jump(i32),
    /// Pop; jump if false.
    JumpIfFalse(i32),
    /// Pop; jump if true.
    JumpIfTrue(i32),
    /// Push a closure over block `idx` of the current method.
    PushBlock(u16),
    /// Path step: pops [time?] and name and receiver, pushes the element
    /// value. The flag says whether a time operand was pushed.
    PathStep {
        has_time: bool,
    },
    /// Path store: pops value, name, receiver; stores the element; pushes
    /// the value (assignment yields its value).
    PathStore,
    /// Method return with top of stack (non-local when inside a block).
    ReturnTop,
    /// Method return with self.
    ReturnSelf,
    /// Declarative selection: pops `argc` captured values and the receiver
    /// collection; pushes the result array.
    SelectQuery {
        lit: u16,
        argc: u8,
    },
}

/// A block compiled within a method. Blocks share the method's literal pool.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBlock {
    pub n_params: u8,
    pub n_temps: u8,
    pub code: Vec<Bc>,
}

/// A compiled method (or doIt body).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMethod {
    pub selector: SymbolId,
    pub n_params: u8,
    pub n_temps: u8,
    pub literals: Vec<Literal>,
    pub code: Vec<Bc>,
    pub blocks: Vec<CompiledBlock>,
}

impl CompiledMethod {
    /// Total slots in an activation's temp frame.
    pub fn frame_size(&self) -> usize {
        self.n_params as usize + self.n_temps as usize
    }
}
