//! The object-system interface the OPAL machine runs against, and a
//! standalone in-memory implementation.
//!
//! The interpreter is pure control: every data operation — element access,
//! allocation, equality, globals, system commands, declarative selection —
//! goes through [`OpalWorld`]. The `gemstone` core crate implements it with
//! persistence, transactions and the time dial; [`BasicWorld`] here is the
//! non-persistent, single-user variant (what ST80 itself was, §4.3), used
//! for language-level tests and embeddable on its own.

use crate::bytecode::{CompiledMethod, QueryTemplate};
use crate::compiler;
use gemstone_object::{
    class_of, structurally_equal, BodyFormat, ClassId, ClassTable, ElemName, GemError, GemResult,
    HeapObject, Kernel, MethodId, MethodRef, Oop, OopKind, SegmentId, SymbolId, SymbolTable,
    Workspace,
};
use gemstone_temporal::TxnTime;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum nesting depth when printing object structures.
#[derive(Debug, Clone, Copy)]
pub struct PrintDepth(pub u8);

impl Default for PrintDepth {
    fn default() -> Self {
        PrintDepth(3)
    }
}

/// Everything the OPAL compiler and interpreter need from the object system.
pub trait OpalWorld {
    // ---- symbols
    fn intern(&mut self, name: &str) -> SymbolId;
    fn sym_name(&self, id: SymbolId) -> String;

    // ---- classes
    fn class_named(&self, name: SymbolId) -> Option<ClassId>;
    fn class_name_of(&self, class: ClassId) -> SymbolId;
    fn superclass_of(&self, class: ClassId) -> Option<ClassId>;
    fn define_subclass(
        &mut self,
        superclass: ClassId,
        name: SymbolId,
        instvars: Vec<SymbolId>,
    ) -> GemResult<ClassId>;
    fn add_instvar(&mut self, class: ClassId, var: SymbolId) -> GemResult<()>;
    fn declares_instvar(&self, class: ClassId, var: SymbolId) -> bool;
    fn lookup_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef>;
    fn lookup_class_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef>;
    fn install_method(
        &mut self,
        class: ClassId,
        selector: SymbolId,
        m: MethodRef,
        class_side: bool,
    );
    fn is_kind_of(&self, a: ClassId, b: ClassId) -> bool;
    fn kernel(&self) -> Kernel;
    fn class_of(&self, oop: Oop) -> ClassId;
    fn class_format(&self, class: ClassId) -> BodyFormat;
    /// The transient BlockClosure class.
    fn block_class(&self) -> ClassId;
    /// True if any class (kernel or user) defines a method for `selector`.
    /// The select-block analyzer uses this to avoid misreading a real
    /// method send (`printString`) as an element path.
    fn selector_defined_anywhere(&self, selector: SymbolId) -> bool;
    /// Every method bound to `selector` anywhere — instance and class
    /// side, all classes, deduplicated. The effect analysis
    /// ([`crate::effects`]) joins over this closed world to bound what a
    /// dynamically dispatched send can do.
    fn selector_targets(&self, selector: SymbolId) -> Vec<MethodRef>;
    /// Called when user source is compiled into a class (`compile:`), so a
    /// persistent world can record it for recompilation at recovery.
    fn note_method_source(&mut self, _class: ClassId, _source: &str, _class_side: bool) {}
    /// Called once per interpreter run with the bytecode-dispatch and
    /// message-send counts of that run. The interpreter accumulates both in
    /// plain locals and flushes here, so a telemetry-aware world pays two
    /// atomic adds per *run*, never per bytecode.
    fn note_interp_stats(&mut self, _dispatches: u64, _sends: u64) {}

    // ---- compiled code
    fn method(&self, id: MethodId) -> Arc<CompiledMethod>;
    /// Register compiled code, *verifying it first* ([`crate::verify`]).
    /// This is the single choke point through which bytecode reaches the
    /// interpreter: any method that installs here has passed the static
    /// stack/jump/slot analysis, so the interpreter's fast path need not
    /// re-check per instruction.
    fn add_method_code(&mut self, m: CompiledMethod) -> GemResult<MethodId>;

    // ---- objects
    fn new_object(&mut self, class: ClassId) -> GemResult<Oop>;
    fn new_string(&mut self, s: &str) -> Oop;
    /// Text of a String or Symbol.
    fn string_value(&self, oop: Oop) -> Option<String>;
    fn get_elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop>;
    /// Element value in the database state at `t` (temporal `@`).
    fn get_elem_at(&mut self, obj: Oop, name: ElemName, t: TxnTime) -> GemResult<Oop>;
    fn set_elem(&mut self, obj: Oop, name: ElemName, v: Oop) -> GemResult<()>;
    /// Present element values, in name order.
    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>>;
    /// Present element names, in order.
    fn element_names(&mut self, obj: Oop) -> GemResult<Vec<ElemName>>;
    fn add_aliased(&mut self, obj: Oop, v: Oop) -> GemResult<()>;
    fn push_indexed(&mut self, obj: Oop, v: Oop) -> GemResult<i64>;
    /// Present-element count (byte length for byte objects).
    fn obj_size(&mut self, obj: Oop) -> GemResult<usize>;
    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool>;
    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<Ordering>>;

    // ---- globals
    fn get_global(&self, name: SymbolId) -> Option<Oop>;
    fn set_global(&mut self, name: SymbolId, v: Oop) -> GemResult<()>;

    // ---- system commands & declarative selection
    /// A message sent to the `System` pseudo-object (§4.2's uniform system
    /// commands): transactions, the time dial, SafeTime…
    fn system_message(&mut self, selector: SymbolId, args: &[Oop]) -> GemResult<Oop>;
    /// Run a compiled selection query against a collection, with captured
    /// outer values. Returns matching members.
    fn run_select(
        &mut self,
        coll: Oop,
        template: &QueryTemplate,
        captured: &[Oop],
    ) -> GemResult<Vec<Oop>>;
}

/// Human-readable rendering of any value, used by `printString`.
pub fn print_oop<W: OpalWorld + ?Sized>(
    world: &mut W,
    oop: Oop,
    depth: PrintDepth,
) -> GemResult<String> {
    Ok(match oop.kind() {
        OopKind::Nil => "nil".into(),
        OopKind::True => "true".into(),
        OopKind::False => "false".into(),
        OopKind::System => "System".into(),
        OopKind::Int(i) => i.to_string(),
        OopKind::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        OopKind::Char(c) => format!("${c}"),
        OopKind::Sym(s) => format!("#{}", world.sym_name(s)),
        OopKind::Class(c) => world.sym_name(world.class_name_of(c)),
        OopKind::Heap(_) | OopKind::Ref(_) => {
            if let Some(s) = world.string_value(oop) {
                return Ok(format!("'{s}'"));
            }
            let class = world.class_of(oop);
            let cname = world.sym_name(world.class_name_of(class));
            let k = world.kernel();
            if world.is_kind_of(class, k.collection) && depth.0 > 0 {
                let vals = world.elements(oop)?;
                let mut s = format!("{cname} (");
                for (i, v) in vals.iter().take(16).enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    s.push_str(&print_oop(world, *v, PrintDepth(depth.0 - 1))?);
                }
                if vals.len() > 16 {
                    s.push_str(" …");
                }
                s.push(')');
                s
            } else {
                let article =
                    if "AEIOU".contains(cname.chars().next().unwrap_or('X')) { "an" } else { "a" };
                format!("{article} {cname}")
            }
        }
    })
}

/// A standalone, in-memory OPAL world: bootstrapped kernel classes, a
/// session workspace, globals, and no persistence.
pub struct BasicWorld {
    pub symbols: SymbolTable,
    pub classes: ClassTable,
    pub workspace: Workspace,
    kernel: Kernel,
    block_class: ClassId,
    methods: Vec<Arc<CompiledMethod>>,
    globals: HashMap<SymbolId, Oop>,
}

impl BasicWorld {
    /// Bootstrap a world with kernel classes and kernel methods installed.
    pub fn new() -> BasicWorld {
        let mut symbols = SymbolTable::new();
        let (mut classes, kernel) = ClassTable::bootstrap(&mut symbols);
        let bc_name = symbols.intern("BlockClosure");
        let block_class = classes.subclass(bc_name, kernel.object, vec![]).expect("bootstrap");
        let mut w = BasicWorld {
            symbols,
            classes,
            workspace: Workspace::new(),
            kernel,
            block_class,
            methods: Vec::new(),
            globals: HashMap::new(),
        };
        install_kernel_methods(&mut w).expect("kernel methods");
        w
    }

    /// Every compiled method registered in this world (kernel methods plus
    /// anything installed since). All of them passed verification at
    /// registration; corpus tests re-run the verifier over this set.
    pub fn installed_methods(&self) -> impl Iterator<Item = &Arc<CompiledMethod>> {
        self.methods.iter()
    }
}

impl Default for BasicWorld {
    fn default() -> Self {
        BasicWorld::new()
    }
}

impl OpalWorld for BasicWorld {
    fn intern(&mut self, name: &str) -> SymbolId {
        self.symbols.intern(name)
    }

    fn sym_name(&self, id: SymbolId) -> String {
        self.symbols.name(id).to_string()
    }

    fn class_named(&self, name: SymbolId) -> Option<ClassId> {
        self.classes.by_name(name)
    }

    fn class_name_of(&self, class: ClassId) -> SymbolId {
        self.classes.get(class).name
    }

    fn superclass_of(&self, class: ClassId) -> Option<ClassId> {
        self.classes.get(class).superclass
    }

    fn define_subclass(
        &mut self,
        superclass: ClassId,
        name: SymbolId,
        instvars: Vec<SymbolId>,
    ) -> GemResult<ClassId> {
        self.classes.subclass(name, superclass, instvars)
    }

    fn add_instvar(&mut self, class: ClassId, var: SymbolId) -> GemResult<()> {
        self.classes.add_instvar(class, var)
    }

    fn declares_instvar(&self, class: ClassId, var: SymbolId) -> bool {
        self.classes.declares_instvar(class, var)
    }

    fn lookup_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef> {
        self.classes.lookup_method(class, selector).map(|(_, m)| m)
    }

    fn lookup_class_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef> {
        self.classes.lookup_class_method(class, selector).map(|(_, m)| m)
    }

    fn install_method(
        &mut self,
        class: ClassId,
        selector: SymbolId,
        m: MethodRef,
        class_side: bool,
    ) {
        if class_side {
            self.classes.add_class_method(class, selector, m);
        } else {
            self.classes.add_method(class, selector, m);
        }
    }

    fn is_kind_of(&self, a: ClassId, b: ClassId) -> bool {
        self.classes.is_kind_of(a, b)
    }

    fn kernel(&self) -> Kernel {
        self.kernel
    }

    fn class_of(&self, oop: Oop) -> ClassId {
        class_of(&self.workspace, &self.kernel, oop)
    }

    fn class_format(&self, class: ClassId) -> BodyFormat {
        self.classes.get(class).format
    }

    fn block_class(&self) -> ClassId {
        self.block_class
    }

    fn selector_defined_anywhere(&self, selector: SymbolId) -> bool {
        self.classes.iter().any(|(_, def)| {
            def.methods.contains_key(&selector) || def.class_methods.contains_key(&selector)
        })
    }

    fn selector_targets(&self, selector: SymbolId) -> Vec<MethodRef> {
        let mut out = Vec::new();
        for (_, def) in self.classes.iter() {
            for m in
                [def.methods.get(&selector), def.class_methods.get(&selector)].into_iter().flatten()
            {
                if !out.contains(m) {
                    out.push(*m);
                }
            }
        }
        out
    }

    fn method(&self, id: MethodId) -> Arc<CompiledMethod> {
        self.methods[id.0 as usize].clone()
    }

    fn add_method_code(&mut self, m: CompiledMethod) -> GemResult<MethodId> {
        crate::verify::check(&m)?;
        self.methods.push(Arc::new(m));
        Ok(MethodId(self.methods.len() as u32 - 1))
    }

    fn new_object(&mut self, class: ClassId) -> GemResult<Oop> {
        let obj = match self.classes.get(class).format {
            BodyFormat::Elements => HeapObject::new_elements(class, SegmentId::SYSTEM),
            BodyFormat::Bytes => HeapObject::new_bytes(class, SegmentId::SYSTEM, Vec::new()),
        };
        Ok(self.workspace.alloc(obj))
    }

    fn new_string(&mut self, s: &str) -> Oop {
        self.workspace.alloc(HeapObject::new_bytes(
            self.kernel.string,
            SegmentId::SYSTEM,
            s.as_bytes().to_vec(),
        ))
    }

    fn string_value(&self, oop: Oop) -> Option<String> {
        match oop.kind() {
            OopKind::Sym(s) => Some(self.symbols.name(s).to_string()),
            OopKind::Heap(_) => {
                self.workspace.get(oop).ok().and_then(|o| o.as_str().ok()).map(String::from)
            }
            _ => None,
        }
    }

    fn get_elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop> {
        Ok(self.workspace.get(obj)?.elem(name))
    }

    fn get_elem_at(&mut self, _obj: Oop, _name: ElemName, _t: TxnTime) -> GemResult<Oop> {
        Err(GemError::RuntimeError(
            "no object history without a database (BasicWorld is not temporal)".into(),
        ))
    }

    fn set_elem(&mut self, obj: Oop, name: ElemName, v: Oop) -> GemResult<()> {
        self.workspace.get_mut(obj)?.set_elem(name, v);
        Ok(())
    }

    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>> {
        Ok(self.workspace.get(obj)?.present_elements().map(|(_, v)| v).collect())
    }

    fn element_names(&mut self, obj: Oop) -> GemResult<Vec<ElemName>> {
        Ok(self.workspace.get(obj)?.present_elements().map(|(n, _)| n).collect())
    }

    fn add_aliased(&mut self, obj: Oop, v: Oop) -> GemResult<()> {
        self.workspace.get_mut(obj)?.add_aliased(v);
        Ok(())
    }

    fn push_indexed(&mut self, obj: Oop, v: Oop) -> GemResult<i64> {
        let n = self.workspace.get_mut(obj)?.push_indexed(v);
        n.as_int().ok_or_else(|| GemError::TypeMismatch {
            expected: "integer index",
            got: format!("{n:?}"),
        })
    }

    fn obj_size(&mut self, obj: Oop) -> GemResult<usize> {
        let o = self.workspace.get(obj)?;
        Ok(match o.bytes() {
            Some(b) => b.len(),
            None => o.size(),
        })
    }

    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool> {
        Ok(structurally_equal(&self.workspace, &self.symbols, a, b))
    }

    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<Ordering>> {
        compare_values(self, a, b)
    }

    fn get_global(&self, name: SymbolId) -> Option<Oop> {
        self.globals.get(&name).copied()
    }

    fn set_global(&mut self, name: SymbolId, v: Oop) -> GemResult<()> {
        self.globals.insert(name, v);
        Ok(())
    }

    fn system_message(&mut self, selector: SymbolId, args: &[Oop]) -> GemResult<Oop> {
        let name = self.symbols.name(selector).to_string();
        match name.as_str() {
            "error:" => {
                let msg = args
                    .first()
                    .and_then(|a| self.string_value(*a))
                    .unwrap_or_else(|| "error".into());
                Err(GemError::RuntimeError(msg))
            }
            _ => Err(GemError::RuntimeError(format!(
                "System does not understand #{name} without a database attached"
            ))),
        }
    }

    fn run_select(
        &mut self,
        _coll: Oop,
        _template: &QueryTemplate,
        _captured: &[Oop],
    ) -> GemResult<Vec<Oop>> {
        // BasicWorld has no directories; the compiler only emits SelectQuery
        // when the world asks for it (core does). Unreachable in practice,
        // but answer by scan semantics would require the interpreter; refuse.
        Err(GemError::RuntimeError("declarative selection requires a database session".into()))
    }
}

/// Shared ordering semantics for `<`/`>`: numbers by value, strings and
/// symbols lexicographically, characters by scalar.
pub fn compare_values<W: OpalWorld + ?Sized>(
    world: &mut W,
    a: Oop,
    b: Oop,
) -> GemResult<Option<Ordering>> {
    if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
        return Ok(x.partial_cmp(&y));
    }
    if let (Some(x), Some(y)) = (a.as_char(), b.as_char()) {
        return Ok(Some(x.cmp(&y)));
    }
    match (world.string_value(a), world.string_value(b)) {
        (Some(x), Some(y)) => Ok(Some(x.cmp(&y))),
        _ => Ok(None),
    }
}

/// Primitive numbers. The interpreter dispatches on these; classes bind
/// selectors to them at bootstrap.
pub mod prims {
    pub const IDENTICAL: u32 = 1;
    pub const NOT_IDENTICAL: u32 = 2;
    pub const CLASS: u32 = 3;
    pub const IS_NIL: u32 = 4;
    pub const NOT_NIL: u32 = 5;
    pub const PRINT_STRING: u32 = 6;
    pub const EQUAL: u32 = 7;
    pub const NOT_EQUAL: u32 = 8;
    pub const ERROR: u32 = 9;
    pub const YOURSELF: u32 = 10;
    pub const IS_KIND_OF: u32 = 12;
    pub const AT: u32 = 14;
    pub const AT_PUT: u32 = 15;
    pub const SIZE: u32 = 16;
    pub const INCLUDES: u32 = 17;
    pub const ELEMENTS: u32 = 18;
    pub const NAMES: u32 = 19;

    pub const ADD_NUM: u32 = 30;
    pub const SUB: u32 = 31;
    pub const MUL: u32 = 32;
    pub const DIV: u32 = 33;
    pub const LT: u32 = 34;
    pub const LE: u32 = 35;
    pub const GT: u32 = 36;
    pub const GE: u32 = 37;
    pub const MOD: u32 = 38;
    pub const IDIV: u32 = 39;
    pub const NEGATED: u32 = 40;
    pub const ABS: u32 = 41;
    pub const MIN: u32 = 42;
    pub const MAX: u32 = 43;
    pub const AS_FLOAT: u32 = 44;
    pub const AS_INTEGER: u32 = 45;

    pub const NOT: u32 = 50;
    pub const BOOL_AND: u32 = 51;
    pub const BOOL_OR: u32 = 52;

    pub const CONCAT: u32 = 60;
    pub const AS_SYMBOL: u32 = 63;
    pub const AS_STRING: u32 = 64;

    pub const ADD_INDEXED: u32 = 70;
    pub const ADD_SET: u32 = 71;
    pub const ADD_BAG: u32 = 72;
    pub const REMOVE: u32 = 74;
    pub const REMOVE_KEY: u32 = 75;
    pub const KEYS: u32 = 76;
    pub const VALUES: u32 = 77;
    pub const FIRST: u32 = 78;
    pub const LAST: u32 = 79;

    pub const NEW: u32 = 90;
    pub const SUBCLASS: u32 = 91;
    pub const CLASS_NAME: u32 = 92;
    pub const COMPILE: u32 = 93;
    pub const COMPILE_CLASS_METHOD: u32 = 94;
    pub const ADD_INSTVAR: u32 = 96;

    pub const CHAR_VALUE: u32 = 100;
    pub const AS_CHARACTER: u32 = 101;
}

/// Install primitive bindings and the OPAL-source kernel methods on the
/// bootstrapped classes. Idempotent per world (call once at construction).
pub fn install_kernel_methods<W: OpalWorld>(world: &mut W) -> GemResult<()> {
    use prims::*;
    let k = world.kernel();

    let prim = |world: &mut W, class: ClassId, sel: &str, n: u32, class_side: bool| {
        let sym = world.intern(sel);
        world.install_method(class, sym, MethodRef::Primitive(n), class_side);
    };

    // Object protocol.
    for (sel, n) in [
        ("==", IDENTICAL),
        ("~~", NOT_IDENTICAL),
        ("class", CLASS),
        ("isNil", IS_NIL),
        ("notNil", NOT_NIL),
        ("printString", PRINT_STRING),
        ("=", EQUAL),
        ("~=", NOT_EQUAL),
        ("error:", ERROR),
        ("yourself", YOURSELF),
        ("isKindOf:", IS_KIND_OF),
        ("at:", AT),
        ("at:put:", AT_PUT),
        ("size", SIZE),
        ("includes:", INCLUDES),
        ("__elements", ELEMENTS),
        ("__names", NAMES),
    ] {
        prim(world, k.object, sel, n, false);
    }

    // Numbers.
    for (sel, n) in [
        ("+", ADD_NUM),
        ("-", SUB),
        ("*", MUL),
        ("/", DIV),
        ("<", LT),
        ("<=", LE),
        (">", GT),
        (">=", GE),
        ("\\\\", MOD),
        ("//", IDIV),
        ("negated", NEGATED),
        ("abs", ABS),
        ("min:", MIN),
        ("max:", MAX),
        ("asFloat", AS_FLOAT),
        ("asInteger", AS_INTEGER),
        ("asCharacter", AS_CHARACTER),
    ] {
        prim(world, k.number, sel, n, false);
    }
    // Magnitude comparisons also apply to characters and strings.
    for (sel, n) in [("<", LT), ("<=", LE), (">", GT), (">=", GE)] {
        prim(world, k.magnitude, sel, n, false);
        prim(world, k.string, sel, n, false);
    }

    // Booleans.
    prim(world, k.boolean, "not", NOT, false);
    prim(world, k.boolean, "&", BOOL_AND, false);
    prim(world, k.boolean, "|", BOOL_OR, false);

    // Strings & symbols.
    prim(world, k.string, ",", CONCAT, false);
    prim(world, k.string, "asSymbol", AS_SYMBOL, false);
    prim(world, k.string, "asString", AS_STRING, false);
    prim(world, k.symbol, "asString", AS_STRING, false);
    prim(world, k.object, "asString", AS_STRING, false);
    prim(world, k.character, "value", CHAR_VALUE, false);

    // Collections.
    prim(world, k.ordered_collection, "add:", ADD_INDEXED, false);
    prim(world, k.array, "add:", ADD_INDEXED, false);
    prim(world, k.set, "add:", ADD_SET, false);
    prim(world, k.bag, "add:", ADD_BAG, false);
    prim(world, k.collection, "remove:", REMOVE, false);
    prim(world, k.dictionary, "removeKey:", REMOVE_KEY, false);
    prim(world, k.dictionary, "keys", KEYS, false);
    prim(world, k.dictionary, "values", VALUES, false);
    prim(world, k.collection, "first", FIRST, false);
    prim(world, k.collection, "last", LAST, false);

    // Class-side protocol (installed on Object's class side: every class
    // inherits it).
    prim(world, k.object, "new", NEW, true);
    prim(world, k.object, "subclass:instVarNames:", SUBCLASS, true);
    prim(world, k.object, "name", CLASS_NAME, true);
    prim(world, k.object, "compile:", COMPILE, true);
    prim(world, k.object, "compileClassMethod:", COMPILE_CLASS_METHOD, true);
    prim(world, k.object, "addInstVarName:", ADD_INSTVAR, true);

    // Kernel methods written in OPAL itself (iteration protocols — they
    // exercise blocks, inlined control flow and non-local return).
    let collection_methods = [
        "do: aBlock | elems i n | elems := self __elements. i := 1. n := elems size. \
         [i <= n] whileTrue: [aBlock value: (elems at: i). i := i + 1]. ^self",
        "select: aBlock | out | out := OrderedCollection new. \
         self do: [:e | (aBlock value: e) ifTrue: [out add: e]]. ^out",
        "reject: aBlock ^self select: [:e | (aBlock value: e) not]",
        "collect: aBlock | out | out := OrderedCollection new. \
         self do: [:e | out add: (aBlock value: e)]. ^out",
        "detect: aBlock ifNone: noneBlock \
         self do: [:e | (aBlock value: e) ifTrue: [^e]]. ^noneBlock value",
        "detect: aBlock ^self detect: aBlock ifNone: [self error: 'no element satisfies detect:']",
        "inject: start into: aBlock | acc | acc := start. \
         self do: [:e | acc := aBlock value: acc value: e]. ^acc",
        "anySatisfy: aBlock self do: [:e | (aBlock value: e) ifTrue: [^true]]. ^false",
        "allSatisfy: aBlock self do: [:e | (aBlock value: e) ifFalse: [^false]]. ^true",
        "isEmpty ^self size = 0",
        "notEmpty ^self isEmpty not",
        "addAll: aColl aColl do: [:e | self add: e]. ^aColl",
        "asOrderedCollection | out | out := OrderedCollection new. \
         self do: [:e | out add: e]. ^out",
        "includesAll: aColl ^aColl allSatisfy: [:e | self includes: e]",
        "occurrencesOf: anObj | n | n := 0. \
         self do: [:e | e = anObj ifTrue: [n := n + 1]]. ^n",
        "sum ^self inject: 0 into: [:a :e | a + e]",
        "max ^self inject: self first into: [:a :e | a max: e]",
        "min ^self inject: self first into: [:a :e | a min: e]",
        "average ^self sum / self size",
        "count: aBlock | n | n := 0. \
         self do: [:e | (aBlock value: e) ifTrue: [n := n + 1]]. ^n",
        "asSet | out | out := Set new. self do: [:e | out add: e]. ^out",
        "asBag | out | out := Bag new. self do: [:e | out add: e]. ^out",
        "indexOf: x | i found | i := 0. found := 0.          self do: [:e | i := i + 1. ((found = 0) and: [e = x]) ifTrue: [found := i]]. ^found",
        "asSortedArray | arr n | arr := Array new. self do: [:e | arr add: e]. n := arr size.          1 to: n do: [:i | | minI tmp | minI := i.              (i + 1) to: n do: [:j | ((arr at: j) < (arr at: minI)) ifTrue: [minI := j]].              tmp := arr at: i. arr at: i put: (arr at: minI). arr at: minI put: tmp].          ^arr",
    ];
    for src in collection_methods {
        let m = compiler::compile_method(world, k.collection, src)?;
        let sel = m.selector;
        let id = world.add_method_code(m)?;
        world.install_method(k.collection, sel, MethodRef::Compiled(id), false);
    }

    let number_methods =
        ["between: lo and: hi ^(self >= lo) & (self <= hi)", "squared ^self * self"];
    for src in number_methods {
        let m = compiler::compile_method(world, k.number, src)?;
        let sel = m.selector;
        let id = world.add_method_code(m)?;
        world.install_method(k.number, sel, MethodRef::Compiled(id), false);
    }

    let dictionary_methods = [
        "at: key ifAbsent: aBlock | v | v := self at: key. v isNil ifTrue: [^aBlock value]. ^v",
        "includesKey: key ^(self at: key) notNil",
    ];
    for src in dictionary_methods {
        let m = compiler::compile_method(world, k.dictionary, src)?;
        let sel = m.selector;
        let id = world.add_method_code(m)?;
        world.install_method(k.dictionary, sel, MethodRef::Compiled(id), false);
    }

    let object_methods = [
        "ifNil: aBlock self isNil ifTrue: [^aBlock value]. ^self",
        "-> aValue | a | a := Association new. a at: #key put: self. a at: #value put: aValue. ^a",
    ];
    for src in object_methods {
        let m = compiler::compile_method(world, k.object, src)?;
        let sel = m.selector;
        let id = world.add_method_code(m)?;
        world.install_method(k.object, sel, MethodRef::Compiled(id), false);
    }

    let association_methods = ["key ^self at: #key", "value ^self at: #value"];
    for src in association_methods {
        let m = compiler::compile_method(world, k.association, src)?;
        let sel = m.selector;
        let id = world.add_method_code(m)?;
        world.install_method(k.association, sel, MethodRef::Compiled(id), false);
    }

    Ok(())
}
