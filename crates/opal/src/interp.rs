//! The OPAL Interpreter: "an abstract stack machine that executes
//! compiledMethods consisting of sequences of bytecodes, much the same as
//! the ST80 interpreter. It dispatches bytecodes, performs stack
//! manipulations and some primitive methods, and makes calls to the Object
//! Manager" (§6) — here, through the [`OpalWorld`] trait.

use crate::bytecode::{Bc, CompiledMethod, Literal};
use crate::compiler;
use crate::effects;
use crate::world::{compare_values, prims, print_oop, OpalWorld, PrintDepth};
use gemstone_object::{ElemName, GemError, GemResult, MethodId, MethodRef, Oop, OopKind, SymbolId};
use gemstone_temporal::TxnTime;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::rc::Rc;
use std::sync::Arc;

const DEFAULT_STEP_LIMIT: u64 = 200_000_000;
const MAX_FRAMES: usize = 4_000;

/// A bytecode-level inconsistency. Methods that pass [`crate::verify`] can
/// never raise one of these; they replace the panics the interpreter had
/// before verification existed, so the session survives even hand-built or
/// hostile bytecode.
fn corrupt(msg: &str) -> GemError {
    GemError::CorruptMethod(msg.into())
}

fn underflow() -> GemError {
    corrupt("operand stack underflow")
}

fn read_slot(env: &Rc<EnvNode>, i: u8) -> GemResult<Oop> {
    env.slots.borrow().get(i as usize).copied().ok_or_else(|| corrupt("temp slot out of range"))
}

fn write_slot(env: &Rc<EnvNode>, i: u8, v: Oop) -> GemResult<()> {
    *env.slots
        .borrow_mut()
        .get_mut(i as usize)
        .ok_or_else(|| corrupt("temp slot out of range"))? = v;
    Ok(())
}

fn jump_target(ip: usize, off: i32) -> GemResult<usize> {
    let t = ip as i64 + off as i64;
    if t < 0 {
        return Err(corrupt("jump before code start"));
    }
    Ok(t as usize)
}

/// One lexical environment: an activation's temp slots plus a link to the
/// activation it was created in (for nested closures over block variables).
struct EnvNode {
    slots: RefCell<Vec<Oop>>,
    parent: Option<Rc<EnvNode>>,
}

impl EnvNode {
    fn up(self: &Rc<EnvNode>, n: u8) -> GemResult<Rc<EnvNode>> {
        let mut cur = self.clone();
        for _ in 0..n {
            let Some(parent) = cur.parent.clone() else {
                return Err(corrupt("outer scope chain exhausted"));
            };
            cur = parent;
        }
        Ok(cur)
    }
}

struct Frame {
    method: Arc<CompiledMethod>,
    /// `Some(i)`: executing block `i` of `method`.
    block: Option<u16>,
    ip: usize,
    env: Rc<EnvNode>,
    home_temps: Rc<EnvNode>,
    receiver: Oop,
    stack: Vec<Oop>,
    token: u64,
    home_token: u64,
}

impl Frame {
    fn code(&self) -> &[Bc] {
        match self.block {
            None => &self.method.code,
            // A bad block index cannot occur in a verified method; degrade
            // to empty code (immediate fall-off) rather than panic.
            Some(i) => self.method.blocks.get(i as usize).map(|b| b.code.as_slice()).unwrap_or(&[]),
        }
    }
}

#[derive(Clone)]
struct ClosureData {
    method: Arc<CompiledMethod>,
    block: u16,
    /// The environment the block literal was evaluated in.
    captured_env: Rc<EnvNode>,
    home_temps: Rc<EnvNode>,
    receiver: Oop,
    home_token: u64,
}

/// The stack machine. Create one per execution; block closures are
/// transient to an execution.
pub struct Interpreter<'w, W: OpalWorld> {
    world: &'w mut W,
    frames: Vec<Frame>,
    closures: Vec<ClosureData>,
    next_token: u64,
    steps: u64,
    sends: u64,
    step_limit: u64,
    closure_elem: ElemName,
}

impl<'w, W: OpalWorld> Interpreter<'w, W> {
    /// A fresh machine over `world`.
    pub fn new(world: &'w mut W) -> Interpreter<'w, W> {
        let closure_elem = ElemName::Sym(world.intern("__closure"));
        Interpreter {
            world,
            frames: Vec::new(),
            closures: Vec::new(),
            next_token: 0,
            steps: 0,
            sends: 0,
            step_limit: DEFAULT_STEP_LIMIT,
            closure_elem,
        }
    }

    /// Override the runaway guard.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Execute a compiled doIt, returning its value.
    pub fn run_doit(mut self, id: MethodId) -> GemResult<Oop> {
        let method = self.world.method(id);
        self.push_method_frame(method, Oop::NIL, &[])?;
        self.run()
    }

    /// Send a message programmatically (used by the Executor API): builds a
    /// synthetic carrier activation `recv selector: args…` and runs it.
    pub fn send_message(mut self, recv: Oop, selector: SymbolId, args: &[Oop]) -> GemResult<Oop> {
        let n = args.len();
        let mut code = Vec::with_capacity(n + 3);
        for i in 0..=n {
            code.push(Bc::PushTemp(i as u8));
        }
        code.push(Bc::Send { sel: 0, argc: n as u8 });
        code.push(Bc::ReturnTop);
        let method = CompiledMethod {
            selector,
            n_params: (n + 1) as u8,
            n_temps: 0,
            literals: vec![Literal::Sym(selector)],
            code,
            blocks: Vec::new(),
        };
        debug_assert!(
            crate::verify::check(&method).is_ok(),
            "synthetic send carrier must pass verification"
        );
        let mut all_args = Vec::with_capacity(n + 1);
        all_args.push(recv);
        all_args.extend_from_slice(args);
        self.push_method_frame(Arc::new(method), Oop::NIL, &all_args)?;
        self.run()
    }

    fn fresh_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    fn push_method_frame(
        &mut self,
        method: Arc<CompiledMethod>,
        receiver: Oop,
        args: &[Oop],
    ) -> GemResult<()> {
        if self.frames.len() >= MAX_FRAMES {
            return Err(GemError::ResourceExhausted("call stack depth"));
        }
        if args.len() != method.n_params as usize {
            return Err(GemError::RuntimeError(format!(
                "wrong number of arguments: expected {}, got {}",
                method.n_params,
                args.len()
            )));
        }
        let mut temps = vec![Oop::NIL; method.frame_size()];
        temps[..args.len()].copy_from_slice(args);
        let env = Rc::new(EnvNode { slots: RefCell::new(temps), parent: None });
        let token = self.fresh_token();
        self.frames.push(Frame {
            method,
            block: None,
            ip: 0,
            home_temps: env.clone(),
            env,
            receiver,
            stack: Vec::with_capacity(8),
            token,
            home_token: token,
        });
        Ok(())
    }

    fn push_block_frame(&mut self, closure: &ClosureData, args: &[Oop]) -> GemResult<()> {
        if self.frames.len() >= MAX_FRAMES {
            return Err(GemError::ResourceExhausted("call stack depth"));
        }
        let Some(block) = closure.method.blocks.get(closure.block as usize) else {
            return Err(corrupt("block index out of range"));
        };
        if args.len() != block.n_params as usize {
            return Err(GemError::RuntimeError(format!(
                "block expects {} arguments, got {}",
                block.n_params,
                args.len()
            )));
        }
        let mut temps = vec![Oop::NIL; block.n_params as usize + block.n_temps as usize];
        temps[..args.len()].copy_from_slice(args);
        let env = Rc::new(EnvNode {
            slots: RefCell::new(temps),
            parent: Some(closure.captured_env.clone()),
        });
        let token = self.fresh_token();
        self.frames.push(Frame {
            method: closure.method.clone(),
            block: Some(closure.block),
            ip: 0,
            env,
            home_temps: closure.home_temps.clone(),
            receiver: closure.receiver,
            stack: Vec::with_capacity(8),
            token,
            home_token: closure.home_token,
        });
        Ok(())
    }

    // ------------------------------------------------------- main loop

    /// Drive the bytecode loop to completion, then flush the dispatch and
    /// send counts to the world exactly once (success or failure) — so
    /// telemetry costs nothing per bytecode, only per run.
    fn run(mut self) -> GemResult<Oop> {
        let result = self.run_loop();
        self.world.note_interp_stats(self.steps, self.sends);
        result
    }

    fn run_loop(&mut self) -> GemResult<Oop> {
        loop {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(GemError::ResourceExhausted("interpreter step budget"));
            }
            let Some(frame) = self.frames.last_mut() else {
                return Err(corrupt("running without a frame"));
            };
            if frame.ip >= frame.code().len() {
                // Falling off the end: blocks answer their last value;
                // methods always end in an explicit return.
                debug_assert!(frame.block.is_some(), "method fell off its code");
                let value = frame.stack.pop().unwrap_or(Oop::NIL);
                if let Some(v) = self.do_return(value)? {
                    return Ok(v);
                }
                continue;
            }
            let bc = frame.code()[frame.ip];
            frame.ip += 1;
            match bc {
                Bc::PushLit(i) => {
                    let lit = frame
                        .method
                        .literals
                        .get(i as usize)
                        .cloned()
                        .ok_or_else(|| corrupt("literal index out of range"))?;
                    let v = self.literal_to_oop(&lit)?;
                    self.top()?.stack.push(v);
                }
                Bc::PushNil => frame.stack.push(Oop::NIL),
                Bc::PushTrue => frame.stack.push(Oop::TRUE),
                Bc::PushFalse => frame.stack.push(Oop::FALSE),
                Bc::PushSelf => {
                    let r = frame.receiver;
                    frame.stack.push(r);
                }
                Bc::PushSystem => frame.stack.push(Oop::SYSTEM),
                Bc::PushTemp(i) => {
                    let v = read_slot(&frame.env, i)?;
                    frame.stack.push(v);
                }
                Bc::StoreTemp(i) => {
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    write_slot(&frame.env, i, v)?;
                }
                Bc::PushHome(i) => {
                    let v = read_slot(&frame.home_temps, i)?;
                    frame.stack.push(v);
                }
                Bc::StoreHome(i) => {
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    write_slot(&frame.home_temps, i, v)?;
                }
                Bc::PushOuter { up, idx } => {
                    let env = frame.env.up(up)?;
                    let v = read_slot(&env, idx)?;
                    frame.stack.push(v);
                }
                Bc::StoreOuter { up, idx } => {
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    let env = frame.env.up(up)?;
                    write_slot(&env, idx, v)?;
                }
                Bc::PushInstVar(i) => {
                    let Some(Literal::Sym(sym)) = frame.method.literals.get(i as usize) else {
                        return Err(corrupt("instvar literal is not a symbol"));
                    };
                    let sym = *sym;
                    let recv = frame.receiver;
                    let v = self.world.get_elem(recv, ElemName::Sym(sym))?;
                    self.top()?.stack.push(v);
                }
                Bc::StoreInstVar(i) => {
                    let Some(Literal::Sym(sym)) = frame.method.literals.get(i as usize) else {
                        return Err(corrupt("instvar literal is not a symbol"));
                    };
                    let sym = *sym;
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    let recv = frame.receiver;
                    self.world.set_elem(recv, ElemName::Sym(sym), v)?;
                }
                Bc::PushGlobal(i) => {
                    let Some(Literal::Sym(sym)) = frame.method.literals.get(i as usize) else {
                        return Err(corrupt("global literal is not a symbol"));
                    };
                    let sym = *sym;
                    let v = match self.world.get_global(sym) {
                        Some(v) => v,
                        None => match self.world.class_named(sym) {
                            Some(c) => Oop::class(c),
                            None => {
                                return Err(GemError::RuntimeError(format!(
                                    "undefined variable {}",
                                    self.world.sym_name(sym)
                                )))
                            }
                        },
                    };
                    self.top()?.stack.push(v);
                }
                Bc::StoreGlobal(i) => {
                    let Some(Literal::Sym(sym)) = frame.method.literals.get(i as usize) else {
                        return Err(corrupt("global literal is not a symbol"));
                    };
                    let sym = *sym;
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    self.world.set_global(sym, v)?;
                }
                Bc::Pop => {
                    frame.stack.pop();
                }
                Bc::Dup => {
                    let v = *frame.stack.last().ok_or_else(underflow)?;
                    frame.stack.push(v);
                }
                Bc::Jump(off) => {
                    frame.ip = jump_target(frame.ip, off)?;
                }
                Bc::JumpIfFalse(off) => {
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    match v.as_bool() {
                        Some(false) => frame.ip = jump_target(frame.ip, off)?,
                        Some(true) => {}
                        None => {
                            return Err(GemError::TypeMismatch {
                                expected: "Boolean",
                                got: format!("{v:?}"),
                            })
                        }
                    }
                }
                Bc::JumpIfTrue(off) => {
                    let v = frame.stack.pop().ok_or_else(underflow)?;
                    match v.as_bool() {
                        Some(true) => frame.ip = jump_target(frame.ip, off)?,
                        Some(false) => {}
                        None => {
                            return Err(GemError::TypeMismatch {
                                expected: "Boolean",
                                got: format!("{v:?}"),
                            })
                        }
                    }
                }
                Bc::PushBlock(idx) => {
                    let data = ClosureData {
                        method: frame.method.clone(),
                        block: idx,
                        captured_env: frame.env.clone(),
                        home_temps: frame.home_temps.clone(),
                        receiver: frame.receiver,
                        home_token: frame.home_token,
                    };
                    self.closures.push(data);
                    let cidx = self.closures.len() - 1;
                    let class = self.world.block_class();
                    let obj = self.world.new_object(class)?;
                    self.world.set_elem(obj, self.closure_elem, Oop::int(cidx as i64))?;
                    self.top()?.stack.push(obj);
                }
                Bc::PathStep { has_time } => {
                    let time = if has_time {
                        let t = frame.stack.pop().ok_or_else(underflow)?;
                        Some(t)
                    } else {
                        None
                    };
                    let name = frame.stack.pop().ok_or_else(underflow)?;
                    let recv = frame.stack.pop().ok_or_else(underflow)?;
                    if recv.is_nil() {
                        return Err(GemError::PathThroughNil(self.describe_name(name)));
                    }
                    let elem = self.oop_to_elem_name(name)?;
                    let v = match time {
                        None => self.world.get_elem(recv, elem)?,
                        Some(t) => {
                            let ticks = t.as_int().ok_or_else(|| GemError::TypeMismatch {
                                expected: "integer transaction time after @",
                                got: format!("{t:?}"),
                            })?;
                            if ticks < 0 {
                                return Err(GemError::TypeMismatch {
                                    expected: "non-negative time",
                                    got: ticks.to_string(),
                                });
                            }
                            self.world.get_elem_at(recv, elem, TxnTime::from_ticks(ticks as u64))?
                        }
                    };
                    self.top()?.stack.push(v);
                }
                Bc::PathStore => {
                    let value = frame.stack.pop().ok_or_else(underflow)?;
                    let name = frame.stack.pop().ok_or_else(underflow)?;
                    let recv = frame.stack.pop().ok_or_else(underflow)?;
                    if recv.is_nil() {
                        return Err(GemError::PathThroughNil(self.describe_name(name)));
                    }
                    let elem = self.oop_to_elem_name(name)?;
                    self.world.set_elem(recv, elem, value)?;
                    self.top()?.stack.push(value);
                }
                Bc::ReturnTop => {
                    let value = frame.stack.pop().unwrap_or(Oop::NIL);
                    if frame.block.is_some() {
                        // Non-local return from the home method.
                        let home = frame.home_token;
                        if let Some(v) = self.do_nonlocal_return(home, value)? {
                            return Ok(v);
                        }
                    } else if let Some(v) = self.do_return(value)? {
                        return Ok(v);
                    }
                }
                Bc::ReturnSelf => {
                    let value = frame.receiver;
                    if let Some(v) = self.do_return(value)? {
                        return Ok(v);
                    }
                }
                Bc::Send { sel, argc } => {
                    let Some(Literal::Sym(selector)) = frame.method.literals.get(sel as usize)
                    else {
                        return Err(corrupt("selector literal is not a symbol"));
                    };
                    let selector = *selector;
                    let n = argc as usize;
                    let len = frame.stack.len();
                    if len < n + 1 {
                        return Err(underflow());
                    }
                    let args: Vec<Oop> = frame.stack.split_off(len - n);
                    let recv = frame.stack.pop().ok_or_else(underflow)?;
                    self.dispatch_send(recv, selector, &args)?;
                }
                Bc::SelectQuery { lit, argc } => {
                    let Some(Literal::Query(template)) =
                        frame.method.literals.get(lit as usize).cloned()
                    else {
                        return Err(corrupt("query literal index is not a query"));
                    };
                    let n = argc as usize;
                    let len = frame.stack.len();
                    if len < n + 1 {
                        return Err(underflow());
                    }
                    let captured: Vec<Oop> = frame.stack.split_off(len - n);
                    let coll = frame.stack.pop().ok_or_else(underflow)?;
                    let members = self.world.run_select(coll, &template, &captured)?;
                    let k = self.world.kernel();
                    let out = self.world.new_object(k.ordered_collection)?;
                    for m in members {
                        self.world.push_indexed(out, m)?;
                    }
                    self.top()?.stack.push(out);
                }
            }
        }
    }

    fn top(&mut self) -> GemResult<&mut Frame> {
        self.frames.last_mut().ok_or_else(|| corrupt("no active frame"))
    }

    /// Pop the current frame, pushing `value` on the caller. `Some(v)` means
    /// execution finished with v.
    fn do_return(&mut self, value: Oop) -> GemResult<Option<Oop>> {
        self.frames.pop();
        match self.frames.last_mut() {
            Some(caller) => {
                caller.stack.push(value);
                Ok(None)
            }
            None => Ok(Some(value)),
        }
    }

    /// Unwind to the frame whose token is `home`, return from it.
    fn do_nonlocal_return(&mut self, home: u64, value: Oop) -> GemResult<Option<Oop>> {
        let Some(pos) = self.frames.iter().rposition(|f| f.token == home) else {
            return Err(GemError::RuntimeError(
                "non-local return from a block whose method already returned".into(),
            ));
        };
        self.frames.truncate(pos); // drop home and everything above it
        match self.frames.last_mut() {
            Some(caller) => {
                caller.stack.push(value);
                Ok(None)
            }
            None => Ok(Some(value)),
        }
    }

    fn literal_to_oop(&mut self, lit: &Literal) -> GemResult<Oop> {
        Ok(match lit {
            Literal::Int(i) => Oop::int(*i),
            Literal::Float(x) => Oop::float(*x),
            Literal::Sym(s) => Oop::sym(*s),
            Literal::Char(c) => Oop::char(*c),
            Literal::Str(s) => self.world.new_string(s),
            Literal::Array(items) => {
                let k = self.world.kernel();
                let arr = self.world.new_object(k.array)?;
                for item in items {
                    let v = self.literal_to_oop(item)?;
                    self.world.push_indexed(arr, v)?;
                }
                arr
            }
            Literal::Query(_) => return Err(corrupt("query literal pushed as value")),
        })
    }

    fn oop_to_elem_name(&mut self, name: Oop) -> GemResult<ElemName> {
        match name.kind() {
            OopKind::Sym(s) => Ok(ElemName::Sym(s)),
            OopKind::Int(i) => Ok(ElemName::Int(i)),
            OopKind::Heap(_) => match self.world.string_value(name) {
                Some(s) => Ok(ElemName::Sym(self.world.intern(&s))),
                None => Err(GemError::TypeMismatch {
                    expected: "element name (symbol, string or integer)",
                    got: format!("{name:?}"),
                }),
            },
            _ => Err(GemError::TypeMismatch {
                expected: "element name (symbol, string or integer)",
                got: format!("{name:?}"),
            }),
        }
    }

    fn describe_name(&mut self, name: Oop) -> String {
        print_oop(self.world, name, PrintDepth(1)).unwrap_or_else(|_| format!("{name:?}"))
    }

    // ---------------------------------------------------------- sends

    fn dispatch_send(&mut self, recv: Oop, selector: SymbolId, args: &[Oop]) -> GemResult<()> {
        self.sends += 1;
        // Block invocation.
        if recv.is_heap() {
            let class = self.world.class_of(recv);
            if class == self.world.block_class() {
                let name = self.world.sym_name(selector);
                let expected = match name.as_str() {
                    "value" => Some(0),
                    "value:" => Some(1),
                    "value:value:" => Some(2),
                    "value:value:value:" => Some(3),
                    _ => None,
                };
                if let Some(n) = expected {
                    if args.len() != n {
                        return Err(GemError::RuntimeError("bad block arity".into()));
                    }
                    let idx = self.world.get_elem(recv, self.closure_elem)?;
                    let idx = idx
                        .as_int()
                        .ok_or_else(|| GemError::RuntimeError("stale block closure".into()))?
                        as usize;
                    let closure = self
                        .closures
                        .get(idx)
                        .cloned()
                        .ok_or_else(|| GemError::RuntimeError("stale block closure".into()))?;
                    return self.push_block_frame(&closure, args);
                }
            }
        }
        // Class receivers: class-side protocol, falling back to Metaclass
        // instance protocol (printString, == …).
        if let OopKind::Class(c) = recv.kind() {
            if let Some(m) = self.world.lookup_class_method(c, selector) {
                return self.invoke(recv, m, selector, args);
            }
            let meta = self.world.kernel().metaclass;
            if let Some(m) = self.world.lookup_method(meta, selector) {
                return self.invoke(recv, m, selector, args);
            }
            return self.does_not_understand(recv, selector, args);
        }
        // System pseudo-object.
        if recv.kind() == OopKind::System {
            let v = self.world.system_message(selector, args)?;
            self.top()?.stack.push(v);
            return Ok(());
        }
        let class = self.world.class_of(recv);
        match self.world.lookup_method(class, selector) {
            Some(m) => self.invoke(recv, m, selector, args),
            None => self.does_not_understand(recv, selector, args),
        }
    }

    fn invoke(
        &mut self,
        recv: Oop,
        m: MethodRef,
        selector: SymbolId,
        args: &[Oop],
    ) -> GemResult<()> {
        match m {
            MethodRef::Primitive(p) => {
                let v = self.primitive(p, recv, args, selector)?;
                self.top()?.stack.push(v);
                Ok(())
            }
            MethodRef::Compiled(id) => {
                let method = self.world.method(id);
                self.push_method_frame(method, recv, args)
            }
        }
    }

    /// Element access as message fallback: a unary selector reads a declared
    /// or present element; `name:` writes a declared instance variable. This
    /// is the path-flavoured access of §4.3 ("sometimes it is the most
    /// natural way"), without requiring accessor boilerplate.
    fn does_not_understand(
        &mut self,
        recv: Oop,
        selector: SymbolId,
        args: &[Oop],
    ) -> GemResult<()> {
        let name = self.world.sym_name(selector);
        if recv.is_heap() {
            let class = self.world.class_of(recv);
            if args.is_empty() {
                let sym = selector;
                let declared = self.world.declares_instvar(class, sym);
                let present = !self.world.get_elem(recv, ElemName::Sym(sym))?.is_nil();
                if declared || present {
                    let v = self.world.get_elem(recv, ElemName::Sym(sym))?;
                    self.top()?.stack.push(v);
                    return Ok(());
                }
            } else if args.len() == 1
                && name.ends_with(':')
                && !name[..name.len() - 1].contains(':')
            {
                let base = self.world.intern(&name[..name.len() - 1]);
                if self.world.declares_instvar(class, base) {
                    self.world.set_elem(
                        recv,
                        ElemName::Sym(base),
                        args.first().copied().unwrap_or(Oop::NIL),
                    )?;
                    self.top()?.stack.push(recv);
                    return Ok(());
                }
            }
        }
        let class = self.world.class_of(recv);
        Err(GemError::DoesNotUnderstand {
            class: self.world.sym_name(self.world.class_name_of(class)),
            selector: name,
        })
    }

    // ------------------------------------------------------ primitives

    fn primitive(&mut self, p: u32, recv: Oop, args: &[Oop], selector: SymbolId) -> GemResult<Oop> {
        use prims::*;
        // A primitive reached with fewer arguments than its selector implies
        // (possible only from unverified hand-built bytecode) sees nil and
        // fails with its ordinary type error instead of an index panic.
        let arg0 = args.first().copied().unwrap_or(Oop::NIL);
        let arg1 = args.get(1).copied().unwrap_or(Oop::NIL);
        Ok(match p {
            IDENTICAL => Oop::bool(recv == arg0),
            NOT_IDENTICAL => Oop::bool(recv != arg0),
            CLASS => Oop::class(self.world.class_of(recv)),
            IS_NIL => Oop::bool(recv.is_nil()),
            NOT_NIL => Oop::bool(!recv.is_nil()),
            PRINT_STRING => {
                let s = print_oop(self.world, recv, PrintDepth::default())?;
                self.world.new_string(&s)
            }
            EQUAL => Oop::bool(self.world.equals(recv, arg0)?),
            NOT_EQUAL => Oop::bool(!self.world.equals(recv, arg0)?),
            ERROR => {
                let msg = self.world.string_value(arg0).unwrap_or_else(|| format!("{:?}", arg0));
                return Err(GemError::RuntimeError(msg));
            }
            YOURSELF => recv,
            IS_KIND_OF => {
                let target = arg0.as_class().ok_or_else(|| GemError::TypeMismatch {
                    expected: "class",
                    got: format!("{:?}", arg0),
                })?;
                Oop::bool(self.world.is_kind_of(self.world.class_of(recv), target))
            }
            AT => self.prim_at(recv, arg0)?,
            AT_PUT => {
                let name = self.oop_to_elem_name(arg0)?;
                self.world.set_elem(recv, name, arg1)?;
                arg1
            }
            SIZE => Oop::int(self.world.obj_size(recv)? as i64),
            INCLUDES => {
                let mut found = false;
                for m in self.world.elements(recv)? {
                    if self.world.equals(m, arg0)? {
                        found = true;
                        break;
                    }
                }
                Oop::bool(found)
            }
            ELEMENTS | VALUES => {
                let vals = self.world.elements(recv)?;
                let k = self.world.kernel();
                let arr = self.world.new_object(k.array)?;
                for v in vals {
                    self.world.push_indexed(arr, v)?;
                }
                arr
            }
            NAMES | KEYS => {
                let names = self.world.element_names(recv)?;
                let k = self.world.kernel();
                let arr = self.world.new_object(k.array)?;
                for n in names {
                    let v = match n {
                        ElemName::Sym(s) => Oop::sym(s),
                        ElemName::Int(i) => Oop::int(i),
                        ElemName::Alias(_) => continue,
                    };
                    self.world.push_indexed(arr, v)?;
                }
                arr
            }
            ADD_NUM | SUB | MUL | DIV | MOD | IDIV => self.prim_arith(p, recv, arg0)?,
            LT | LE | GT | GE => {
                let ord = compare_values(self.world, recv, arg0)?.ok_or_else(|| {
                    GemError::TypeMismatch {
                        expected: "comparable values",
                        got: format!("{recv:?} vs {:?}", arg0),
                    }
                })?;
                Oop::bool(match p {
                    LT => ord == Ordering::Less,
                    LE => ord != Ordering::Greater,
                    GT => ord == Ordering::Greater,
                    _ => ord != Ordering::Less,
                })
            }
            NEGATED => match recv.kind() {
                OopKind::Int(i) => Oop::int(-i),
                OopKind::Float(f) => Oop::float(-f),
                _ => return Err(self.num_mismatch(recv)),
            },
            ABS => match recv.kind() {
                OopKind::Int(i) => Oop::int(i.abs()),
                OopKind::Float(f) => Oop::float(f.abs()),
                _ => return Err(self.num_mismatch(recv)),
            },
            MIN | MAX => {
                let ord = compare_values(self.world, recv, arg0)?
                    .ok_or_else(|| self.num_mismatch(recv))?;
                if (p == MIN) == (ord == Ordering::Less) {
                    recv
                } else {
                    arg0
                }
            }
            AS_FLOAT => Oop::float(recv.as_number().ok_or_else(|| self.num_mismatch(recv))?),
            AS_INTEGER => {
                let x = recv.as_number().ok_or_else(|| self.num_mismatch(recv))?;
                Oop::try_int(x.trunc() as i64).ok_or(GemError::IntOverflow)?
            }
            NOT => Oop::bool(!recv.as_bool().ok_or_else(|| GemError::TypeMismatch {
                expected: "Boolean",
                got: format!("{recv:?}"),
            })?),
            BOOL_AND | BOOL_OR => {
                let a = recv.as_bool().ok_or_else(|| GemError::TypeMismatch {
                    expected: "Boolean",
                    got: format!("{recv:?}"),
                })?;
                let b = arg0.as_bool().ok_or_else(|| GemError::TypeMismatch {
                    expected: "Boolean",
                    got: format!("{:?}", arg0),
                })?;
                Oop::bool(if p == BOOL_AND { a && b } else { a || b })
            }
            CONCAT => {
                let a = self.world.string_value(recv).ok_or_else(|| GemError::TypeMismatch {
                    expected: "string",
                    got: format!("{recv:?}"),
                })?;
                let b = self
                    .world
                    .string_value(arg0)
                    .map(Ok)
                    .unwrap_or_else(|| print_oop(self.world, arg0, PrintDepth::default()))?;
                self.world.new_string(&format!("{a}{b}"))
            }
            AS_SYMBOL => {
                let s = self.world.string_value(recv).ok_or_else(|| GemError::TypeMismatch {
                    expected: "string",
                    got: format!("{recv:?}"),
                })?;
                Oop::sym(self.world.intern(&s))
            }
            AS_STRING => match self.world.string_value(recv) {
                Some(s) => {
                    if recv.as_sym().is_some() {
                        self.world.new_string(&s)
                    } else {
                        recv
                    }
                }
                None => {
                    let s = print_oop(self.world, recv, PrintDepth::default())?;
                    self.world.new_string(&s)
                }
            },
            ADD_INDEXED => {
                self.world.push_indexed(recv, arg0)?;
                arg0
            }
            ADD_SET => {
                let mut present = false;
                for m in self.world.elements(recv)? {
                    if self.world.equals(m, arg0)? {
                        present = true;
                        break;
                    }
                }
                if !present {
                    self.world.add_aliased(recv, arg0)?;
                }
                arg0
            }
            ADD_BAG => {
                self.world.add_aliased(recv, arg0)?;
                arg0
            }
            REMOVE => {
                let names = self.world.element_names(recv)?;
                let mut removed = false;
                for n in names {
                    let v = self.world.get_elem(recv, n)?;
                    if self.world.equals(v, arg0)? {
                        self.world.set_elem(recv, n, Oop::NIL)?;
                        removed = true;
                        break;
                    }
                }
                if !removed {
                    return Err(GemError::NoSuchElement(self.describe_name(arg0)));
                }
                arg0
            }
            REMOVE_KEY => {
                let name = self.oop_to_elem_name(arg0)?;
                let old = self.world.get_elem(recv, name)?;
                if old.is_nil() {
                    return Err(GemError::NoSuchElement(self.describe_name(arg0)));
                }
                self.world.set_elem(recv, name, Oop::NIL)?;
                old
            }
            FIRST | LAST => {
                let vals = self.world.elements(recv)?;
                let v = if p == FIRST { vals.first() } else { vals.last() };
                *v.ok_or(GemError::IndexOutOfRange { index: 1, size: 0 })?
            }
            NEW => {
                let class = recv.as_class().ok_or_else(|| GemError::TypeMismatch {
                    expected: "class",
                    got: format!("{recv:?}"),
                })?;
                self.world.new_object(class)?
            }
            SUBCLASS => {
                let class = recv.as_class().ok_or_else(|| GemError::TypeMismatch {
                    expected: "class",
                    got: format!("{recv:?}"),
                })?;
                let name = self.name_arg(arg0)?;
                let mut instvars = Vec::new();
                for v in self.world.elements(arg1)? {
                    instvars.push(self.name_arg(v)?);
                }
                let sub = self.world.define_subclass(class, name, instvars)?;
                Oop::class(sub)
            }
            CLASS_NAME => {
                let class = recv.as_class().ok_or_else(|| GemError::TypeMismatch {
                    expected: "class",
                    got: format!("{recv:?}"),
                })?;
                let n = self.world.sym_name(self.world.class_name_of(class));
                self.world.new_string(&n)
            }
            COMPILE | COMPILE_CLASS_METHOD => {
                let class = recv.as_class().ok_or_else(|| GemError::TypeMismatch {
                    expected: "class",
                    got: format!("{recv:?}"),
                })?;
                let src = self.world.string_value(arg0).ok_or_else(|| GemError::TypeMismatch {
                    expected: "method source string",
                    got: "?".into(),
                })?;
                let m = compiler::compile_method(self.world, class, &src)?;
                // Install-time purity gate: once installed, any caller's
                // `select:` may be planned declaratively, which is only
                // sound when the fallback predicate block cannot write.
                // Blocks that merely invoke a parameter block are judged
                // at their own call sites via `invoking_params`.
                let mut ecache = effects::EffectCache::new();
                for (_, s) in effects::select_fallback_blocks(&*self.world, &mut ecache, &m) {
                    if !s.effect.is_read_only() {
                        return Err(GemError::ImpureSelectBlock {
                            selector: self.world.sym_name(m.selector),
                            effect: s.effect.as_str().into(),
                        });
                    }
                }
                let sel = m.selector;
                let id = self.world.add_method_code(m)?;
                self.world.install_method(
                    class,
                    sel,
                    MethodRef::Compiled(id),
                    p == COMPILE_CLASS_METHOD,
                );
                self.world.note_method_source(class, &src, p == COMPILE_CLASS_METHOD);
                Oop::sym(sel)
            }
            ADD_INSTVAR => {
                let class = recv.as_class().ok_or_else(|| GemError::TypeMismatch {
                    expected: "class",
                    got: format!("{recv:?}"),
                })?;
                let name = self.name_arg(arg0)?;
                self.world.add_instvar(class, name)?;
                recv
            }
            CHAR_VALUE => Oop::int(recv.as_char().map(|c| c as i64).ok_or_else(|| {
                GemError::TypeMismatch { expected: "character", got: format!("{recv:?}") }
            })?),
            AS_CHARACTER => {
                let i = recv.as_int().ok_or_else(|| self.num_mismatch(recv))?;
                let c = u32::try_from(i).ok().and_then(char::from_u32).ok_or_else(|| {
                    GemError::TypeMismatch { expected: "code point", got: i.to_string() }
                })?;
                Oop::char(c)
            }
            other => {
                return Err(GemError::RuntimeError(format!(
                    "unknown primitive {other} for #{}",
                    self.world.sym_name(selector)
                )))
            }
        })
    }

    fn prim_at(&mut self, recv: Oop, key: Oop) -> GemResult<Oop> {
        // Strings answer characters at integer indexes (1-based).
        if let Some(s) = self.world.string_value(recv) {
            if let Some(i) = key.as_int() {
                let chars: Vec<char> = s.chars().collect();
                if i < 1 || i as usize > chars.len() {
                    return Err(GemError::IndexOutOfRange { index: i, size: chars.len() });
                }
                return Ok(Oop::char(chars[i as usize - 1]));
            }
        }
        let name = self.oop_to_elem_name(key)?;
        self.world.get_elem(recv, name)
    }

    fn prim_arith(&mut self, p: u32, a: Oop, b: Oop) -> GemResult<Oop> {
        use prims::*;
        match (a.kind(), b.kind()) {
            (OopKind::Int(x), OopKind::Int(y)) => {
                let r = match p {
                    ADD_NUM => x.checked_add(y),
                    SUB => x.checked_sub(y),
                    MUL => x.checked_mul(y),
                    DIV => {
                        if y == 0 {
                            return Err(GemError::ZeroDivide);
                        }
                        if x % y == 0 {
                            x.checked_div(y)
                        } else {
                            return Ok(Oop::float(x as f64 / y as f64));
                        }
                    }
                    MOD => {
                        if y == 0 {
                            return Err(GemError::ZeroDivide);
                        }
                        Some(x.rem_euclid(y))
                    }
                    IDIV => {
                        if y == 0 {
                            return Err(GemError::ZeroDivide);
                        }
                        Some(x.div_euclid(y))
                    }
                    _ => return Err(corrupt("bad arithmetic primitive")),
                };
                let r = r.ok_or(GemError::IntOverflow)?;
                Oop::try_int(r).ok_or(GemError::IntOverflow)
            }
            _ => {
                let x = a.as_number().ok_or_else(|| self.num_mismatch(a))?;
                let y = b.as_number().ok_or_else(|| self.num_mismatch(b))?;
                match p {
                    ADD_NUM => Ok(Oop::float(x + y)),
                    SUB => Ok(Oop::float(x - y)),
                    MUL => Ok(Oop::float(x * y)),
                    DIV => {
                        if y == 0.0 {
                            Err(GemError::ZeroDivide)
                        } else {
                            Ok(Oop::float(x / y))
                        }
                    }
                    MOD | IDIV => Err(GemError::TypeMismatch {
                        expected: "integers for // and \\\\",
                        got: format!("{a:?}, {b:?}"),
                    }),
                    _ => Err(corrupt("bad arithmetic primitive")),
                }
            }
        }
    }

    fn num_mismatch(&self, v: Oop) -> GemError {
        GemError::TypeMismatch { expected: "number", got: format!("{v:?}") }
    }

    fn name_arg(&mut self, v: Oop) -> GemResult<SymbolId> {
        match v.as_sym() {
            Some(s) => Ok(s),
            None => {
                let s = self.world.string_value(v).ok_or_else(|| GemError::TypeMismatch {
                    expected: "name (string or symbol)",
                    got: format!("{v:?}"),
                })?;
                Ok(self.world.intern(&s))
            }
        }
    }
}
