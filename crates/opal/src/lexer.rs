//! The OPAL lexer: ST80 tokens plus `!` (path) and `@` (time).

use gemstone_object::{GemError, GemResult};
use std::fmt;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    /// `foo:` — one keyword-message part.
    Keyword(String),
    /// Binary selector such as `+`, `<=`, `,`, `~=`.
    BinSel(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `#foo`, `#foo:bar:`, `#+`.
    Sym(String),
    /// `$a`.
    Char(char),
    /// `:=`
    Assign,
    /// `^`
    Caret,
    /// `.`
    Period,
    /// `;`
    Semi,
    /// `|` used as temp-declaration delimiter or block-param separator; the
    /// parser disambiguates against the binary selector use.
    VBar,
    /// `:x` block parameter.
    BlockParam(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    /// `#(` literal array open.
    HashParen,
    /// `!` path separator (OPAL extension).
    Bang,
    /// `@` temporal qualifier (OPAL extension).
    At,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Keyword(s) => write!(f, "{s}:"),
            Tok::BinSel(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Sym(s) => write!(f, "#{s}"),
            Tok::Char(c) => write!(f, "${c}"),
            Tok::Assign => write!(f, ":="),
            Tok::Caret => write!(f, "^"),
            Tok::Period => write!(f, "."),
            Tok::Semi => write!(f, ";"),
            Tok::VBar => write!(f, "|"),
            Tok::BlockParam(s) => write!(f, ":{s}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::HashParen => write!(f, "#("),
            Tok::Bang => write!(f, "!"),
            Tok::At => write!(f, "@"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Characters that may form binary selectors. `!` and `@` are reserved for
/// paths and time; `|`, `^`, `;` have structural roles.
const BIN_CHARS: &str = "+-*/~<>=&,%?\\";

/// Tokenize OPAL source.
pub fn lex(src: &str) -> GemResult<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 0;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(GemError::ParseError { line, col, msg: format!($($arg)*) })
        };
    }

    let push = |kind: Tok, line: u32, col: u32, out: &mut Vec<Token>| {
        out.push(Token { kind, line, col });
    };

    while let Some(&c) = chars.peek() {
        let tok_line = line;
        let tok_col = col + 1;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 0;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '"' => {
                // comment
                chars.next();
                col += 1;
                loop {
                    match chars.next() {
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\n') => {
                            line += 1;
                            col = 0;
                        }
                        Some(_) => col += 1,
                        None => err!("unterminated comment"),
                    }
                }
            }
            '\'' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            col += 1;
                            // doubled quote = escaped quote
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                col += 1;
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some('\n') => {
                            line += 1;
                            col = 0;
                            s.push('\n');
                        }
                        Some(ch) => {
                            col += 1;
                            s.push(ch);
                        }
                        None => err!("unterminated string"),
                    }
                }
                push(Tok::Str(s), tok_line, tok_col, &mut out);
            }
            '$' => {
                chars.next();
                col += 1;
                match chars.next() {
                    Some(ch) => {
                        col += 1;
                        push(Tok::Char(ch), tok_line, tok_col, &mut out);
                    }
                    None => err!("character literal at end of input"),
                }
            }
            '#' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('(') => {
                        chars.next();
                        col += 1;
                        push(Tok::HashParen, tok_line, tok_col, &mut out);
                    }
                    Some('\'') => {
                        // #'quoted symbol'
                        chars.next();
                        col += 1;
                        let mut s = String::new();
                        loop {
                            match chars.next() {
                                Some('\'') => {
                                    col += 1;
                                    break;
                                }
                                Some(ch) => {
                                    col += 1;
                                    s.push(ch);
                                }
                                None => err!("unterminated symbol"),
                            }
                        }
                        push(Tok::Sym(s), tok_line, tok_col, &mut out);
                    }
                    Some(&ch) if ch.is_alphabetic() || ch == '_' => {
                        let mut s = String::new();
                        while let Some(&ch) = chars.peek() {
                            if ch.is_alphanumeric() || ch == '_' || ch == ':' {
                                s.push(ch);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                        push(Tok::Sym(s), tok_line, tok_col, &mut out);
                    }
                    Some(&ch) if BIN_CHARS.contains(ch) => {
                        let mut s = String::new();
                        while let Some(&ch) = chars.peek() {
                            if BIN_CHARS.contains(ch) {
                                s.push(ch);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                        push(Tok::Sym(s), tok_line, tok_col, &mut out);
                    }
                    _ => err!("bad symbol literal"),
                }
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_digit() {
                        s.push(ch);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                // Fraction only if a digit follows the dot (else it's a
                // statement period).
                let mut is_float = false;
                if chars.peek() == Some(&'.') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek().is_some_and(|c| c.is_ascii_digit()) {
                        is_float = true;
                        s.push('.');
                        chars.next();
                        col += 1;
                        while let Some(&ch) = chars.peek() {
                            if ch.is_ascii_digit() {
                                s.push(ch);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                    }
                }
                if chars.peek() == Some(&'e') || chars.peek() == Some(&'E') {
                    let mut ahead = chars.clone();
                    ahead.next();
                    let sign = matches!(ahead.peek(), Some('-') | Some('+'));
                    if sign {
                        ahead.next();
                    }
                    if ahead.peek().is_some_and(|c| c.is_ascii_digit()) {
                        is_float = true;
                        s.push('e');
                        chars.next();
                        col += 1;
                        if sign {
                            s.push(chars.next().unwrap());
                            col += 1;
                        }
                        while let Some(&ch) = chars.peek() {
                            if ch.is_ascii_digit() {
                                s.push(ch);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                    }
                }
                if is_float {
                    match s.parse::<f64>() {
                        Ok(x) => push(Tok::Float(x), tok_line, tok_col, &mut out),
                        Err(_) => err!("bad float literal {s}"),
                    }
                } else {
                    match s.parse::<i64>() {
                        Ok(i) => push(Tok::Int(i), tok_line, tok_col, &mut out),
                        Err(_) => err!("integer literal out of range: {s}"),
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                if chars.peek() == Some(&':') {
                    // keyword, unless it's `:=` (e.g. `x:=1` never happens:
                    // ident followed by ':' then '=' is assignment target).
                    let mut ahead = chars.clone();
                    ahead.next();
                    if ahead.peek() == Some(&'=') {
                        push(Tok::Ident(s), tok_line, tok_col, &mut out);
                    } else {
                        chars.next();
                        col += 1;
                        push(Tok::Keyword(s), tok_line, tok_col, &mut out);
                    }
                } else {
                    push(Tok::Ident(s), tok_line, tok_col, &mut out);
                }
            }
            ':' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        col += 1;
                        push(Tok::Assign, tok_line, tok_col, &mut out);
                    }
                    Some(&ch) if ch.is_alphabetic() || ch == '_' => {
                        let mut s = String::new();
                        while let Some(&ch) = chars.peek() {
                            if ch.is_alphanumeric() || ch == '_' {
                                s.push(ch);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                        push(Tok::BlockParam(s), tok_line, tok_col, &mut out);
                    }
                    _ => err!("stray ':'"),
                }
            }
            '^' => {
                chars.next();
                col += 1;
                push(Tok::Caret, tok_line, tok_col, &mut out);
            }
            '.' => {
                chars.next();
                col += 1;
                push(Tok::Period, tok_line, tok_col, &mut out);
            }
            ';' => {
                chars.next();
                col += 1;
                push(Tok::Semi, tok_line, tok_col, &mut out);
            }
            '(' => {
                chars.next();
                col += 1;
                push(Tok::LParen, tok_line, tok_col, &mut out);
            }
            ')' => {
                chars.next();
                col += 1;
                push(Tok::RParen, tok_line, tok_col, &mut out);
            }
            '[' => {
                chars.next();
                col += 1;
                push(Tok::LBracket, tok_line, tok_col, &mut out);
            }
            ']' => {
                chars.next();
                col += 1;
                push(Tok::RBracket, tok_line, tok_col, &mut out);
            }
            '!' => {
                chars.next();
                col += 1;
                push(Tok::Bang, tok_line, tok_col, &mut out);
            }
            '@' => {
                chars.next();
                col += 1;
                push(Tok::At, tok_line, tok_col, &mut out);
            }
            '|' => {
                chars.next();
                col += 1;
                // `||` is never a selector here; single `|` may be a binary
                // selector (Boolean or) or a declaration bar — parser decides.
                push(Tok::VBar, tok_line, tok_col, &mut out);
            }
            c if BIN_CHARS.contains(c) => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if BIN_CHARS.contains(ch) && s.len() < 2 {
                        s.push(ch);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push(Tok::BinSel(s), tok_line, tok_col, &mut out);
            }
            other => err!("unexpected character {other:?}"),
        }
    }
    out.push(Token { kind: Tok::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x := 3 + 4."),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(3),
                Tok::BinSel("+".into()),
                Tok::Int(4),
                Tok::Period,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keyword_messages() {
        assert_eq!(
            kinds("dict at: #name put: 'Ellen'"),
            vec![
                Tok::Ident("dict".into()),
                Tok::Keyword("at".into()),
                Tok::Sym("name".into()),
                Tok::Keyword("put".into()),
                Tok::Str("Ellen".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(kinds("3.25"), vec![Tok::Float(3.25), Tok::Eof]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        // A trailing period is a statement separator, not a fraction.
        assert_eq!(kinds("3."), vec![Tok::Int(3), Tok::Period, Tok::Eof]);
    }

    #[test]
    fn strings_with_escapes_and_comments() {
        assert_eq!(kinds("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert_eq!(kinds("\"note\" 5"), vec![Tok::Int(5), Tok::Eof]);
    }

    #[test]
    fn symbols() {
        assert_eq!(kinds("#foo"), vec![Tok::Sym("foo".into()), Tok::Eof]);
        assert_eq!(kinds("#at:put:"), vec![Tok::Sym("at:put:".into()), Tok::Eof]);
        assert_eq!(kinds("#+"), vec![Tok::Sym("+".into()), Tok::Eof]);
        assert_eq!(kinds("#'Acme Corp'"), vec![Tok::Sym("Acme Corp".into()), Tok::Eof]);
        assert_eq!(
            kinds("#(1 2)"),
            vec![Tok::HashParen, Tok::Int(1), Tok::Int(2), Tok::RParen, Tok::Eof]
        );
    }

    #[test]
    fn blocks_and_params() {
        assert_eq!(
            kinds("[:e | e]"),
            vec![
                Tok::LBracket,
                Tok::BlockParam("e".into()),
                Tok::VBar,
                Tok::Ident("e".into()),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn path_and_time_tokens() {
        assert_eq!(
            kinds("world ! 'Acme Corp' ! president @ 7 ! city"),
            vec![
                Tok::Ident("world".into()),
                Tok::Bang,
                Tok::Str("Acme Corp".into()),
                Tok::Bang,
                Tok::Ident("president".into()),
                Tok::At,
                Tok::Int(7),
                Tok::Bang,
                Tok::Ident("city".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn binary_selectors() {
        assert_eq!(
            kinds("a <= b"),
            vec![
                Tok::Ident("a".into()),
                Tok::BinSel("<=".into()),
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(kinds("a ~= b")[1], Tok::BinSel("~=".into()));
        assert_eq!(kinds("a , b")[1], Tok::BinSel(",".into()));
    }

    #[test]
    fn errors_have_positions() {
        match lex("x 'unterminated") {
            Err(GemError::ParseError { line, .. }) => assert_eq!(line, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn characters() {
        assert_eq!(kinds("$a $  "), vec![Tok::Char('a'), Tok::Char(' '), Tok::Eof]);
    }
}
