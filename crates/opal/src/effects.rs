//! Interprocedural effect analysis over verified OPAL bytecode.
//!
//! "Automating Fine Concurrency Control in Object-Oriented Databases"
//! (PAPERS.md) observes that static knowledge of method effects is what
//! lets an OODB shrink its conflict surface *before* execution. This module
//! computes, for any verified method, a conservative **effect summary**:
//! where on the lattice
//!
//! ```text
//! Pure  <  ReadOnly  <  WritesLocal  <  WritesGlobal  <  Unknown
//! ```
//!
//! the method's worst possible action sits, plus the sets of globals it may
//! read or write. The session uses `effect <= ReadOnly` to take the
//! lock-free read-only commit path without ever walking the workspace for
//! dirty objects; the calculus translator uses proven purity to gate
//! select-block pushdown.
//!
//! **Allocation counts as a write.** In this engine a freshly allocated
//! workspace object is born dirty (`HeapObject::is_dirty` includes
//! `is_new`), so any allocation forces the commit into the writing path.
//! The lattice therefore puts every allocating operation — string/array
//! literals, `new`, closure creation (`PushBlock` allocates a real
//! BlockClosure object), `printString`, `__elements`, select results — at
//! `WritesLocal` or above. "Statically read-only" means *reads without
//! allocation*, which is exactly the class of statements whose commit has
//! an empty delta set.
//!
//! The analysis is a tag-propagating abstract interpretation per body
//! (reusing the verifier's worklist/CFG discipline) joined across a
//! closed-world call graph: a send resolves to **every** installed method
//! bound to that selector (instance and class side, any class) plus the
//! primitive table, the does-not-understand element-access fallback, and
//! the `System` command table. Literal blocks are tracked precisely
//! (`Tag::Closure`), and higher-order methods carry an `invoking_params`
//! mask so `coll do: [:e | …]` joins the literal block's effect instead of
//! degrading to `Unknown`. Only a truly dynamic block invocation — sending
//! `value` to a value of unknown origin — produces `Unknown`.
//!
//! Summaries are cached per method table in an [`EffectCache`] and
//! invalidated wholesale at the `add_method_code` / `install_method`
//! choke points: installing code can add a target to any selector's
//! closed-world join, so every cached summary is suspect.

use crate::bytecode::{Bc, CompiledMethod, Literal};
use crate::world::{prims, OpalWorld};
use gemstone_object::{MethodId, MethodRef, SymbolId};
use std::collections::{BTreeSet, HashMap};

// ------------------------------------------------------------------ lattice

/// The effect lattice, ordered by severity; `join` is `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Effect {
    /// Temps, literals, arithmetic and control flow only: no shared state
    /// is read, nothing is allocated.
    #[default]
    Pure,
    /// May read instance variables, elements, globals or object sizes;
    /// allocates nothing. A transaction built purely from statements at or
    /// below this level commits with an empty delta set.
    ReadOnly,
    /// May mutate heap objects reachable from the session or allocate new
    /// ones (allocation dirties the workspace — see module docs).
    WritesLocal,
    /// May store globals or change schema (subclassing, compiling methods,
    /// adding instvars) or commit/abort/archive through `System`.
    WritesGlobal,
    /// Contains a dynamic block invocation the analysis cannot resolve;
    /// anything could happen.
    Unknown,
}

impl Effect {
    /// Least upper bound.
    pub fn join(self, other: Effect) -> Effect {
        self.max(other)
    }

    /// True for `Pure` and `ReadOnly`: proven not to write or allocate.
    pub fn is_read_only(self) -> bool {
        self <= Effect::ReadOnly
    }

    /// Stable display name, used in journal events and the REPL.
    pub fn as_str(self) -> &'static str {
        match self {
            Effect::Pure => "Pure",
            Effect::ReadOnly => "ReadOnly",
            Effect::WritesLocal => "WritesLocal",
            Effect::WritesGlobal => "WritesGlobal",
            Effect::Unknown => "Unknown",
        }
    }
}

impl std::fmt::Display for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-method (or per-body) effect summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EffectSummary {
    pub effect: Effect,
    /// Globals/class names this code may read (`PushGlobal`).
    pub globals_read: BTreeSet<SymbolId>,
    /// Globals this code may store (`StoreGlobal`).
    pub globals_written: BTreeSet<SymbolId>,
    /// Bit `i` set: parameter slot `i` may be invoked as a block
    /// (higher-order methods like `do:`). Call sites substitute the actual
    /// argument's effect; an unresolvable argument at an invoking position
    /// is what `Unknown` costs.
    pub invoking_params: u32,
}

impl EffectSummary {
    /// The lattice bottom: pure, reads nothing, invokes nothing.
    pub fn bottom() -> EffectSummary {
        EffectSummary::default()
    }

    /// In-place least upper bound with `other`.
    pub fn join_with(&mut self, other: &EffectSummary) {
        self.effect = self.effect.join(other.effect);
        self.globals_read.extend(other.globals_read.iter().copied());
        self.globals_written.extend(other.globals_written.iter().copied());
        self.invoking_params |= other.invoking_params;
    }

    fn join_effect(&mut self, e: Effect) {
        self.effect = self.effect.join(e);
    }
}

// ------------------------------------------------------------------- cache

/// Summary cache for one method table. Invalidation is wholesale: newly
/// installed code can extend any selector's closed-world join, so no
/// cached summary survives an install.
#[derive(Debug, Default)]
pub struct EffectCache {
    summaries: HashMap<u32, EffectSummary>,
    fresh: Vec<(MethodId, EffectSummary)>,
    invalidations: u64,
    computed: u64,
}

impl EffectCache {
    pub fn new() -> EffectCache {
        EffectCache::default()
    }

    /// Cached summary for an installed method, if still valid.
    pub fn get(&self, id: MethodId) -> Option<&EffectSummary> {
        self.summaries.get(&id.0)
    }

    /// Drop every cached summary (a method was installed or rebound).
    /// Returns true if anything was actually dropped.
    pub fn invalidate(&mut self) -> bool {
        if self.summaries.is_empty() {
            return false;
        }
        self.summaries.clear();
        self.invalidations += 1;
        true
    }

    /// Summaries computed since the last call, in computation order — the
    /// session drains these to journal one `EffectSummary` event apiece.
    pub fn take_fresh(&mut self) -> Vec<(MethodId, EffectSummary)> {
        std::mem::take(&mut self.fresh)
    }

    /// How many times [`invalidate`](Self::invalidate) dropped summaries.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total summaries computed over the cache's lifetime.
    pub fn computed(&self) -> u64 {
        self.computed
    }

    /// Currently cached summary count.
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    fn record(&mut self, id: MethodId, s: EffectSummary) {
        if self.summaries.insert(id.0, s.clone()).is_none() {
            self.computed += 1;
            self.fresh.push((id, s));
        }
    }
}

// -------------------------------------------------------------- public API

/// Summary for an installed method, computing (and caching) it if absent.
pub fn summarize<W: OpalWorld + ?Sized>(
    world: &W,
    cache: &mut EffectCache,
    id: MethodId,
) -> EffectSummary {
    if let Some(s) = cache.get(id) {
        return s.clone();
    }
    let m = world.method(id);
    let s = summarize_body(world, cache, &m);
    cache.record(id, s.clone());
    s
}

/// Summary for a method value that is not (or not yet) installed — doIt
/// bodies, freshly compiled methods. Callee summaries discovered along the
/// way are cached; the root's is not.
pub fn summarize_body<W: OpalWorld + ?Sized>(
    world: &W,
    cache: &mut EffectCache,
    m: &CompiledMethod,
) -> EffectSummary {
    summarize_bodies(world, cache, m).swap_remove(0)
}

/// Per-body summaries for a method value under the same interprocedural
/// fixpoint as [`summarize_body`]: index 0 is the main body, index `i + 1`
/// is block `i`. This is how install-time checks judge individual blocks
/// (e.g. `select:` fallback arguments) rather than the whole method.
pub fn summarize_bodies<W: OpalWorld + ?Sized>(
    world: &W,
    cache: &mut EffectCache,
    m: &CompiledMethod,
) -> Vec<EffectSummary> {
    let mut a = Analyzer { world, pending: HashMap::new(), order: Vec::new() };
    let mut cur = vec![EffectSummary::bottom(); m.blocks.len() + 1];
    // Optimistic fixpoint: every summary starts at bottom and rises
    // monotonically. The lattice has finite height (five effect levels,
    // global sets bounded by the literal pools of the discovered call
    // graph, a 32-bit mask), so this terminates.
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < a.order.len() {
            let mid = a.order[i];
            i += 1;
            let mm = a.world.method(MethodId(mid));
            let s = analyze_method(&mut a, cache, &mm);
            if a.pending.get(&mid) != Some(&s) {
                a.pending.insert(mid, s);
                changed = true;
            }
        }
        let s = analyze_bodies(&mut a, cache, m);
        if s != cur {
            cur = s;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    for (k, v) in a.pending.drain() {
        cache.record(MethodId(k), v);
    }
    cur
}

/// Block indices of `m` that are pushed as literal arguments to a
/// procedural `select:` send, paired with their proven body summaries.
/// Declarative selects compile to [`Bc::SelectQuery`] and never appear
/// here; what remains is exactly the set of blocks the kernel's
/// procedural `select:` will invoke per element, so these are the blocks
/// whose purity the calculus contract cares about.
pub fn select_fallback_blocks<W: OpalWorld + ?Sized>(
    world: &W,
    cache: &mut EffectCache,
    m: &CompiledMethod,
) -> Vec<(u16, EffectSummary)> {
    let mut found: Vec<u16> = Vec::new();
    for body in 0..=m.blocks.len() {
        let code = body_code(m, body);
        for pc in 1..code.len() {
            let Bc::Send { sel, argc: 1 } = code[pc] else { continue };
            let Some(Literal::Sym(s)) = m.literals.get(sel as usize) else { continue };
            if world.sym_name(*s) != "select:" {
                continue;
            }
            // The compiler emits the literal block immediately before the
            // send; a block reaching `select:` any other way is a dynamic
            // value the effect analysis already charges at the call site.
            if let Bc::PushBlock(b) = code[pc - 1] {
                if !found.contains(&b) {
                    found.push(b);
                }
            }
        }
    }
    if found.is_empty() {
        return Vec::new();
    }
    let bodies = summarize_bodies(world, cache, m);
    found.into_iter().filter_map(|b| bodies.get(b as usize + 1).map(|s| (b, s.clone()))).collect()
}

/// Summary for a method reference: primitives get their table entry,
/// compiled methods go through [`summarize`].
pub fn summarize_ref<W: OpalWorld + ?Sized>(
    world: &W,
    cache: &mut EffectCache,
    m: MethodRef,
) -> EffectSummary {
    match m {
        MethodRef::Primitive(p) => {
            EffectSummary { effect: prim_effect(p), ..EffectSummary::bottom() }
        }
        MethodRef::Compiled(id) => summarize(world, cache, id),
    }
}

/// Effect of a primitive, mirroring the interpreter's implementations.
/// Anything that calls `new_object`/`new_string`/`push_indexed`/
/// `add_aliased`/`set_elem` is at least `WritesLocal` (allocation dirties
/// the workspace); schema-changing primitives are `WritesGlobal`.
pub fn prim_effect(p: u32) -> Effect {
    use prims::*;
    match p {
        // Value-level operations: no shared reads, no allocation.
        // (`ERROR` raises, which aborts the statement — effect-free.)
        IDENTICAL | NOT_IDENTICAL | CLASS | IS_NIL | NOT_NIL | ERROR | YOURSELF | IS_KIND_OF
        | ADD_NUM | SUB | MUL | DIV | LT | LE | GT | GE | MOD | IDIV | NEGATED | ABS | MIN
        | MAX | AS_FLOAT | AS_INTEGER | NOT | BOOL_AND | BOOL_OR | CHAR_VALUE | AS_CHARACTER => {
            Effect::Pure
        }
        // Read object state, allocate nothing.
        EQUAL | NOT_EQUAL | AT | SIZE | INCLUDES | FIRST | LAST => Effect::ReadOnly,
        // Mutate heap objects and/or allocate (strings, arrays, instances).
        PRINT_STRING | AT_PUT | ELEMENTS | VALUES | NAMES | KEYS | CONCAT | AS_SYMBOL
        | AS_STRING | ADD_INDEXED | ADD_SET | ADD_BAG | REMOVE | REMOVE_KEY | NEW | CLASS_NAME => {
            Effect::WritesLocal
        }
        // Schema changes.
        SUBCLASS | COMPILE | COMPILE_CLASS_METHOD | ADD_INSTVAR => Effect::WritesGlobal,
        // An unknown primitive number errors at run time, but a future
        // primitive could do anything — stay conservative.
        _ => Effect::Unknown,
    }
}

/// Effect of a message to the `System` pseudo-object, by selector name
/// (system dispatch is purely name-based). `None` means System errors on
/// the selector, which is effect-free.
pub fn system_selector_effect(name: &str) -> Option<Effect> {
    match name {
        "safeTime" | "currentTime" => Some(Effect::ReadOnly),
        // `error:` raises; aborting a statement writes nothing.
        "error:" => Some(Effect::Pure),
        // The time dial is session state, but dialing allocates nothing
        // and writes nothing shared; flag it local so a dialed statement
        // never claims the static read-only commit path (reads at a
        // dialed time are deliberately not tracked for validation).
        "timeDial:" | "timeDialNow" => Some(Effect::WritesLocal),
        "commitTransaction"
        | "abortTransaction"
        | "archiveHistoryBefore:"
        | "createIndexOn:path:" => Some(Effect::WritesGlobal),
        _ => None,
    }
}

/// Block-invocation family: `value`, `value:`, … with their arities.
fn value_family_arity(name: &str) -> Option<usize> {
    match name {
        "value" => Some(0),
        "value:" => Some(1),
        "value:value:" => Some(2),
        "value:value:value:" => Some(3),
        _ => None,
    }
}

// ----------------------------------------------------------------- analysis

/// What the dataflow knows about a value on the stack or in a temp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    /// Anything — including a block closure or `System`.
    Blank,
    /// Definitely not a block closure and not `System` (nil, booleans,
    /// numbers, characters, symbols, string/array literals).
    Scalar,
    /// A closure over block `i` of the method under analysis.
    Closure(u16),
    /// The value of method parameter slot `i`, which no body ever stores
    /// to — invoking it makes the method higher-order.
    Param(u8),
    /// The `System` pseudo-object.
    SystemObj,
}

impl Tag {
    fn join(self, other: Tag) -> Tag {
        if self == other {
            self
        } else {
            Tag::Blank
        }
    }
}

/// Driver state shared across one fixpoint run.
struct Analyzer<'w, W: OpalWorld + ?Sized> {
    world: &'w W,
    /// Optimistic assumptions for methods discovered this run.
    pending: HashMap<u32, EffectSummary>,
    /// Discovery order; the fixpoint loop re-analyzes these until stable.
    order: Vec<u32>,
}

impl<'w, W: OpalWorld + ?Sized> Analyzer<'w, W> {
    /// Current assumption for a callee: cached result, in-flight
    /// assumption, or bottom (registering it for analysis).
    fn callee(&mut self, cache: &EffectCache, id: MethodId) -> EffectSummary {
        if let Some(s) = cache.get(id) {
            return s.clone();
        }
        if let Some(s) = self.pending.get(&id.0) {
            return s.clone();
        }
        self.pending.insert(id.0, EffectSummary::bottom());
        self.order.push(id.0);
        EffectSummary::bottom()
    }
}

fn body_code(m: &CompiledMethod, body: usize) -> &[Bc] {
    if body == 0 {
        &m.code
    } else {
        &m.blocks[body - 1].code
    }
}

fn body_frame(m: &CompiledMethod, body: usize) -> (usize, usize) {
    if body == 0 {
        (m.frame_size(), m.n_params as usize)
    } else {
        let b = &m.blocks[body - 1];
        (b.n_params as usize + b.n_temps as usize, b.n_params as usize)
    }
}

/// Parameter slots of the method that are never stored to by any body
/// (via `StoreTemp` in the main code, `StoreHome`, or — conservatively —
/// any `StoreOuter`). Only clean slots earn `Tag::Param`.
fn clean_params(m: &CompiledMethod) -> Vec<bool> {
    let n = m.n_params as usize;
    let mut clean = vec![true; n];
    let mut dirty = |i: u8| {
        if (i as usize) < n {
            clean[i as usize] = false;
        }
    };
    for body in 0..=m.blocks.len() {
        for bc in body_code(m, body) {
            match *bc {
                Bc::StoreTemp(i) if body == 0 => dirty(i),
                Bc::StoreHome(i) => dirty(i),
                Bc::StoreOuter { idx, .. } => dirty(idx),
                _ => {}
            }
        }
    }
    clean
}

/// Analyze one method value against the current callee assumptions:
/// iterate its bodies to a local fixpoint (a block may invoke another
/// block of the same method) and return the main body's summary.
fn analyze_method<W: OpalWorld + ?Sized>(
    a: &mut Analyzer<'_, W>,
    cache: &EffectCache,
    m: &CompiledMethod,
) -> EffectSummary {
    analyze_bodies(a, cache, m).swap_remove(0)
}

/// [`analyze_method`], keeping every body's summary (index `i + 1` is
/// block `i`).
fn analyze_bodies<W: OpalWorld + ?Sized>(
    a: &mut Analyzer<'_, W>,
    cache: &EffectCache,
    m: &CompiledMethod,
) -> Vec<EffectSummary> {
    let clean = clean_params(m);
    let nb = m.blocks.len() + 1;
    let mut bodies: Vec<EffectSummary> = vec![EffectSummary::bottom(); nb];
    loop {
        let mut changed = false;
        // Blocks first: the main body usually invokes them, so analyzing
        // in reverse converges in one pass for straight-line code.
        for b in (0..nb).rev() {
            let s = flow_body(a, cache, m, b, &bodies, &clean);
            if s != bodies[b] {
                bodies[b] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    bodies
}

/// Abstract state at a pc: operand-stack tags plus temp-slot tags. The
/// verifier proves merges carry equal depths; if hand-built bytecode
/// violates that here, the analysis gives up with `Unknown`.
#[derive(Clone, PartialEq, Eq)]
struct AbsState {
    stack: Vec<Tag>,
    temps: Vec<Tag>,
}

impl AbsState {
    /// Elementwise join; `None` if the shapes disagree (unverified code).
    fn join(&self, other: &AbsState) -> Option<AbsState> {
        if self.stack.len() != other.stack.len() || self.temps.len() != other.temps.len() {
            return None;
        }
        Some(AbsState {
            stack: self.stack.iter().zip(&other.stack).map(|(a, b)| a.join(*b)).collect(),
            temps: self.temps.iter().zip(&other.temps).map(|(a, b)| a.join(*b)).collect(),
        })
    }
}

/// The conservative answer for structurally bad (unverified) code.
fn give_up(out: &mut EffectSummary) -> EffectSummary {
    out.join_effect(Effect::Unknown);
    out.clone()
}

/// Worklist dataflow over one body, accumulating effects into the
/// returned summary. Effects are joined at every visit; since tags only
/// rise toward `Blank` and the effect contribution is monotone in the
/// tags, the accumulated join equals a final-state pass.
fn flow_body<W: OpalWorld + ?Sized>(
    a: &mut Analyzer<'_, W>,
    cache: &EffectCache,
    m: &CompiledMethod,
    body: usize,
    bodies: &[EffectSummary],
    clean: &[bool],
) -> EffectSummary {
    let code = body_code(m, body);
    let (frame, n_params) = body_frame(m, body);
    let len = code.len();
    let mut out = EffectSummary::bottom();

    let mut entry_temps = vec![Tag::Blank; frame];
    if body == 0 {
        for (i, slot) in entry_temps.iter_mut().enumerate().take(m.n_params as usize) {
            if clean.get(i).copied().unwrap_or(false) {
                *slot = Tag::Param(i as u8);
            }
        }
    }
    let _ = n_params;

    let mut states: Vec<Option<AbsState>> = vec![None; len + 1];
    states[0] = Some(AbsState { stack: Vec::new(), temps: entry_temps });
    let mut worklist: Vec<usize> = if len > 0 { vec![0] } else { Vec::new() };

    while let Some(pc) = worklist.pop() {
        let Some(mut st) = states[pc].clone() else { continue };
        let mut succs: Vec<usize> = Vec::with_capacity(2);
        macro_rules! pop {
            () => {
                match st.stack.pop() {
                    Some(t) => t,
                    None => return give_up(&mut out),
                }
            };
        }
        let lit = |i: u16| m.literals.get(i as usize);
        match code[pc] {
            Bc::PushLit(i) => {
                match lit(i) {
                    Some(
                        Literal::Int(_) | Literal::Float(_) | Literal::Sym(_) | Literal::Char(_),
                    ) => {
                        st.stack.push(Tag::Scalar);
                    }
                    Some(Literal::Str(_) | Literal::Array(_)) => {
                        // String/array literals allocate fresh workspace
                        // objects, which are born dirty.
                        out.join_effect(Effect::WritesLocal);
                        st.stack.push(Tag::Scalar);
                    }
                    _ => return give_up(&mut out),
                }
                succs.push(pc + 1);
            }
            Bc::PushNil | Bc::PushTrue | Bc::PushFalse => {
                st.stack.push(Tag::Scalar);
                succs.push(pc + 1);
            }
            Bc::PushSelf => {
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
            Bc::PushSystem => {
                st.stack.push(Tag::SystemObj);
                succs.push(pc + 1);
            }
            Bc::PushTemp(i) => {
                let Some(t) = st.temps.get(i as usize).copied() else {
                    return give_up(&mut out);
                };
                st.stack.push(t);
                succs.push(pc + 1);
            }
            Bc::StoreTemp(i) => {
                let t = pop!();
                let Some(slot) = st.temps.get_mut(i as usize) else {
                    return give_up(&mut out);
                };
                *slot = t;
                succs.push(pc + 1);
            }
            Bc::PushHome(i) => {
                // From a block, a clean method parameter keeps its tag;
                // everything else in the home frame is opaque here.
                let t = if (i as usize) < m.n_params as usize
                    && clean.get(i as usize).copied().unwrap_or(false)
                {
                    Tag::Param(i)
                } else {
                    Tag::Blank
                };
                st.stack.push(t);
                succs.push(pc + 1);
            }
            Bc::StoreHome(_) => {
                pop!();
                succs.push(pc + 1);
            }
            Bc::PushOuter { .. } => {
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
            Bc::StoreOuter { .. } => {
                pop!();
                succs.push(pc + 1);
            }
            Bc::PushInstVar(_) => {
                out.join_effect(Effect::ReadOnly);
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
            Bc::StoreInstVar(_) => {
                pop!();
                out.join_effect(Effect::WritesLocal);
                succs.push(pc + 1);
            }
            Bc::PushGlobal(i) => {
                let Some(Literal::Sym(s)) = lit(i) else { return give_up(&mut out) };
                out.globals_read.insert(*s);
                out.join_effect(Effect::ReadOnly);
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
            Bc::StoreGlobal(i) => {
                pop!();
                let Some(Literal::Sym(s)) = lit(i) else { return give_up(&mut out) };
                out.globals_written.insert(*s);
                out.join_effect(Effect::WritesGlobal);
                succs.push(pc + 1);
            }
            Bc::Pop => {
                pop!();
                succs.push(pc + 1);
            }
            Bc::Dup => {
                let Some(&t) = st.stack.last() else { return give_up(&mut out) };
                st.stack.push(t);
                succs.push(pc + 1);
            }
            Bc::Jump(off) => {
                let t = pc as i64 + 1 + off as i64;
                if !(0..=len as i64).contains(&t) {
                    return give_up(&mut out);
                }
                succs.push(t as usize);
            }
            Bc::JumpIfFalse(off) | Bc::JumpIfTrue(off) => {
                pop!();
                let t = pc as i64 + 1 + off as i64;
                if !(0..=len as i64).contains(&t) {
                    return give_up(&mut out);
                }
                succs.push(t as usize);
                succs.push(pc + 1);
            }
            Bc::PushBlock(i) => {
                if (i as usize) >= m.blocks.len() {
                    return give_up(&mut out);
                }
                // Creating a closure allocates a BlockClosure object.
                out.join_effect(Effect::WritesLocal);
                st.stack.push(Tag::Closure(i));
                succs.push(pc + 1);
            }
            Bc::PathStep { has_time } => {
                pop!();
                pop!();
                if has_time {
                    pop!();
                }
                out.join_effect(Effect::ReadOnly);
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
            Bc::PathStore => {
                let v = pop!();
                pop!();
                pop!();
                out.join_effect(Effect::WritesLocal);
                st.stack.push(v);
                succs.push(pc + 1);
            }
            Bc::ReturnTop => {
                pop!();
            }
            Bc::ReturnSelf => {}
            Bc::Send { sel, argc } => {
                let Some(Literal::Sym(s)) = lit(sel) else { return give_up(&mut out) };
                let s = *s;
                let n = argc as usize;
                if st.stack.len() < n + 1 {
                    return give_up(&mut out);
                }
                let args: Vec<Tag> = st.stack.split_off(st.stack.len() - n);
                let recv = pop!();
                send_effect(a, cache, s, n, recv, &args, bodies, &mut out);
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
            Bc::SelectQuery { argc, .. } => {
                let n = argc as usize;
                if st.stack.len() < n + 1 {
                    return give_up(&mut out);
                }
                st.stack.truncate(st.stack.len() - n);
                pop!();
                // Runs the calculus query (reads) and allocates the
                // result collection.
                out.join_effect(Effect::WritesLocal);
                st.stack.push(Tag::Blank);
                succs.push(pc + 1);
            }
        }

        for sc in succs {
            match &mut states[sc] {
                slot @ None => {
                    *slot = Some(st.clone());
                    if sc < len {
                        worklist.push(sc);
                    }
                }
                Some(old) => {
                    let Some(joined) = old.join(&st) else { return give_up(&mut out) };
                    if joined != *old {
                        *old = joined;
                        if sc < len {
                            worklist.push(sc);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Join the effect of one send site into `out`, resolving the receiver
/// tag as precisely as the closed world allows.
#[allow(clippy::too_many_arguments)]
fn send_effect<W: OpalWorld + ?Sized>(
    a: &mut Analyzer<'_, W>,
    cache: &EffectCache,
    sel: SymbolId,
    argc: usize,
    recv: Tag,
    args: &[Tag],
    bodies: &[EffectSummary],
    out: &mut EffectSummary,
) {
    let name = a.world.sym_name(sel);
    let vf = value_family_arity(&name);

    // Block invocation with a precisely known receiver.
    if let Some(n) = vf {
        match recv {
            Tag::Closure(b) => {
                if n == argc {
                    match bodies.get(b as usize + 1) {
                        Some(s) => out.join_with(s),
                        None => out.join_effect(Effect::Unknown),
                    }
                }
                // Arity mismatch raises "bad block arity": effect-free.
                return;
            }
            Tag::Param(p) if n == argc => {
                if (p as u32) < 32 {
                    out.invoking_params |= 1 << p;
                } else {
                    out.join_effect(Effect::Unknown);
                }
                return;
            }
            _ => {}
        }
    }

    match recv {
        Tag::SystemObj => {
            // System dispatch is name-based; unknown selectors error.
            if let Some(e) = system_selector_effect(&name) {
                out.join_effect(e);
            }
            return;
        }
        Tag::Blank | Tag::Param(_) => {
            if vf.is_some() {
                // A dynamic block invocation: the one true `Unknown`.
                out.join_effect(Effect::Unknown);
                return;
            }
            // The receiver could be `System`.
            if let Some(e) = system_selector_effect(&name) {
                out.join_effect(e);
            }
        }
        Tag::Scalar | Tag::Closure(_) => {}
    }

    // Closed-world join over every installed binding of the selector.
    for target in a.world.selector_targets(sel) {
        match target {
            MethodRef::Primitive(p) => out.join_effect(prim_effect(p)),
            MethodRef::Compiled(id) => {
                let cs = a.callee(cache, id);
                out.join_effect(cs.effect);
                out.globals_read.extend(cs.globals_read.iter().copied());
                out.globals_written.extend(cs.globals_written.iter().copied());
                // Substitute actual arguments at the callee's invoking
                // positions (this is what keeps `do:`/`inject:into:`
                // precise for literal-block arguments).
                let mut mask = cs.invoking_params;
                let mut q = 0usize;
                while mask != 0 {
                    if mask & 1 != 0 {
                        match args.get(q).copied().unwrap_or(Tag::Blank) {
                            Tag::Closure(b) => match bodies.get(b as usize + 1) {
                                Some(s) => out.join_with(s),
                                None => out.join_effect(Effect::Unknown),
                            },
                            Tag::Param(p) if (p as u32) < 32 => out.invoking_params |= 1 << p,
                            _ => out.join_effect(Effect::Unknown),
                        }
                    }
                    mask >>= 1;
                    q += 1;
                }
            }
        }
    }

    // Does-not-understand element-access fallback: reachable only when no
    // class in the receiver's chain binds the selector. Every chain ends
    // at Object, so a selector bound there forecloses the fallback.
    if a.world.lookup_method(a.world.kernel().object, sel).is_none() {
        if argc == 0 {
            out.join_effect(Effect::ReadOnly);
        } else if argc == 1 && name.ends_with(':') && !name[..name.len() - 1].contains(':') {
            out.join_effect(Effect::WritesLocal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler;
    use crate::world::{BasicWorld, OpalWorld};

    fn doit_effect(src: &str) -> (EffectSummary, BasicWorld, EffectCache) {
        let mut w = BasicWorld::new();
        let m = compiler::compile_doit(&mut w, src).expect("compiles");
        crate::verify::check(&m).expect("verifies");
        let mut cache = EffectCache::new();
        let s = summarize_body(&w, &mut cache, &m);
        (s, w, cache)
    }

    fn effect_of(src: &str) -> Effect {
        doit_effect(src).0.effect
    }

    #[test]
    fn lattice_orders_and_joins() {
        use Effect::*;
        assert!(Pure < ReadOnly && ReadOnly < WritesLocal);
        assert!(WritesLocal < WritesGlobal && WritesGlobal < Unknown);
        assert_eq!(Pure.join(WritesGlobal), WritesGlobal);
        assert_eq!(Unknown.join(Pure), Unknown);
        assert!(ReadOnly.is_read_only() && !WritesLocal.is_read_only());
        assert_eq!(WritesLocal.as_str(), "WritesLocal");
    }

    #[test]
    fn arithmetic_and_inlined_control_flow_are_pure() {
        assert_eq!(effect_of("3 + 4 * 2"), Effect::Pure);
        assert_eq!(effect_of("| x | x := 0. 1 to: 10 do: [:i | x := x + i]. x"), Effect::Pure);
        assert_eq!(effect_of("| n | n := 0. [n < 5] whileTrue: [n := n + 1]. n"), Effect::Pure);
        assert_eq!(effect_of("3 > 2 ifTrue: [1] ifFalse: [2]"), Effect::Pure);
        assert_eq!(effect_of("(1 < 2) & (3 < 4)"), Effect::Pure);
    }

    #[test]
    fn global_reads_are_read_only_and_recorded() {
        let (s, w, _) = doit_effect("Thing");
        assert_eq!(s.effect, Effect::ReadOnly);
        let sym = w.symbols.lookup("Thing").expect("interned");
        assert!(s.globals_read.contains(&sym));
        assert!(s.globals_written.is_empty());
    }

    #[test]
    fn global_stores_are_writes_global() {
        let (s, w, _) = doit_effect("Thing := 7");
        assert_eq!(s.effect, Effect::WritesGlobal);
        let sym = w.symbols.lookup("Thing").expect("interned");
        assert!(s.globals_written.contains(&sym));
    }

    #[test]
    fn allocation_is_a_local_write() {
        assert_eq!(effect_of("OrderedCollection new"), Effect::WritesLocal);
        assert_eq!(effect_of("'abc'"), Effect::WritesLocal);
        assert_eq!(effect_of("#(1 2 3)"), Effect::WritesLocal);
        // A literal block allocates a BlockClosure object even if never run.
        assert_eq!(effect_of("| b | b := [:x | x]. nil"), Effect::WritesLocal);
    }

    #[test]
    fn literal_block_invocation_stays_precise() {
        // The block is pure, so the whole statement is only the closure
        // allocation — never Unknown.
        assert_eq!(
            effect_of("| b | b := [:x :y | x + y]. b value: 3 value: 4"),
            Effect::WritesLocal
        );
        // An impure block raises the join.
        assert_eq!(effect_of("| b | b := [:x | G := x]. b value: 1"), Effect::WritesGlobal);
    }

    #[test]
    fn dynamic_block_invocation_is_unknown() {
        // The inner closure escapes through a send result: unresolvable.
        assert_eq!(
            effect_of("| make | make := [:n | [:m | n + m]]. (make value: 10) value: 5"),
            Effect::Unknown
        );
    }

    #[test]
    fn higher_order_kernel_methods_substitute_block_args() {
        // `do:` invokes its parameter; with a pure literal block the join
        // stays at the allocation level (collections + __elements), not
        // Unknown.
        let e = effect_of(
            "| c n | c := OrderedCollection new. c add: 1. n := 0. \
             c do: [:e | n := n + e]. n",
        );
        assert_eq!(e, Effect::WritesLocal);
        let e = effect_of(
            "| c | c := OrderedCollection new. c add: 1. \
             c inject: 0 into: [:a :e | a + e]",
        );
        assert_eq!(e, Effect::WritesLocal);
        // A global-writing block passed to do: surfaces at the call site.
        let e = effect_of("| c | c := OrderedCollection new. c do: [:e | G := e]. nil");
        assert_eq!(e, Effect::WritesGlobal);
    }

    #[test]
    fn kernel_do_is_summarized_higher_order() {
        let mut w = BasicWorld::new();
        let do_sel = w.intern("do:");
        let k = w.kernel();
        let mref = w.lookup_method(k.collection, do_sel).expect("do: installed");
        let mut cache = EffectCache::new();
        let s = summarize_ref(&w, &mut cache, mref);
        // do: reads __elements (allocates the snapshot array) and invokes
        // its first parameter.
        assert_eq!(s.effect, Effect::WritesLocal);
        assert_eq!(s.invoking_params, 1);
    }

    #[test]
    fn system_messages_use_the_selector_table() {
        assert_eq!(effect_of("System commitTransaction"), Effect::WritesGlobal);
        assert_eq!(effect_of("System safeTime"), Effect::ReadOnly);
        // Unknown System selectors error: effect-free.
        assert_eq!(effect_of("System noSuchCommand"), Effect::Pure);
    }

    #[test]
    fn system_flowing_through_a_variable_is_still_caught() {
        // The tag for x is joined to Blank? No — straight-line store keeps
        // SystemObj precise; either way the system join must fire.
        let e = effect_of("| x | x := System. x commitTransaction");
        assert_eq!(e, Effect::WritesGlobal);
    }

    #[test]
    fn path_and_dnu_effects() {
        // Unary dnu element-read fallback: at most a read.
        assert_eq!(effect_of("nil foo"), Effect::ReadOnly);
        // `name:` dnu fallback writes a declared instvar.
        assert_eq!(effect_of("nil foo: 1"), Effect::WritesLocal);
        // Path store mutates; path read (on an existing value) only reads.
        let (s, _, _) = doit_effect("| d | d := Dictionary new. d ! city := 'X'. d");
        assert_eq!(s.effect, Effect::WritesLocal);
    }

    #[test]
    fn cache_invalidation_drops_summaries() {
        let mut w = BasicWorld::new();
        let m = compiler::compile_doit(&mut w, "3 + 4").expect("compiles");
        let id = w.add_method_code(m).expect("installs");
        let mut cache = EffectCache::new();
        let s = summarize(&w, &mut cache, id);
        assert_eq!(s.effect, Effect::Pure);
        assert!(cache.get(id).is_some());
        let fresh = cache.take_fresh();
        assert!(fresh.iter().any(|(fid, fs)| *fid == id && fs.effect == Effect::Pure));
        assert!(cache.invalidate());
        assert!(cache.get(id).is_none());
        assert_eq!(cache.invalidations(), 1);
        // Invalidating an empty cache is not an invalidation event.
        assert!(!cache.invalidate());
        assert_eq!(cache.invalidations(), 1);
        // Re-summarizing recomputes and re-registers as fresh.
        let s2 = summarize(&w, &mut cache, id);
        assert_eq!(s2, s);
        assert_eq!(cache.take_fresh().len(), 1);
    }

    #[test]
    fn summaries_are_deterministic() {
        let src = "| c | c := OrderedCollection new. c add: 1. c do: [:e | G := e]. G";
        let (a, _, _) = doit_effect(src);
        let (b, _, _) = doit_effect(src);
        assert_eq!(a, b);
    }
}
