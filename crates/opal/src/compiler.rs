//! The OPAL compiler: AST → bytecode.
//!
//! Follows the ST80 compiler's shape — literal pool, inlined control-flow
//! selectors, block compilation — "but a large addition is needed \[to\]
//! translate calculus expressions into procedural form" (§6): a `select:`
//! whose argument block is recognizably a calculus predicate is compiled to
//! a [`Bc::SelectQuery`] carrying a [`QueryTemplate`], so the session can
//! plan it (directories, index scans) instead of running the block
//! procedurally. Unanalyzable blocks silently fall back to the procedural
//! `select:` of the kernel library — exactly the latitude §5.2 claims for
//! declarative syntax.
//!
//! The compiler also runs a lint pass over the source (unused temporaries,
//! shadowing, statements after `^`, impure `select:` blocks) and emits
//! definite-assignment-friendly code: every declared temporary is
//! nil-initialized at its declaration point, so [`crate::verify`]'s strict
//! use-before-store analysis accepts all compiler output.

use crate::ast::{Block, Expr, Lit, PathComponent, PathStep, Span, Stmt, StmtKind, VarDecl};
use crate::bytecode::{Bc, CompiledBlock, CompiledMethod, Literal, QueryTemplate};
use crate::parser;
use crate::verify::{self, Lint, LintKind, LintSite};
use crate::world::OpalWorld;
use gemstone_calculus as calc;
use gemstone_object::{ClassId, GemError, GemResult, Oop};

/// Compile a method definition for `class`, discarding lints.
pub fn compile_method<W: OpalWorld>(
    world: &mut W,
    class: ClassId,
    source: &str,
) -> GemResult<CompiledMethod> {
    compile_method_with_lints(world, class, source).map(|(m, _)| m)
}

/// Compile a method definition for `class`, returning the compile-time
/// lints (source-level) merged with the verifier's bytecode-level lints.
pub fn compile_method_with_lints<W: OpalWorld>(
    world: &mut W,
    class: ClassId,
    source: &str,
) -> GemResult<(CompiledMethod, Vec<Lint>)> {
    let ast = parser::parse_method(source)?;
    let (m, mut lints) = Compiler::new(world, Some(class)).compile(
        &ast.selector,
        &ast.params,
        &ast.temps,
        &ast.body,
        false,
    )?;
    lints.extend(verify::code_lints(&m));
    refine_select_lints(world, &m, &mut lints);
    Ok((m, lints))
}

/// Compile a "doIt": a block of OPAL source whose last statement's value is
/// the result (§6: "Communication with GemStone is done in blocks of OPAL
/// source code"). Lints are discarded.
pub fn compile_doit<W: OpalWorld>(world: &mut W, source: &str) -> GemResult<CompiledMethod> {
    compile_doit_with_lints(world, source).map(|(m, _)| m)
}

/// Compile a doIt, returning the lint diagnostics alongside.
pub fn compile_doit_with_lints<W: OpalWorld>(
    world: &mut W,
    source: &str,
) -> GemResult<(CompiledMethod, Vec<Lint>)> {
    let (temps, body) = parser::parse_doit(source)?;
    let (m, mut lints) = Compiler::new(world, None).compile("doIt", &[], &temps, &body, true)?;
    lints.extend(verify::code_lints(&m));
    refine_select_lints(world, &m, &mut lints);
    Ok((m, lints))
}

/// Reconcile the syntactic `select:` purity scan with the effect
/// analysis, which is the authority (satellite of the interprocedural
/// effect work): the source scan over-approximates (a mutating-looking
/// send may be hoisted into a once-evaluated capture of a declarative
/// select) and under-approximates (a user-defined selector can mutate
/// without appearing in the `MUTATING` table). The analysis judges the
/// blocks that actually survive as procedural fallbacks.
fn refine_select_lints<W: OpalWorld>(world: &W, m: &CompiledMethod, lints: &mut Vec<Lint>) {
    use crate::effects::{self, Effect, EffectCache};
    let scanned = lints.iter().any(|l| matches!(l.kind, LintKind::SelectBlockImpure { .. }));
    if !scanned && m.blocks.is_empty() {
        return;
    }
    let mut cache = EffectCache::new();
    let impure: Vec<(u16, Effect)> = effects::select_fallback_blocks(world, &mut cache, m)
        .into_iter()
        .filter(|(_, s)| !s.effect.is_read_only())
        .map(|(b, s)| (b, s.effect))
        .collect();
    if impure.is_empty() {
        // Every surviving fallback block is proven read-only: the scan's
        // hits were captures or dead patterns. Drop the diagnostics.
        lints.retain(|l| !matches!(l.kind, LintKind::SelectBlockImpure { .. }));
        return;
    }
    if scanned {
        let worst = impure.into_iter().fold(Effect::Pure, |e, (_, x)| e.join(x));
        for l in lints.iter_mut() {
            if let LintKind::SelectBlockImpure { effect, .. } = &mut l.kind {
                *effect = worst.as_str().to_string();
            }
        }
    } else {
        // Impurity only the analysis caught — a mutating user-defined
        // selector the syntactic table cannot know about.
        for (b, e) in impure {
            lints.push(Lint {
                kind: LintKind::SelectBlockImpure {
                    selector: String::new(),
                    effect: e.as_str().to_string(),
                },
                site: LintSite::Code(verify::CodeLoc { block: Some(b), pc: 0 }),
            });
        }
    }
}

/// One declared variable in some frame scope, with usage accounting for the
/// unused-temp lint. `live` goes false when an inlined block's region ends,
/// so its temporaries stop being visible (Smalltalk block scoping) even
/// though their frame slots persist.
struct ScopeVar {
    name: String,
    span: Span,
    param: bool,
    live: bool,
    reads: u32,
    writes: u32,
}

/// Where a variable reference resolved, relative to the code body being
/// compiled.
enum VarSlot {
    /// Slot in the current activation's own frame.
    Local(u8),
    /// Slot in the `up`-th lexically enclosing block activation.
    Outer { up: u8, idx: u8 },
    /// Slot in the home method's frame (from inside a block).
    Home(u8),
}

struct Compiler<'w, W: OpalWorld> {
    world: &'w mut W,
    class: Option<ClassId>,
    literals: Vec<Literal>,
    blocks: Vec<CompiledBlock>,
    /// Scope arena. `scopes[0]` is the method frame (params, temps, and
    /// slots contributed by inlined blocks); each compiled closure gets its
    /// own entry. Kept flat so usage marks survive closure compilation for
    /// the final unused-temp pass.
    scopes: Vec<Vec<ScopeVar>>,
    lints: Vec<Lint>,
    is_doit: bool,
}

/// Compilation context for one code body (method or block).
struct Ctx {
    code: Vec<Bc>,
    /// Lexical chain of (non-inlined) block scopes as arena indices,
    /// outermost first; empty while compiling method-level code. The last
    /// entry is the scope of the block currently being compiled.
    block_chain: Vec<usize>,
}

impl Ctx {
    fn method() -> Ctx {
        Ctx { code: Vec::new(), block_chain: Vec::new() }
    }

    fn block(chain: Vec<usize>) -> Ctx {
        Ctx { code: Vec::new(), block_chain: chain }
    }

    fn emit(&mut self, bc: Bc) {
        self.code.push(bc);
    }

    /// Emit a placeholder jump, returning its index for later patching.
    fn emit_jump(&mut self, make: fn(i32) -> Bc) -> usize {
        self.code.push(make(0));
        self.code.len() - 1
    }

    /// Patch the jump at `at` to land on the current end of code.
    fn patch_to_here(&mut self, at: usize) {
        let offset = (self.code.len() - at - 1) as i32;
        self.code[at] = match self.code[at] {
            Bc::Jump(_) => Bc::Jump(offset),
            Bc::JumpIfFalse(_) => Bc::JumpIfFalse(offset),
            Bc::JumpIfTrue(_) => Bc::JumpIfTrue(offset),
            other => other,
        };
    }
}

impl<'w, W: OpalWorld> Compiler<'w, W> {
    fn new(world: &'w mut W, class: Option<ClassId>) -> Compiler<'w, W> {
        Compiler {
            world,
            class,
            literals: Vec::new(),
            blocks: Vec::new(),
            scopes: vec![Vec::new()],
            lints: Vec::new(),
            is_doit: false,
        }
    }

    fn compile(
        mut self,
        selector: &str,
        params: &[VarDecl],
        temps: &[VarDecl],
        body: &[Stmt],
        is_doit: bool,
    ) -> GemResult<(CompiledMethod, Vec<Lint>)> {
        self.is_doit = is_doit;
        let n_params = params.len();
        let mut ctx = Ctx::method();
        for p in params {
            self.declare(&[], 0, p, true)?;
        }
        for t in temps {
            let slot = self.declare(&[], 0, t, false)?;
            // Nil-initialize so the verifier's definite-assignment pass can
            // prove every read is preceded by a store.
            ctx.emit(Bc::PushNil);
            ctx.emit(Bc::StoreTemp(slot));
        }
        self.compile_body(&mut ctx, body, is_doit)?;
        let selector = self.world.intern(selector);
        self.lint_unused();
        Ok((
            CompiledMethod {
                selector,
                n_params: u8::try_from(n_params)
                    .map_err(|_| GemError::CompileError("too many parameters".into()))?,
                n_temps: u8::try_from(self.scopes[0].len() - n_params)
                    .map_err(|_| GemError::CompileError("too many temporaries".into()))?,
                literals: self.literals,
                code: ctx.code,
                blocks: self.blocks,
            },
            self.lints,
        ))
    }

    // ------------------------------------------------------------ scopes

    /// Declare `v` into scope `target` (an arena index; `chain` is the
    /// visible block chain, used for the shadowing lint). Returns the slot.
    fn declare(
        &mut self,
        chain: &[usize],
        target: usize,
        v: &VarDecl,
        param: bool,
    ) -> GemResult<u8> {
        if !v.name.starts_with("__") {
            let visible = std::iter::once(0usize).chain(chain.iter().copied());
            let shadowed = visible
                .flat_map(|s| self.scopes[s].iter())
                .any(|sv| sv.live && sv.name == v.name && !sv.name.starts_with("__"));
            if shadowed {
                self.lints.push(Lint {
                    kind: LintKind::Shadowing { name: v.name.clone() },
                    site: LintSite::Source(v.span),
                });
            }
        }
        let scope = &mut self.scopes[target];
        let slot = u8::try_from(scope.len()).map_err(|_| {
            GemError::CompileError(if target == 0 {
                "too many temporaries".into()
            } else {
                "too many block temps".into()
            })
        })?;
        scope.push(ScopeVar {
            name: v.name.clone(),
            span: v.span,
            param,
            live: true,
            reads: 0,
            writes: 0,
        });
        Ok(slot)
    }

    /// Declare an inlined-block variable into the innermost frame being
    /// compiled (current block scope, or the method frame).
    fn push_inline_var(&mut self, ctx: &Ctx, v: &VarDecl, param: bool) -> GemResult<u8> {
        let target = ctx.block_chain.last().copied().unwrap_or(0);
        let chain = ctx.block_chain.clone();
        self.declare(&chain, target, v, param)
    }

    /// Resolve `name` against the visible scopes, marking usage. Innermost
    /// declaration wins; dead (inline-expired) variables are skipped.
    fn lookup(&mut self, ctx: &Ctx, name: &str, write: bool) -> Option<VarSlot> {
        for (up, &scope_idx) in ctx.block_chain.iter().rev().enumerate() {
            let scope = &mut self.scopes[scope_idx];
            if let Some(i) = scope.iter().rposition(|v| v.live && v.name == name) {
                mark(&mut scope[i], write);
                let idx = i as u8;
                return Some(if up == 0 {
                    VarSlot::Local(idx)
                } else {
                    VarSlot::Outer { up: up as u8, idx }
                });
            }
        }
        let in_block = !ctx.block_chain.is_empty();
        let scope = &mut self.scopes[0];
        if let Some(i) = scope.iter().rposition(|v| v.live && v.name == name) {
            mark(&mut scope[i], write);
            let idx = i as u8;
            return Some(if in_block { VarSlot::Home(idx) } else { VarSlot::Local(idx) });
        }
        None
    }

    /// End an inlined block's variable region: slots stay allocated, but
    /// the names stop resolving.
    fn kill_from(&mut self, target: usize, first: usize) {
        for v in &mut self.scopes[target][first..] {
            v.live = false;
        }
    }

    fn lint_unused(&mut self) {
        for scope in &self.scopes {
            for v in scope {
                if !v.param && v.reads == 0 && v.writes == 0 && !v.name.starts_with("__") {
                    self.lints.push(Lint {
                        kind: LintKind::UnusedTemp { name: v.name.clone() },
                        site: LintSite::Source(v.span),
                    });
                }
            }
        }
    }

    // ------------------------------------------------------- statements

    /// Compile statements. `value_of_last`: leave/return the last
    /// statement's value (doIt semantics); else return self (methods).
    fn compile_body(&mut self, ctx: &mut Ctx, body: &[Stmt], value_of_last: bool) -> GemResult<()> {
        if body.is_empty() {
            if value_of_last {
                ctx.emit(Bc::PushNil);
                ctx.emit(Bc::ReturnTop);
            } else {
                ctx.emit(Bc::ReturnSelf);
            }
            return Ok(());
        }
        for (i, stmt) in body.iter().enumerate() {
            let last = i == body.len() - 1;
            match &stmt.kind {
                StmtKind::Return(e) => {
                    self.compile_expr(ctx, e)?;
                    ctx.emit(Bc::ReturnTop);
                    if !last {
                        self.lint_after_return(&body[i + 1]);
                    }
                    return Ok(());
                }
                StmtKind::Expr(e) => {
                    self.compile_expr(ctx, e)?;
                    if last {
                        if value_of_last {
                            ctx.emit(Bc::ReturnTop);
                        } else {
                            ctx.emit(Bc::Pop);
                            ctx.emit(Bc::ReturnSelf);
                        }
                    } else {
                        ctx.emit(Bc::Pop);
                    }
                }
            }
        }
        Ok(())
    }

    /// Compile block statements leaving the last value on the stack
    /// (blocks return their last expression; empty blocks return nil).
    fn compile_block_body(&mut self, ctx: &mut Ctx, body: &[Stmt]) -> GemResult<()> {
        if body.is_empty() {
            ctx.emit(Bc::PushNil);
            return Ok(());
        }
        for (i, stmt) in body.iter().enumerate() {
            let last = i == body.len() - 1;
            match &stmt.kind {
                StmtKind::Return(e) => {
                    self.compile_expr(ctx, e)?;
                    ctx.emit(Bc::ReturnTop); // non-local return
                    if !last {
                        self.lint_after_return(&body[i + 1]);
                    }
                    return Ok(());
                }
                StmtKind::Expr(e) => {
                    self.compile_expr(ctx, e)?;
                    if !last {
                        ctx.emit(Bc::Pop);
                    }
                }
            }
        }
        Ok(())
    }

    /// Statements after `^` never run: lint (at the first dead statement)
    /// and stop compiling the rest.
    fn lint_after_return(&mut self, dead: &Stmt) {
        self.lints
            .push(Lint { kind: LintKind::UnreachableCode, site: LintSite::Source(dead.span) });
    }

    // -------------------------------------------------------- literals

    fn add_literal(&mut self, lit: Literal) -> u16 {
        if let Some(i) = self.literals.iter().position(|l| l == &lit) {
            return i as u16;
        }
        self.literals.push(lit);
        (self.literals.len() - 1) as u16
    }

    fn lit_of(&mut self, lit: &Lit) -> GemResult<Option<Literal>> {
        Ok(Some(match lit {
            Lit::Int(i) => Literal::Int(*i),
            Lit::Float(x) => Literal::Float(*x),
            Lit::Str(s) => Literal::Str(s.clone()),
            Lit::Sym(s) => Literal::Sym(self.world.intern(s)),
            Lit::Char(c) => Literal::Char(*c),
            Lit::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match self.lit_of(item)? {
                        Some(l) => out.push(l),
                        None => return Ok(None),
                    }
                }
                Literal::Array(out)
            }
            Lit::True | Lit::False | Lit::Nil => return Ok(None),
        }))
    }

    // ----------------------------------------------------- expressions

    fn compile_expr(&mut self, ctx: &mut Ctx, expr: &Expr) -> GemResult<()> {
        match expr {
            Expr::Lit(Lit::True) => ctx.emit(Bc::PushTrue),
            Expr::Lit(Lit::False) => ctx.emit(Bc::PushFalse),
            Expr::Lit(Lit::Nil) => ctx.emit(Bc::PushNil),
            Expr::Lit(lit) => {
                let l = self.lit_of(lit)?.expect("non-pseudo literal");
                let idx = self.add_literal(l);
                ctx.emit(Bc::PushLit(idx));
            }
            Expr::Ident(name) => self.compile_ident(ctx, name)?,
            Expr::Assign(name, value) => {
                self.compile_expr(ctx, value)?;
                ctx.emit(Bc::Dup);
                self.compile_store(ctx, name)?;
            }
            Expr::Send { recv, selector, args } => {
                self.compile_send(ctx, recv, selector, args)?;
            }
            Expr::Cascade { recv, sends } => {
                self.compile_expr(ctx, recv)?;
                for (i, (selector, args)) in sends.iter().enumerate() {
                    let last = i == sends.len() - 1;
                    if !last {
                        ctx.emit(Bc::Dup);
                    }
                    for a in args {
                        self.compile_expr(ctx, a)?;
                    }
                    let sel = self.world.intern(selector);
                    let sel = self.add_literal(Literal::Sym(sel));
                    ctx.emit(Bc::Send { sel, argc: args.len() as u8 });
                    if !last {
                        ctx.emit(Bc::Pop);
                    }
                }
            }
            Expr::Block(b) => {
                let idx = self.compile_closure(ctx, b)?;
                ctx.emit(Bc::PushBlock(idx));
            }
            Expr::Path { root, steps } => {
                self.compile_expr(ctx, root)?;
                for step in steps {
                    self.compile_path_step(ctx, step)?;
                }
            }
            Expr::PathAssign { root, steps, value } => {
                self.compile_expr(ctx, root)?;
                let (last, navigate) = steps.split_last().expect("path has steps");
                for step in navigate {
                    self.compile_path_step(ctx, step)?;
                }
                if last.at.is_some() {
                    return Err(GemError::CompileError(
                        "cannot assign into a past state (@ on assignment target)".into(),
                    ));
                }
                self.compile_path_component(ctx, &last.component)?;
                self.compile_expr(ctx, value)?;
                ctx.emit(Bc::PathStore);
            }
        }
        Ok(())
    }

    fn compile_path_step(&mut self, ctx: &mut Ctx, step: &PathStep) -> GemResult<()> {
        self.compile_path_component(ctx, &step.component)?;
        match &step.at {
            Some(t) => {
                self.compile_expr(ctx, t)?;
                ctx.emit(Bc::PathStep { has_time: true });
            }
            None => ctx.emit(Bc::PathStep { has_time: false }),
        }
        Ok(())
    }

    fn compile_path_component(&mut self, ctx: &mut Ctx, c: &PathComponent) -> GemResult<()> {
        match c {
            PathComponent::Name(n) | PathComponent::Label(n) => {
                let sym = self.world.intern(n);
                let idx = self.add_literal(Literal::Sym(sym));
                ctx.emit(Bc::PushLit(idx));
            }
            PathComponent::Index(i) => {
                let idx = self.add_literal(Literal::Int(*i));
                ctx.emit(Bc::PushLit(idx));
            }
            PathComponent::Dynamic(e) => self.compile_expr(ctx, e)?,
        }
        Ok(())
    }

    // ----------------------------------------------- variable handling

    fn compile_ident(&mut self, ctx: &mut Ctx, name: &str) -> GemResult<()> {
        match name {
            "self" => {
                ctx.emit(Bc::PushSelf);
                return Ok(());
            }
            "System" => {
                ctx.emit(Bc::PushSystem);
                return Ok(());
            }
            "super" => {
                return Err(GemError::CompileError("super sends are not supported".into()));
            }
            _ => {}
        }
        if let Some(slot) = self.lookup(ctx, name, false) {
            ctx.emit(match slot {
                VarSlot::Local(i) => Bc::PushTemp(i),
                VarSlot::Outer { up, idx } => Bc::PushOuter { up, idx },
                VarSlot::Home(i) => Bc::PushHome(i),
            });
            return Ok(());
        }
        let sym = self.world.intern(name);
        if let Some(class) = self.class {
            if self.world.declares_instvar(class, sym) {
                let idx = self.add_literal(Literal::Sym(sym));
                ctx.emit(Bc::PushInstVar(idx));
                return Ok(());
            }
        }
        let idx = self.add_literal(Literal::Sym(sym));
        ctx.emit(Bc::PushGlobal(idx));
        Ok(())
    }

    fn compile_store(&mut self, ctx: &mut Ctx, name: &str) -> GemResult<()> {
        if name == "self" || name == "System" {
            return Err(GemError::CompileError(format!("cannot assign to {name}")));
        }
        if let Some(slot) = self.lookup(ctx, name, true) {
            ctx.emit(match slot {
                VarSlot::Local(i) => Bc::StoreTemp(i),
                VarSlot::Outer { up, idx } => Bc::StoreOuter { up, idx },
                VarSlot::Home(i) => Bc::StoreHome(i),
            });
            return Ok(());
        }
        let sym = self.world.intern(name);
        if let Some(class) = self.class {
            if self.world.declares_instvar(class, sym) {
                let idx = self.add_literal(Literal::Sym(sym));
                ctx.emit(Bc::StoreInstVar(idx));
                return Ok(());
            }
        }
        if self.is_doit {
            // doIts may create globals by assignment (`World := …`).
            let idx = self.add_literal(Literal::Sym(sym));
            ctx.emit(Bc::StoreGlobal(idx));
            Ok(())
        } else {
            Err(GemError::CompileError(format!("undeclared variable {name}")))
        }
    }

    // ------------------------------------------------------------ sends

    fn compile_send(
        &mut self,
        ctx: &mut Ctx,
        recv: &Expr,
        selector: &str,
        args: &[Expr],
    ) -> GemResult<()> {
        if selector == "select:" {
            if let [Expr::Block(b)] = args {
                self.lint_select_block(b);
            }
        }
        // Inlined control flow (requires literal blocks, as in GemStone).
        match (selector, args) {
            ("ifTrue:", [Expr::Block(b)]) if b.params.is_empty() => {
                return self.compile_if(ctx, recv, Some(b), None);
            }
            ("ifFalse:", [Expr::Block(b)]) if b.params.is_empty() => {
                return self.compile_if(ctx, recv, None, Some(b));
            }
            ("ifTrue:ifFalse:", [Expr::Block(t), Expr::Block(f)])
                if t.params.is_empty() && f.params.is_empty() =>
            {
                return self.compile_if(ctx, recv, Some(t), Some(f));
            }
            ("ifFalse:ifTrue:", [Expr::Block(f), Expr::Block(t)])
                if t.params.is_empty() && f.params.is_empty() =>
            {
                return self.compile_if(ctx, recv, Some(t), Some(f));
            }
            ("and:", [Expr::Block(b)]) if b.params.is_empty() => {
                return self.compile_and_or(ctx, recv, b, true);
            }
            ("or:", [Expr::Block(b)]) if b.params.is_empty() => {
                return self.compile_and_or(ctx, recv, b, false);
            }
            ("whileTrue:", [Expr::Block(body)]) if body.params.is_empty() => {
                if let Expr::Block(cond) = recv {
                    return self.compile_while(ctx, cond, body, true);
                }
            }
            ("whileFalse:", [Expr::Block(body)]) if body.params.is_empty() => {
                if let Expr::Block(cond) = recv {
                    return self.compile_while(ctx, cond, body, false);
                }
            }
            ("timesRepeat:", [Expr::Block(body)]) if body.params.is_empty() => {
                // n timesRepeat: [..] ≡ 1 to: n do: [:i# | ..]
                let counter = Block {
                    params: vec![VarDecl::new("__i", Span::default())],
                    temps: body.temps.clone(),
                    body: body.body.clone(),
                    span: body.span,
                };
                return self.compile_to_do(ctx, &Expr::Lit(Lit::Int(1)), recv, &counter);
            }
            ("to:do:", [end, Expr::Block(b)]) if b.params.len() == 1 => {
                return self.compile_to_do(ctx, recv, end, b);
            }
            ("select:", [Expr::Block(b)]) if b.params.len() == 1 && b.temps.is_empty() => {
                if let Some(()) = self.try_compile_select(ctx, recv, b)? {
                    return Ok(());
                }
            }
            _ => {}
        }
        // Plain send.
        self.compile_expr(ctx, recv)?;
        for a in args {
            self.compile_expr(ctx, a)?;
        }
        let sel = self.world.intern(selector);
        let sel = self.add_literal(Literal::Sym(sel));
        ctx.emit(Bc::Send { sel, argc: args.len() as u8 });
        Ok(())
    }

    /// Inline an argument block's statements, leaving its value on the
    /// stack. Block temps get fresh slots in the enclosing frame,
    /// nil-initialized at their declaration point and retired (no longer
    /// visible) when the block's region ends.
    fn inline_block(&mut self, ctx: &mut Ctx, b: &Block) -> GemResult<()> {
        let target = ctx.block_chain.last().copied().unwrap_or(0);
        let first = self.scopes[target].len();
        for t in &b.temps {
            let slot = self.push_inline_var(ctx, t, false)?;
            ctx.emit(Bc::PushNil);
            ctx.emit(Bc::StoreTemp(slot));
        }
        self.compile_block_body(ctx, &b.body)?;
        self.kill_from(target, first);
        Ok(())
    }

    fn compile_if(
        &mut self,
        ctx: &mut Ctx,
        cond: &Expr,
        then_b: Option<&Block>,
        else_b: Option<&Block>,
    ) -> GemResult<()> {
        self.compile_expr(ctx, cond)?;
        let jf = ctx.emit_jump(Bc::JumpIfFalse);
        match then_b {
            Some(b) => self.inline_block(ctx, b)?,
            None => ctx.emit(Bc::PushNil),
        }
        let jend = ctx.emit_jump(Bc::Jump);
        ctx.patch_to_here(jf);
        match else_b {
            Some(b) => self.inline_block(ctx, b)?,
            None => ctx.emit(Bc::PushNil),
        }
        ctx.patch_to_here(jend);
        Ok(())
    }

    fn compile_and_or(
        &mut self,
        ctx: &mut Ctx,
        recv: &Expr,
        b: &Block,
        is_and: bool,
    ) -> GemResult<()> {
        self.compile_expr(ctx, recv)?;
        if is_and {
            let jf = ctx.emit_jump(Bc::JumpIfFalse);
            self.inline_block(ctx, b)?;
            let jend = ctx.emit_jump(Bc::Jump);
            ctx.patch_to_here(jf);
            ctx.emit(Bc::PushFalse);
            ctx.patch_to_here(jend);
        } else {
            let jt = ctx.emit_jump(Bc::JumpIfTrue);
            self.inline_block(ctx, b)?;
            let jend = ctx.emit_jump(Bc::Jump);
            ctx.patch_to_here(jt);
            ctx.emit(Bc::PushTrue);
            ctx.patch_to_here(jend);
        }
        Ok(())
    }

    fn compile_while(
        &mut self,
        ctx: &mut Ctx,
        cond: &Block,
        body: &Block,
        until_false: bool,
    ) -> GemResult<()> {
        let loop_start = ctx.code.len();
        self.inline_block(ctx, cond)?;
        let jexit = ctx.emit_jump(if until_false { Bc::JumpIfFalse } else { Bc::JumpIfTrue });
        self.inline_block(ctx, body)?;
        ctx.emit(Bc::Pop);
        let back = -((ctx.code.len() + 1 - loop_start) as i32);
        ctx.emit(Bc::Jump(back));
        ctx.patch_to_here(jexit);
        ctx.emit(Bc::PushNil);
        Ok(())
    }

    fn compile_to_do(
        &mut self,
        ctx: &mut Ctx,
        start: &Expr,
        end: &Expr,
        b: &Block,
    ) -> GemResult<()> {
        let target = ctx.block_chain.last().copied().unwrap_or(0);
        let first = self.scopes[target].len();
        // The loop variable and limit are stored before the loop head, so
        // they need no nil-initialization.
        let ivar = self.push_inline_var(ctx, &b.params[0], true)?;
        let limit = self.push_inline_var(ctx, &VarDecl::new("__limit", b.span), false)?;
        type SlotOp = fn(u8) -> Bc;
        let (push, store): (SlotOp, SlotOp) = (Bc::PushTemp, Bc::StoreTemp);
        self.compile_expr(ctx, start)?;
        ctx.emit(store(ivar));
        self.compile_expr(ctx, end)?;
        ctx.emit(store(limit));
        let loop_start = ctx.code.len();
        ctx.emit(push(ivar));
        ctx.emit(push(limit));
        let le = self.world.intern("<=");
        let le = self.add_literal(Literal::Sym(le));
        ctx.emit(Bc::Send { sel: le, argc: 1 });
        let jexit = ctx.emit_jump(Bc::JumpIfFalse);
        // Body temps re-initialize to nil on every iteration, keeping the
        // definite-assignment analysis exact across the back edge.
        for t in &b.temps {
            let slot = self.push_inline_var(ctx, t, false)?;
            ctx.emit(Bc::PushNil);
            ctx.emit(store(slot));
        }
        self.compile_block_body(ctx, &b.body)?;
        ctx.emit(Bc::Pop);
        ctx.emit(push(ivar));
        let one = self.add_literal(Literal::Int(1));
        ctx.emit(Bc::PushLit(one));
        let plus = self.world.intern("+");
        let plus = self.add_literal(Literal::Sym(plus));
        ctx.emit(Bc::Send { sel: plus, argc: 1 });
        ctx.emit(store(ivar));
        let back = -((ctx.code.len() + 1 - loop_start) as i32);
        ctx.emit(Bc::Jump(back));
        ctx.patch_to_here(jexit);
        ctx.emit(Bc::PushNil);
        self.kill_from(target, first);
        Ok(())
    }

    // ----------------------------------------------------------- blocks

    fn compile_closure(&mut self, ctx: &Ctx, b: &Block) -> GemResult<u16> {
        let scope_idx = self.scopes.len();
        self.scopes.push(Vec::new());
        let mut chain = ctx.block_chain.clone();
        chain.push(scope_idx);
        for p in &b.params {
            self.declare(&chain, scope_idx, p, true)?;
        }
        let mut bctx = Ctx::block(chain);
        for t in &b.temps {
            let slot = self.declare(&bctx.block_chain, scope_idx, t, false)?;
            bctx.emit(Bc::PushNil);
            bctx.emit(Bc::StoreTemp(slot));
        }
        self.compile_block_body(&mut bctx, &b.body)?;
        let n_params = u8::try_from(b.params.len())
            .map_err(|_| GemError::CompileError("too many block parameters".into()))?;
        let n_temps = u8::try_from(self.scopes[scope_idx].len() - b.params.len())
            .map_err(|_| GemError::CompileError("too many block temps".into()))?;
        self.blocks.push(CompiledBlock { n_params, n_temps, code: bctx.code });
        Ok((self.blocks.len() - 1) as u16)
    }

    // -------------------------------------- declarative select: blocks

    /// Lint a `select:` argument block for mutating sends, whether or not
    /// it later compiles declaratively.
    fn lint_select_block(&mut self, b: &Block) {
        let mut found: Vec<String> = Vec::new();
        for stmt in &b.body {
            match &stmt.kind {
                StmtKind::Expr(e) | StmtKind::Return(e) => scan_impure(e, &mut found),
            }
        }
        for selector in found {
            self.lints.push(Lint {
                // `effect` is filled in (or the lint dropped) by
                // `refine_select_lints` once the effect analysis has
                // judged the compiled blocks.
                kind: LintKind::SelectBlockImpure { selector, effect: String::new() },
                site: LintSite::Source(b.span),
            });
        }
    }

    /// Try to compile `recv select: [:e | pred]` declaratively. Returns
    /// `Some(())` on success (code emitted), `None` to fall back.
    fn try_compile_select(
        &mut self,
        ctx: &mut Ctx,
        recv: &Expr,
        b: &Block,
    ) -> GemResult<Option<()>> {
        // The block body must be a single expression.
        let [stmt] = &b.body[..] else { return Ok(None) };
        let StmtKind::Expr(body) = &stmt.kind else { return Ok(None) };
        let mut captures: Vec<Expr> = Vec::new();
        let Some(pred) = self.analyze_pred(body, &b.params[0].name, &mut captures) else {
            return Ok(None);
        };
        if captures.len() > 200 {
            return Ok(None);
        }
        let query = calc::Query {
            result: vec![(self.world.intern("each"), calc::Term::Var(calc::VarId(0)))],
            ranges: vec![calc::Range {
                var: calc::VarId(0),
                // Placeholder: the session substitutes the receiver.
                domain: calc::Term::Const(Oop::NIL),
            }],
            pred,
        };
        let template = QueryTemplate { query, n_captured: captures.len() as u16 };
        debug_assert!(template.validate().is_ok(), "compiler built an invalid query template");
        let lit = self.add_literal(Literal::Query(template));
        self.compile_expr(ctx, recv)?;
        let argc = captures.len() as u8;
        for c in &captures {
            self.compile_expr(ctx, c)?;
        }
        ctx.emit(Bc::SelectQuery { lit, argc });
        Ok(Some(()))
    }

    /// Captured slots start after the single range variable.
    const CAPTURE_BASE: u16 = 1;

    fn capture(&mut self, captures: &mut Vec<Expr>, e: &Expr) -> calc::Term {
        if let Some(i) = captures.iter().position(|c| c == e) {
            return calc::Term::Var(calc::VarId(Self::CAPTURE_BASE + i as u16));
        }
        captures.push(e.clone());
        calc::Term::Var(calc::VarId(Self::CAPTURE_BASE + captures.len() as u16 - 1))
    }

    fn analyze_pred(
        &mut self,
        e: &Expr,
        param: &str,
        captures: &mut Vec<Expr>,
    ) -> Option<calc::Pred> {
        match e {
            Expr::Send { recv, selector, args } => match (selector.as_str(), &args[..]) {
                ("<", [a]) => self.cmp(recv, calc::CmpOp::Lt, a, param, captures),
                ("<=", [a]) => self.cmp(recv, calc::CmpOp::Le, a, param, captures),
                (">", [a]) => self.cmp(recv, calc::CmpOp::Gt, a, param, captures),
                (">=", [a]) => self.cmp(recv, calc::CmpOp::Ge, a, param, captures),
                ("=", [a]) => self.cmp(recv, calc::CmpOp::Eq, a, param, captures),
                ("~=", [a]) => self.cmp(recv, calc::CmpOp::Ne, a, param, captures),
                ("&", [a]) => Some(calc::Pred::And(
                    Box::new(self.analyze_pred(recv, param, captures)?),
                    Box::new(self.analyze_pred(a, param, captures)?),
                )),
                ("|", [a]) => Some(calc::Pred::Or(
                    Box::new(self.analyze_pred(recv, param, captures)?),
                    Box::new(self.analyze_pred(a, param, captures)?),
                )),
                ("and:", [Expr::Block(b)]) if b.params.is_empty() && b.temps.is_empty() => {
                    let [stmt] = &b.body[..] else { return None };
                    let StmtKind::Expr(inner) = &stmt.kind else { return None };
                    Some(calc::Pred::And(
                        Box::new(self.analyze_pred(recv, param, captures)?),
                        Box::new(self.analyze_pred(inner, param, captures)?),
                    ))
                }
                ("or:", [Expr::Block(b)]) if b.params.is_empty() && b.temps.is_empty() => {
                    let [stmt] = &b.body[..] else { return None };
                    let StmtKind::Expr(inner) = &stmt.kind else { return None };
                    Some(calc::Pred::Or(
                        Box::new(self.analyze_pred(recv, param, captures)?),
                        Box::new(self.analyze_pred(inner, param, captures)?),
                    ))
                }
                ("not", []) => {
                    Some(calc::Pred::Not(Box::new(self.analyze_pred(recv, param, captures)?)))
                }
                ("includes:", [a]) => {
                    let set = self.analyze_term(recv, param, captures)?;
                    let val = self.analyze_term(a, param, captures)?;
                    Some(calc::Pred::In(val, set))
                }
                ("includesAll:", [a]) => {
                    let sup = self.analyze_term(recv, param, captures)?;
                    let sub = self.analyze_term(a, param, captures)?;
                    Some(calc::Pred::Subset(sub, sup))
                }
                ("between:and:", [lo, hi]) => {
                    let t = self.analyze_term(recv, param, captures)?;
                    let lo = self.analyze_term(lo, param, captures)?;
                    let hi = self.analyze_term(hi, param, captures)?;
                    Some(calc::Pred::And(
                        Box::new(calc::Pred::Cmp(t.clone(), calc::CmpOp::Ge, lo)),
                        Box::new(calc::Pred::Cmp(t, calc::CmpOp::Le, hi)),
                    ))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn cmp(
        &mut self,
        a: &Expr,
        op: calc::CmpOp,
        b: &Expr,
        param: &str,
        captures: &mut Vec<Expr>,
    ) -> Option<calc::Pred> {
        Some(calc::Pred::Cmp(
            self.analyze_term(a, param, captures)?,
            op,
            self.analyze_term(b, param, captures)?,
        ))
    }

    /// A term mentioning the block parameter becomes a path; anything not
    /// mentioning it is captured and evaluated once outside the query.
    fn analyze_term(
        &mut self,
        e: &Expr,
        param: &str,
        captures: &mut Vec<Expr>,
    ) -> Option<calc::Term> {
        if !mentions(e, param) {
            return Some(match e {
                Expr::Lit(Lit::Int(i)) => calc::Term::Const(Oop::int(*i)),
                Expr::Lit(Lit::Float(x)) => calc::Term::Const(Oop::float(*x)),
                Expr::Lit(Lit::Sym(s)) => calc::Term::Const(Oop::sym(self.world.intern(s))),
                Expr::Lit(Lit::Char(c)) => calc::Term::Const(Oop::char(*c)),
                Expr::Lit(Lit::True) => calc::Term::Const(Oop::TRUE),
                Expr::Lit(Lit::False) => calc::Term::Const(Oop::FALSE),
                Expr::Lit(Lit::Nil) => calc::Term::Const(Oop::NIL),
                other => self.capture(captures, other),
            });
        }
        match e {
            Expr::Ident(n) if n == param => Some(calc::Term::Var(calc::VarId(0))),
            // Unary-send chains on the parameter are paths: `e salary` —
            // but only when no class defines the selector as a method, so
            // real sends (`printString`) keep their semantics procedurally.
            Expr::Send { recv, selector, args } if args.is_empty() => {
                let sym = self.world.intern(selector);
                if self.world.selector_defined_anywhere(sym) {
                    return None;
                }
                let base = self.analyze_term(recv, param, captures)?;
                let name = gemstone_object::ElemName::Sym(sym);
                match base {
                    calc::Term::Var(v) if v.0 == 0 => Some(calc::Term::Path(v, vec![name])),
                    calc::Term::Path(v, mut path) if v.0 == 0 => {
                        path.push(name);
                        Some(calc::Term::Path(v, path))
                    }
                    _ => None,
                }
            }
            // `e at: #salary` is also a path.
            Expr::Send { recv, selector, args } if selector == "at:" && args.len() == 1 => {
                let base = self.analyze_term(recv, param, captures)?;
                let name = match &args[0] {
                    Expr::Lit(Lit::Sym(s)) | Expr::Lit(Lit::Str(s)) => {
                        gemstone_object::ElemName::Sym(self.world.intern(s))
                    }
                    Expr::Lit(Lit::Int(i)) => gemstone_object::ElemName::Int(*i),
                    _ => return None,
                };
                match base {
                    calc::Term::Var(v) if v.0 == 0 => Some(calc::Term::Path(v, vec![name])),
                    calc::Term::Path(v, mut path) if v.0 == 0 => {
                        path.push(name);
                        Some(calc::Term::Path(v, path))
                    }
                    _ => None,
                }
            }
            // Paths on the parameter: `e ! salary`.
            Expr::Path { root, steps } => {
                let base = self.analyze_term(root, param, captures)?;
                let calc::Term::Var(v) = base else { return None };
                if v.0 != 0 {
                    return None;
                }
                let mut path = Vec::with_capacity(steps.len());
                for s in steps {
                    if s.at.is_some() {
                        return None; // temporal inside select: falls back
                    }
                    match &s.component {
                        PathComponent::Name(n) | PathComponent::Label(n) => {
                            path.push(gemstone_object::ElemName::Sym(self.world.intern(n)));
                        }
                        PathComponent::Index(i) => {
                            path.push(gemstone_object::ElemName::Int(*i));
                        }
                        PathComponent::Dynamic(_) => return None,
                    }
                }
                Some(calc::Term::Path(v, path))
            }
            Expr::Send { recv, selector, args } if args.len() == 1 => {
                let a = self.analyze_term(recv, param, captures)?;
                let b = self.analyze_term(&args[0], param, captures)?;
                let (a, b) = (Box::new(a), Box::new(b));
                match selector.as_str() {
                    "*" => Some(calc::Term::Mul(a, b)),
                    "+" => Some(calc::Term::Add(a, b)),
                    "-" => Some(calc::Term::Sub(a, b)),
                    "/" => Some(calc::Term::Div(a, b)),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Selectors that mutate their receiver. A `select:` block sending one of
/// these is not a pure predicate, so the calculus translation (and any
/// index-assisted plan) could observe or miss its side effects.
const MUTATING: &[&str] = &[
    "add:",
    "addAll:",
    "remove:",
    "removeKey:",
    "at:put:",
    "removeAll:",
    "removeFirst",
    "removeLast",
];

fn mark(v: &mut ScopeVar, write: bool) {
    if write {
        v.writes += 1;
    } else {
        v.reads += 1;
    }
}

/// Collect selectors of mutating sends (and `:=`-through-path stores)
/// anywhere in the expression — used by the `select:` purity lint.
fn scan_impure(e: &Expr, found: &mut Vec<String>) {
    match e {
        Expr::Lit(_) | Expr::Ident(_) => {}
        Expr::Assign(_, v) => scan_impure(v, found),
        Expr::Send { recv, selector, args } => {
            if MUTATING.contains(&selector.as_str()) {
                found.push(selector.clone());
            }
            scan_impure(recv, found);
            for a in args {
                scan_impure(a, found);
            }
        }
        Expr::Cascade { recv, sends } => {
            scan_impure(recv, found);
            for (selector, args) in sends {
                if MUTATING.contains(&selector.as_str()) {
                    found.push(selector.clone());
                }
                for a in args {
                    scan_impure(a, found);
                }
            }
        }
        Expr::Block(b) => {
            for stmt in &b.body {
                match &stmt.kind {
                    StmtKind::Expr(e) | StmtKind::Return(e) => scan_impure(e, found),
                }
            }
        }
        Expr::Path { root, steps } => {
            scan_impure(root, found);
            scan_steps(steps, found);
        }
        Expr::PathAssign { root, steps, value } => {
            found.push(":=".into());
            scan_impure(root, found);
            scan_impure(value, found);
            scan_steps(steps, found);
        }
    }
}

fn scan_steps(steps: &[PathStep], found: &mut Vec<String>) {
    for s in steps {
        if let Some(t) = &s.at {
            scan_impure(t, found);
        }
        if let PathComponent::Dynamic(d) = &s.component {
            scan_impure(d, found);
        }
    }
}

/// Does the expression mention the identifier?
fn mentions(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Ident(n) => n == name,
        Expr::Lit(_) => false,
        Expr::Assign(n, v) => n == name || mentions(v, name),
        Expr::Send { recv, args, .. } => {
            mentions(recv, name) || args.iter().any(|a| mentions(a, name))
        }
        Expr::Cascade { recv, sends } => {
            mentions(recv, name)
                || sends.iter().any(|(_, args)| args.iter().any(|a| mentions(a, name)))
        }
        Expr::Block(b) => {
            if b.params.iter().any(|p| p.name == name) || b.temps.iter().any(|t| t.name == name) {
                return false; // shadowed
            }
            b.body.iter().any(|s| match &s.kind {
                StmtKind::Expr(e) | StmtKind::Return(e) => mentions(e, name),
            })
        }
        Expr::Path { root, steps } => {
            mentions(root, name)
                || steps.iter().any(|s| {
                    s.at.as_ref().is_some_and(|t| mentions(t, name))
                        || matches!(&s.component, PathComponent::Dynamic(d) if mentions(d, name))
                })
        }
        Expr::PathAssign { root, steps, value } => {
            mentions(root, name)
                || mentions(value, name)
                || steps.iter().any(|s| {
                    s.at.as_ref().is_some_and(|t| mentions(t, name))
                        || matches!(&s.component, PathComponent::Dynamic(d) if mentions(d, name))
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::BasicWorld;

    #[test]
    fn doit_compiles_and_returns_last_value() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "| x | x := 3. x + 4").unwrap();
        assert_eq!(m.n_temps, 1);
        assert!(matches!(m.code.last(), Some(Bc::ReturnTop)));
    }

    #[test]
    fn method_without_return_returns_self() {
        let mut w = BasicWorld::new();
        let k = w.kernel();
        let m = compile_method(&mut w, k.object, "bump | x | x := 1").unwrap();
        assert!(matches!(m.code.last(), Some(Bc::ReturnSelf)));
    }

    #[test]
    fn undeclared_variable_in_method_is_an_error() {
        let mut w = BasicWorld::new();
        let k = w.kernel();
        let err = compile_method(&mut w, k.object, "bad zzz := 1");
        assert!(matches!(err, Err(GemError::CompileError(_))), "{err:?}");
    }

    #[test]
    fn doit_assignment_creates_global_store() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "World := 5").unwrap();
        assert!(m.code.iter().any(|b| matches!(b, Bc::StoreGlobal(_))));
    }

    #[test]
    fn instvar_access_compiles_to_instvar_ops() {
        let mut w = BasicWorld::new();
        let k = w.kernel();
        let name = w.intern("Emp");
        let salary = w.intern("salary");
        let emp = w.define_subclass(k.object, name, vec![salary]).unwrap();
        let m = compile_method(&mut w, emp, "salary ^salary").unwrap();
        assert!(m.code.iter().any(|b| matches!(b, Bc::PushInstVar(_))));
        let m = compile_method(&mut w, emp, "salary: s salary := s").unwrap();
        assert!(m.code.iter().any(|b| matches!(b, Bc::StoreInstVar(_))));
    }

    #[test]
    fn if_true_inlines_with_jumps() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "3 < 4 ifTrue: [1] ifFalse: [2]").unwrap();
        assert!(m.blocks.is_empty(), "inlined, no closures");
        assert!(m.code.iter().any(|b| matches!(b, Bc::JumpIfFalse(_))));
    }

    #[test]
    fn while_inlines_backward_jump() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "| i | i := 0. [i < 5] whileTrue: [i := i + 1]. i").unwrap();
        assert!(m.blocks.is_empty());
        assert!(m.code.iter().any(|b| matches!(b, Bc::Jump(o) if *o < 0)));
    }

    #[test]
    fn real_blocks_are_compiled_separately() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "| b | b := [:x | x + 1]. b value: 2").unwrap();
        assert_eq!(m.blocks.len(), 1);
        assert_eq!(m.blocks[0].n_params, 1);
    }

    #[test]
    fn select_with_analyzable_block_emits_query() {
        let mut w = BasicWorld::new();
        let m =
            compile_doit(&mut w, "| c | c := Set new. c select: [:e | e salary > 100]").unwrap();
        assert!(m.code.iter().any(|b| matches!(b, Bc::SelectQuery { .. })));
        let Some(Literal::Query(t)) = m.literals.iter().find(|l| matches!(l, Literal::Query(_)))
        else {
            panic!()
        };
        assert_eq!(t.n_captured, 0);
        assert!(matches!(t.query.pred, calc::Pred::Cmp(_, calc::CmpOp::Gt, _)));
    }

    #[test]
    fn select_captures_outer_values() {
        let mut w = BasicWorld::new();
        let m = compile_doit(
            &mut w,
            "| c limit | c := Set new. limit := 50. c select: [:e | e salary > limit]",
        )
        .unwrap();
        let q = m.code.iter().find_map(|b| match b {
            Bc::SelectQuery { argc, .. } => Some(*argc),
            _ => None,
        });
        assert_eq!(q, Some(1), "limit is captured");
    }

    #[test]
    fn unanalyzable_select_falls_back_to_send() {
        let mut w = BasicWorld::new();
        // printString is not a calculus operation.
        let m =
            compile_doit(&mut w, "| c | c := Set new. c select: [:e | e printString = e]").unwrap();
        assert!(!m.code.iter().any(|b| matches!(b, Bc::SelectQuery { .. })));
        assert_eq!(m.blocks.len(), 1, "procedural block retained");
    }

    #[test]
    fn path_expressions_compile_to_path_steps() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "| w | w := Dictionary new. w ! 'Acme Corp' ! president @ 7")
            .unwrap();
        let steps: Vec<bool> = m
            .code
            .iter()
            .filter_map(|b| match b {
                Bc::PathStep { has_time } => Some(*has_time),
                _ => None,
            })
            .collect();
        assert_eq!(steps, vec![false, true]);
    }

    #[test]
    fn path_assignment_compiles_to_path_store() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "| d | d := Dictionary new. d ! city := 'Portland'").unwrap();
        assert!(m.code.iter().any(|b| matches!(b, Bc::PathStore)));
    }

    #[test]
    fn assignment_into_past_is_rejected() {
        let mut w = BasicWorld::new();
        let err = compile_doit(&mut w, "| d | d := Dictionary new. d ! city @ 3 := 'X'");
        assert!(err.is_err());
    }

    // -------------------------------------------------------- lint pass

    #[test]
    fn declared_temps_are_nil_initialized() {
        let mut w = BasicWorld::new();
        let m = compile_doit(&mut w, "| x | x := 3. x").unwrap();
        assert_eq!(&m.code[..2], &[Bc::PushNil, Bc::StoreTemp(0)]);
        crate::verify::check(&m).unwrap();
    }

    #[test]
    fn unused_temp_lints_with_declaration_span() {
        let mut w = BasicWorld::new();
        let (_, lints) = compile_doit_with_lints(&mut w, "| x unused | x := 1. x").unwrap();
        assert!(
            lints.iter().any(|l| matches!(
                (&l.kind, &l.site),
                (LintKind::UnusedTemp { name }, LintSite::Source(s))
                    if name == "unused" && s.line == 1
            )),
            "{lints:?}"
        );
        let (_, lints) = compile_doit_with_lints(&mut w, "| x | x := 1. x").unwrap();
        assert!(!lints.iter().any(|l| matches!(l.kind, LintKind::UnusedTemp { .. })));
    }

    #[test]
    fn shadowing_lints() {
        let mut w = BasicWorld::new();
        let (_, lints) =
            compile_doit_with_lints(&mut w, "| x | x := 1. [:x | x + 1] value: x").unwrap();
        assert!(
            lints.iter().any(|l| matches!(&l.kind, LintKind::Shadowing { name } if name == "x")),
            "{lints:?}"
        );
    }

    #[test]
    fn statements_after_return_lint_instead_of_error() {
        let mut w = BasicWorld::new();
        let k = w.kernel();
        let (m, lints) = compile_method_with_lints(&mut w, k.object, "m ^1. 2").unwrap();
        assert!(
            lints.iter().any(|l| matches!(
                (&l.kind, &l.site),
                (LintKind::UnreachableCode, LintSite::Source(_))
            )),
            "{lints:?}"
        );
        crate::verify::check(&m).unwrap();
    }

    #[test]
    fn select_block_mutation_lints() {
        let mut w = BasicWorld::new();
        let (_, lints) =
            compile_doit_with_lints(&mut w, "| c | c := Set new. c select: [:e | c add: e. e > 0]")
                .unwrap();
        assert!(
            lints
                .iter()
                .any(|l| matches!(&l.kind, LintKind::SelectBlockImpure { selector, .. } if selector == "add:")),
            "{lints:?}"
        );
    }

    #[test]
    fn select_lint_cites_the_proven_effect() {
        let mut w = BasicWorld::new();
        let (_, lints) =
            compile_doit_with_lints(&mut w, "| c | c := Set new. c select: [:e | c add: e. e > 0]")
                .unwrap();
        assert!(
            lints.iter().any(|l| matches!(
                &l.kind,
                LintKind::SelectBlockImpure { selector, effect }
                    if selector == "add:" && effect == "WritesLocal"
            )),
            "{lints:?}"
        );
    }

    #[test]
    fn hoisted_capture_mutation_does_not_lint() {
        // The source scan sees `removeFirst` inside the block, but the
        // declarative translation hoists it into a capture evaluated once
        // outside the query — the predicate itself is pure, and the effect
        // analysis overrules the scan.
        let mut w = BasicWorld::new();
        let (m, lints) = compile_doit_with_lints(
            &mut w,
            "| c box | c := Set new. box := OrderedCollection new. \
             c select: [:e | e salary > (box removeFirst)]",
        )
        .unwrap();
        assert!(
            m.code.iter().any(|b| matches!(b, Bc::SelectQuery { .. })),
            "compiled declaratively"
        );
        assert!(
            !lints.iter().any(|l| matches!(l.kind, LintKind::SelectBlockImpure { .. })),
            "{lints:?}"
        );
    }

    #[test]
    fn user_defined_mutation_is_caught_by_analysis_alone() {
        use gemstone_object::MethodRef;
        // `bump` is not in the syntactic MUTATING table, but the effect
        // analysis proves the fallback block writes through it.
        let mut w = BasicWorld::new();
        let k = w.kernel();
        let name = w.intern("Thing");
        let var = w.intern("n");
        let thing = w.define_subclass(k.object, name, vec![var]).unwrap();
        let m = compile_method(&mut w, thing, "bump n := 1. ^n").unwrap();
        let sel = m.selector;
        let id = w.add_method_code(m).unwrap();
        w.install_method(thing, sel, MethodRef::Compiled(id), false);
        let (_, lints) =
            compile_doit_with_lints(&mut w, "| c | c := Set new. c select: [:e | e bump > 0]")
                .unwrap();
        assert!(
            lints.iter().any(|l| matches!(
                &l.kind,
                LintKind::SelectBlockImpure { selector, effect }
                    if selector.is_empty() && effect == "WritesLocal"
            )),
            "{lints:?}"
        );
    }

    #[test]
    fn inline_block_temps_do_not_leak_into_later_code() {
        let mut w = BasicWorld::new();
        // After the ifTrue: region ends, `t` no longer resolves to the
        // frame slot — in a doIt it degrades to a global reference.
        let m = compile_doit(&mut w, "3 < 4 ifTrue: [ | t | t := 1. t ]. t").unwrap();
        assert!(matches!(m.code.last(), Some(Bc::ReturnTop)));
        let tail = &m.code[m.code.len() - 2];
        assert!(matches!(tail, Bc::PushGlobal(_)), "leaked slot: {tail:?}");
        // And in a method body, storing to it is an undeclared-variable error.
        let k = w.kernel();
        let err = compile_method(&mut w, k.object, "m 3 < 4 ifTrue: [ | t | t := 1 ]. t := 2");
        assert!(matches!(err, Err(GemError::CompileError(_))), "{err:?}");
    }

    #[test]
    fn compiler_output_passes_verifier() {
        let mut w = BasicWorld::new();
        for src in [
            "| x | x := 3. x + 4",
            "3 < 4 ifTrue: [1] ifFalse: [2]",
            "| i | i := 0. [i < 5] whileTrue: [i := i + 1]. i",
            "| b | b := [:x | x + 1]. b value: 2",
            "| s | s := 0. 1 to: 5 do: [:i | s := s + i]. s",
            "| c | c := Set new. c select: [:e | e salary > 100]",
            "3 timesRepeat: [ 1 + 1 ]",
            "| xs | xs := OrderedCollection new. xs do: [:x | xs do: [:y | x + y]]",
        ] {
            let m = compile_doit(&mut w, src).unwrap();
            crate::verify::check(&m).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }
}
