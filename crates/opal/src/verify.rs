//! Bytecode verification: static analysis of compiled methods at install
//! time.
//!
//! §6 makes compiledMethods the trust boundary of the whole system — the
//! interpreter "executes compiledMethods consisting of sequences of
//! bytecodes" and historically trusted them blindly, so one malformed or
//! miscompiled method could panic the entire session. Following the
//! definition-time-checking discipline Postgres credits for its longevity,
//! [`check`] abstractly interprets every method *before* it can ever
//! execute:
//!
//! * **Stack discipline** — a worklist dataflow over the bytecode CFG
//!   tracks the *exact* operand-stack depth at every pc. The abstract
//!   domain per pc is `⊥` (unreached) or a single depth; the merge rule is
//!   equality (two predecessors carrying different depths is
//!   [`VerifyErrorKind::UnbalancedMerge`] — the ST80 compiler never emits
//!   such code, and accepting it would make depth unknowable). Underflow
//!   and overflow (> [`MAX_STACK_DEPTH`]) are rejected.
//! * **Jump validity** — every `Jump`/`JumpIfFalse`/`JumpIfTrue` target
//!   must land on an instruction boundary in `0..=len` (`len` is the
//!   virtual fall-off exit). Negative or past-the-end targets are
//!   rejected; the interpreter's `ip` arithmetic can then never wrap.
//! * **Index bounds** — `PushTemp`/`StoreTemp` against the body's frame
//!   size, `PushHome`/`StoreHome` against the *method's* frame size,
//!   `PushLit`/`PushInstVar`/`Send` against the literal pool (with kind
//!   checks: selectors and instvar names must be `Literal::Sym`, and a
//!   `Query` literal can never be pushed as a value), `PushBlock` against
//!   the block table.
//! * **Lexical chains** — `PushOuter { up, idx }` walks `up` environment
//!   links at run time. The verifier reconstructs the possible chains
//!   statically: block *b*'s parent frame is whichever body contains
//!   `PushBlock(b)`, so iterating that "pushers" relation `up` times
//!   yields every frame the instruction could read; `idx` is checked
//!   against each one, and a chain that reaches the method body early is
//!   rejected (the method frame has no parent).
//! * **Query templates** — `SelectQuery` literals must be valid
//!   [`QueryTemplate`](crate::QueryTemplate)s
//!   ([`QueryTemplate::validate`](crate::QueryTemplate::validate)) whose `n_captured`
//!   matches the instruction's `argc`, so run-time capture substitution
//!   can never read out of range.
//! * **Definite assignment** — a bitset per pc (intersected at merges)
//!   tracks which temp slots have been stored; reading an unstored,
//!   non-parameter temp is [`VerifyErrorKind::UseBeforeStore`]. The
//!   compiler nil-initialises declared temps explicitly, so its output
//!   always satisfies the strict rule while hand-built bytecode cannot
//!   smuggle reads of stale slots.
//!
//! A method that passes earns a [`Verified`] token — the proof that lets
//! the interpreter's release-mode fast path replace its panicking
//! `expect`s with debug asserts. Methods are checked once, at
//! [`crate::OpalWorld::add_method_code`] time, not per execution.
//!
//! [`code_lints`] reuses the same dataflow for the non-fatal layer:
//! instructions whose state stays `⊥` at fixpoint are unreachable code.

use crate::bytecode::{Bc, CompiledMethod, Literal};
use gemstone_object::GemError;

/// Operand-stack depth cap per activation. The compiler never gets close
/// (depth grows only with expression nesting); hand-built methods past
/// this are rejected rather than allowed to balloon frame allocations.
pub const MAX_STACK_DEPTH: u32 = 1024;

/// Where in a compiled method a diagnostic points: `block` is `None` for
/// the method's main code, `Some(i)` for block `i`; `pc` indexes the
/// instruction (or equals the code length for the virtual fall-off exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeLoc {
    pub block: Option<u16>,
    pub pc: usize,
}

impl std::fmt::Display for CodeLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.block {
            None => write!(f, "pc {}", self.pc),
            Some(b) => write!(f, "block {b} pc {}", self.pc),
        }
    }
}

/// What the verifier rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// An instruction pops more values than the stack holds.
    StackUnderflow,
    /// Stack depth would exceed [`MAX_STACK_DEPTH`].
    StackOverflow { depth: u32 },
    /// Two control-flow paths reach the same pc with different depths.
    UnbalancedMerge { left: u32, right: u32 },
    /// Jump target outside `0..=len`.
    BadJumpTarget { target: i64, len: usize },
    /// Temp slot index past the activation's frame.
    TempOutOfBounds { idx: u8, frame: usize },
    /// Home (method-frame) slot index past the method's frame.
    HomeOutOfBounds { idx: u8, frame: usize },
    /// Outer-scope slot index past some possible enclosing frame.
    OuterOutOfBounds { up: u8, idx: u8, frame: usize },
    /// `PushOuter`/`StoreOuter` walks past the method frame.
    NoOuterScope { up: u8 },
    /// Literal pool index out of range.
    LiteralOutOfBounds { idx: u16, len: usize },
    /// Literal exists but has the wrong kind for the instruction.
    WrongLiteralKind { idx: u16, expected: &'static str },
    /// Block table index out of range.
    BlockOutOfBounds { idx: u16, len: usize },
    /// `SelectQuery` argc disagrees with the template's `n_captured`.
    BadQueryArity { declared: u16, argc: u8 },
    /// The query template itself fails [`crate::QueryTemplate::validate`].
    BadQueryTemplate { idx: u16, reason: String },
    /// A non-parameter temp is read before any store reaches it.
    UseBeforeStore { idx: u8 },
    /// Method code can fall off the end (blocks may; methods must return).
    MissingReturn,
}

/// A verification failure with the location it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub kind: VerifyErrorKind,
    pub loc: CodeLoc,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use VerifyErrorKind::*;
        match &self.kind {
            StackUnderflow => write!(f, "stack underflow")?,
            StackOverflow { depth } => write!(f, "stack overflow (depth {depth})")?,
            UnbalancedMerge { left, right } => {
                write!(f, "unbalanced stack depths at merge ({left} vs {right})")?
            }
            BadJumpTarget { target, len } => write!(f, "jump target {target} outside 0..={len}")?,
            TempOutOfBounds { idx, frame } => {
                write!(f, "temp index {idx} out of frame (size {frame})")?
            }
            HomeOutOfBounds { idx, frame } => {
                write!(f, "home temp index {idx} out of frame (size {frame})")?
            }
            OuterOutOfBounds { up, idx, frame } => {
                write!(f, "outer temp index {idx} (up {up}) out of frame (size {frame})")?
            }
            NoOuterScope { up } => write!(f, "no lexically enclosing scope {up} levels up")?,
            LiteralOutOfBounds { idx, len } => {
                write!(f, "literal index {idx} out of pool (size {len})")?
            }
            WrongLiteralKind { idx, expected } => write!(f, "literal {idx} is not a {expected}")?,
            BlockOutOfBounds { idx, len } => {
                write!(f, "block index {idx} out of table (size {len})")?
            }
            BadQueryArity { declared, argc } => {
                write!(f, "query captures {declared} values but {argc} are pushed")?
            }
            BadQueryTemplate { idx, reason } => {
                write!(f, "invalid query template at literal {idx}: {reason}")?
            }
            UseBeforeStore { idx } => write!(f, "temp {idx} read before any store")?,
            MissingReturn => write!(f, "method code can fall off the end without returning")?,
        }
        write!(f, " at {}", self.loc)
    }
}

impl From<VerifyError> for GemError {
    fn from(e: VerifyError) -> GemError {
        GemError::CorruptMethod(e.to_string())
    }
}

/// Proof that a method passed [`check`]. Cannot be constructed outside
/// this module; holding one is what makes the interpreter's release-mode
/// elision of stack checks sound.
#[derive(Debug, Clone, Copy)]
pub struct Verified(());

/// A non-fatal diagnostic: the method is legal but suspicious.
#[derive(Debug, Clone, PartialEq)]
pub struct Lint {
    pub kind: LintKind,
    pub site: LintSite,
}

/// Lint categories, produced by the compiler (source-level) and the
/// verifier (bytecode-level).
#[derive(Debug, Clone, PartialEq)]
pub enum LintKind {
    /// A declared temp is never read or written.
    UnusedTemp { name: String },
    /// An inner declaration hides an outer variable of the same name.
    Shadowing { name: String },
    /// Statements after `^`, or bytecode no path reaches.
    UnreachableCode,
    /// A `select:` fallback block is impure — the calculus translation
    /// assumes selection blocks are pure predicates. `selector` names the
    /// mutating send the source scan spotted (empty when only the effect
    /// analysis caught it); `effect` is the block's proven effect class.
    /// The syntactic scan alone no longer decides: when the interprocedural
    /// analysis proves every surviving fallback block read-only (e.g. the
    /// mutating-looking send was hoisted into a once-evaluated capture),
    /// the diagnostic is dropped.
    SelectBlockImpure { selector: String, effect: String },
}

/// Where a lint points: a source position (compiler lints) or a bytecode
/// location (verifier lints).
#[derive(Debug, Clone, PartialEq)]
pub enum LintSite {
    Source(crate::ast::Span),
    Code(CodeLoc),
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            LintKind::UnusedTemp { name } => write!(f, "unused variable '{name}'")?,
            LintKind::Shadowing { name } => {
                write!(f, "'{name}' shadows an outer variable of the same name")?
            }
            LintKind::UnreachableCode => write!(f, "unreachable code")?,
            LintKind::SelectBlockImpure { selector, effect } => {
                if selector.is_empty() {
                    write!(f, "select: block is {effect} — not a pure predicate")?
                } else if effect.is_empty() {
                    write!(f, "select: block sends mutating message #{selector}")?
                } else {
                    write!(
                        f,
                        "select: block sends mutating message #{selector} \
                         (effect analysis: {effect})"
                    )?
                }
            }
        }
        match &self.site {
            LintSite::Source(s) => write!(f, " at {s}"),
            LintSite::Code(l) => write!(f, " at {l}"),
        }
    }
}

// ------------------------------------------------------------------ domain

/// Definite-assignment bitset over frame slots. `n_params`/`n_temps` are
/// both `u8`, so 512 bits cover any frame.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Bits([u64; 8]);

impl Bits {
    fn none() -> Bits {
        Bits([0; 8])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    /// Intersect in place; true when anything changed.
    fn intersect(&mut self, o: &Bits) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(o.0.iter()) {
            let n = *a & *b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
}

/// Abstract state at a pc: exact stack depth + definitely-assigned slots.
#[derive(Clone, Copy)]
struct State {
    depth: u32,
    assigned: Bits,
}

/// Body identifier: 0 is the method's main code, `i + 1` is block `i`.
type BodyId = usize;

fn body_code(m: &CompiledMethod, body: BodyId) -> &[Bc] {
    if body == 0 {
        &m.code
    } else {
        &m.blocks[body - 1].code
    }
}

fn body_frame_size(m: &CompiledMethod, body: BodyId) -> usize {
    if body == 0 {
        m.frame_size()
    } else {
        let b = &m.blocks[body - 1];
        b.n_params as usize + b.n_temps as usize
    }
}

fn body_params(m: &CompiledMethod, body: BodyId) -> usize {
    if body == 0 {
        m.n_params as usize
    } else {
        m.blocks[body - 1].n_params as usize
    }
}

fn body_loc(body: BodyId, pc: usize) -> CodeLoc {
    CodeLoc { block: if body == 0 { None } else { Some((body - 1) as u16) }, pc }
}

/// `pushers[b]` = bodies whose code contains `PushBlock` of body `b`
/// (block index `b - 1`). A block frame's parent environment is the frame
/// of whichever body pushed it, so this relation *is* the static
/// approximation of the run-time environment chain.
fn pusher_map(m: &CompiledMethod) -> Vec<Vec<BodyId>> {
    let n = m.blocks.len() + 1;
    let mut pushers: Vec<Vec<BodyId>> = vec![Vec::new(); n];
    for body in 0..n {
        for bc in body_code(m, body) {
            if let Bc::PushBlock(b) = bc {
                let target = *b as usize + 1;
                if target < n && !pushers[target].contains(&body) {
                    pushers[target].push(body);
                }
            }
        }
    }
    pushers
}

/// Every body whose frame could sit `up` environment links above `body`'s
/// frame. Errors if a chain reaches the method frame too early (its env
/// has no parent).
fn frames_at(
    body: BodyId,
    up: u8,
    pushers: &[Vec<BodyId>],
    loc: CodeLoc,
) -> Result<Vec<BodyId>, VerifyError> {
    let mut cur = vec![body];
    for _ in 0..up {
        let mut next = Vec::new();
        for b in &cur {
            if *b == 0 {
                return Err(VerifyError { kind: VerifyErrorKind::NoOuterScope { up }, loc });
            }
            for p in &pushers[*b] {
                if !next.contains(p) {
                    next.push(*p);
                }
            }
        }
        cur = next;
    }
    Ok(cur)
}

// ---------------------------------------------------------------- dataflow

/// Worklist dataflow over one body. Returns the per-pc states (length
/// `len + 1`; the last entry is the virtual fall-off exit), or the first
/// verification error encountered.
fn flow(
    m: &CompiledMethod,
    body: BodyId,
    pushers: &[Vec<BodyId>],
) -> Result<Vec<Option<State>>, VerifyError> {
    let code = body_code(m, body);
    let frame = body_frame_size(m, body);
    let n_params = body_params(m, body);
    let len = code.len();

    let mut init = Bits::none();
    for i in 0..n_params {
        init.set(i);
    }
    let mut states: Vec<Option<State>> = vec![None; len + 1];
    states[0] = Some(State { depth: 0, assigned: init });
    let mut worklist: Vec<usize> = if len > 0 { vec![0] } else { Vec::new() };

    while let Some(pc) = worklist.pop() {
        let mut st = states[pc].expect("worklist entries are reached");
        let loc = body_loc(body, pc);
        let err = |kind: VerifyErrorKind| VerifyError { kind, loc };

        // Stack-effect helpers over the abstract depth.
        let pop = |st: &mut State, n: u32| {
            if st.depth < n {
                Err(err(VerifyErrorKind::StackUnderflow))
            } else {
                st.depth -= n;
                Ok(())
            }
        };
        let push = |st: &mut State, n: u32| {
            st.depth += n;
            if st.depth > MAX_STACK_DEPTH {
                Err(err(VerifyErrorKind::StackOverflow { depth: st.depth }))
            } else {
                Ok(())
            }
        };
        let lit = |idx: u16| {
            m.literals.get(idx as usize).ok_or_else(|| {
                err(VerifyErrorKind::LiteralOutOfBounds { idx, len: m.literals.len() })
            })
        };
        let sym_lit = |idx: u16| match lit(idx)? {
            Literal::Sym(_) => Ok(()),
            _ => Err(err(VerifyErrorKind::WrongLiteralKind { idx, expected: "symbol" })),
        };
        let temp_in_frame = |idx: u8| {
            if (idx as usize) < frame {
                Ok(())
            } else {
                Err(err(VerifyErrorKind::TempOutOfBounds { idx, frame }))
            }
        };
        let home_in_frame = |idx: u8| {
            // `home_temps` is the method activation's frame — both from
            // block code and (trivially) from the method's own code.
            if (idx as usize) < m.frame_size() {
                Ok(())
            } else {
                Err(err(VerifyErrorKind::HomeOutOfBounds { idx, frame: m.frame_size() }))
            }
        };
        let outer_in_frames = |up: u8, idx: u8| {
            if up == 0 {
                return temp_in_frame(idx);
            }
            for b in frames_at(body, up, pushers, loc)? {
                let f = body_frame_size(m, b);
                if idx as usize >= f {
                    return Err(err(VerifyErrorKind::OuterOutOfBounds { up, idx, frame: f }));
                }
            }
            Ok(())
        };
        let jump_target = |off: i32| {
            let target = pc as i64 + 1 + off as i64;
            if (0..=len as i64).contains(&target) {
                Ok(target as usize)
            } else {
                Err(err(VerifyErrorKind::BadJumpTarget { target, len }))
            }
        };

        // Successors this instruction can fall or jump to.
        let mut succs: Vec<usize> = Vec::with_capacity(2);
        match code[pc] {
            Bc::PushLit(i) => {
                if matches!(lit(i)?, Literal::Query(_)) {
                    return Err(err(VerifyErrorKind::WrongLiteralKind {
                        idx: i,
                        expected: "pushable literal",
                    }));
                }
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::PushNil | Bc::PushTrue | Bc::PushFalse | Bc::PushSelf | Bc::PushSystem => {
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::PushTemp(i) => {
                temp_in_frame(i)?;
                if (i as usize) >= n_params && !st.assigned.get(i as usize) {
                    return Err(err(VerifyErrorKind::UseBeforeStore { idx: i }));
                }
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::StoreTemp(i) => {
                temp_in_frame(i)?;
                pop(&mut st, 1)?;
                st.assigned.set(i as usize);
                succs.push(pc + 1);
            }
            Bc::PushHome(i) => {
                home_in_frame(i)?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::StoreHome(i) => {
                home_in_frame(i)?;
                pop(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::PushOuter { up, idx } => {
                outer_in_frames(up, idx)?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::StoreOuter { up, idx } => {
                outer_in_frames(up, idx)?;
                pop(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::PushInstVar(i) | Bc::PushGlobal(i) => {
                sym_lit(i)?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::StoreInstVar(i) | Bc::StoreGlobal(i) => {
                sym_lit(i)?;
                pop(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::Pop => {
                pop(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::Dup => {
                pop(&mut st, 1)?;
                push(&mut st, 2)?;
                succs.push(pc + 1);
            }
            Bc::Send { sel, argc } => {
                sym_lit(sel)?;
                pop(&mut st, argc as u32 + 1)?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::Jump(off) => {
                succs.push(jump_target(off)?);
            }
            Bc::JumpIfFalse(off) | Bc::JumpIfTrue(off) => {
                pop(&mut st, 1)?;
                succs.push(jump_target(off)?);
                succs.push(pc + 1);
            }
            Bc::PushBlock(i) => {
                if (i as usize) >= m.blocks.len() {
                    return Err(err(VerifyErrorKind::BlockOutOfBounds {
                        idx: i,
                        len: m.blocks.len(),
                    }));
                }
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::PathStep { has_time } => {
                pop(&mut st, if has_time { 3 } else { 2 })?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::PathStore => {
                pop(&mut st, 3)?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
            Bc::ReturnTop => {
                pop(&mut st, 1)?;
            }
            Bc::ReturnSelf => {}
            Bc::SelectQuery { lit: li, argc } => {
                let Literal::Query(t) = lit(li)? else {
                    return Err(err(VerifyErrorKind::WrongLiteralKind {
                        idx: li,
                        expected: "query template",
                    }));
                };
                t.validate()
                    .map_err(|reason| err(VerifyErrorKind::BadQueryTemplate { idx: li, reason }))?;
                if t.n_captured != argc as u16 {
                    return Err(err(VerifyErrorKind::BadQueryArity {
                        declared: t.n_captured,
                        argc,
                    }));
                }
                pop(&mut st, argc as u32 + 1)?;
                push(&mut st, 1)?;
                succs.push(pc + 1);
            }
        }

        for s in succs {
            match &mut states[s] {
                slot @ None => {
                    *slot = Some(st);
                    if s < len {
                        worklist.push(s);
                    }
                }
                Some(old) => {
                    if old.depth != st.depth {
                        return Err(VerifyError {
                            kind: VerifyErrorKind::UnbalancedMerge {
                                left: old.depth,
                                right: st.depth,
                            },
                            loc: body_loc(body, s),
                        });
                    }
                    if old.assigned.intersect(&st.assigned) && s < len {
                        worklist.push(s);
                    }
                }
            }
        }
    }

    // Methods must end in an explicit return; blocks answer their last
    // value when they run off the end, so a reachable fall-off is fine
    // there (the interpreter defaults an empty stack to nil).
    if body == 0 && (len == 0 || states[len].is_some()) {
        return Err(VerifyError { kind: VerifyErrorKind::MissingReturn, loc: body_loc(0, len) });
    }
    Ok(states)
}

// ------------------------------------------------------------- public API

/// Verify a compiled method: the method's main code and every block.
/// `Ok(Verified)` proves the method can never underflow the operand
/// stack, jump out of its code, index outside its frame / literal pool /
/// block table / lexical chain, read an unstored temp, or run a query
/// template with the wrong capture arity.
pub fn check(m: &CompiledMethod) -> Result<Verified, VerifyError> {
    let pushers = pusher_map(m);
    for body in 0..=m.blocks.len() {
        flow(m, body, &pushers)?;
    }
    Ok(Verified(()))
}

/// Bytecode-level lints for a method that passes [`check`]: instructions
/// the dataflow proves unreachable. Unconditional `Jump`s are exempt —
/// the compiler emits a dead scaffold jump after a branch arm that ends
/// in `^` (`ifTrue: [^x]`), and flagging those would lint every such
/// kernel method. Returns nothing for unverifiable methods (verification
/// errors, not lints, are the diagnostic there).
pub fn code_lints(m: &CompiledMethod) -> Vec<Lint> {
    let pushers = pusher_map(m);
    let mut lints = Vec::new();
    for body in 0..=m.blocks.len() {
        let Ok(states) = flow(m, body, &pushers) else { return Vec::new() };
        let code = body_code(m, body);
        for (pc, bc) in code.iter().enumerate() {
            if states[pc].is_none() && !matches!(bc, Bc::Jump(_)) {
                lints.push(Lint {
                    kind: LintKind::UnreachableCode,
                    site: LintSite::Code(body_loc(body, pc)),
                });
            }
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{CompiledBlock, QueryTemplate};
    use gemstone_calculus::{Pred, Query, Range, Term, VarId};
    use gemstone_object::{Oop, SymbolId};

    fn method(code: Vec<Bc>) -> CompiledMethod {
        CompiledMethod {
            selector: SymbolId(0),
            n_params: 0,
            n_temps: 0,
            literals: Vec::new(),
            code,
            blocks: Vec::new(),
        }
    }

    fn kind_of(m: &CompiledMethod) -> VerifyErrorKind {
        check(m).unwrap_err().kind
    }

    #[test]
    fn accepts_minimal_method() {
        assert!(check(&method(vec![Bc::PushNil, Bc::ReturnTop])).is_ok());
        assert!(check(&method(vec![Bc::ReturnSelf])).is_ok());
    }

    #[test]
    fn rejects_underflow() {
        let m = method(vec![Bc::Pop, Bc::ReturnSelf]);
        assert_eq!(kind_of(&m), VerifyErrorKind::StackUnderflow);
        assert_eq!(check(&m).unwrap_err().loc, CodeLoc { block: None, pc: 0 });
        // ReturnTop with nothing on the stack is an underflow too.
        assert_eq!(kind_of(&method(vec![Bc::ReturnTop])), VerifyErrorKind::StackUnderflow);
        assert_eq!(kind_of(&method(vec![Bc::Dup, Bc::ReturnTop])), VerifyErrorKind::StackUnderflow);
    }

    #[test]
    fn rejects_overflow() {
        let mut code = vec![Bc::PushNil; MAX_STACK_DEPTH as usize + 1];
        code.push(Bc::ReturnTop);
        assert!(matches!(kind_of(&method(code)), VerifyErrorKind::StackOverflow { .. }));
    }

    #[test]
    fn rejects_bad_jump_targets() {
        assert!(matches!(
            kind_of(&method(vec![Bc::Jump(5), Bc::ReturnSelf])),
            VerifyErrorKind::BadJumpTarget { target: 6, .. }
        ));
        assert!(matches!(
            kind_of(&method(vec![Bc::Jump(-3), Bc::ReturnSelf])),
            VerifyErrorKind::BadJumpTarget { target: -2, .. }
        ));
    }

    #[test]
    fn rejects_unbalanced_merge() {
        // True branch jumps to pc 3 with depth 0; fall-through pushes nil
        // and reaches pc 3 with depth 1.
        let m = method(vec![Bc::PushTrue, Bc::JumpIfTrue(1), Bc::PushNil, Bc::ReturnSelf]);
        assert!(matches!(kind_of(&m), VerifyErrorKind::UnbalancedMerge { .. }));
    }

    #[test]
    fn rejects_out_of_bounds_temp() {
        assert!(matches!(
            kind_of(&method(vec![Bc::PushTemp(0), Bc::ReturnTop])),
            VerifyErrorKind::TempOutOfBounds { idx: 0, frame: 0 }
        ));
        assert!(matches!(
            kind_of(&method(vec![Bc::PushNil, Bc::StoreTemp(3), Bc::ReturnSelf])),
            VerifyErrorKind::TempOutOfBounds { idx: 3, .. }
        ));
    }

    #[test]
    fn rejects_use_before_store() {
        let mut m = method(vec![Bc::PushTemp(0), Bc::ReturnTop]);
        m.n_temps = 1;
        assert_eq!(kind_of(&m), VerifyErrorKind::UseBeforeStore { idx: 0 });
        // A store on only one branch is not definite assignment.
        let mut m = method(vec![
            Bc::PushTrue,
            Bc::JumpIfTrue(2),
            Bc::PushNil,
            Bc::StoreTemp(0),
            Bc::PushTemp(0),
            Bc::ReturnTop,
        ]);
        m.n_temps = 1;
        assert_eq!(kind_of(&m), VerifyErrorKind::UseBeforeStore { idx: 0 });
        // Parameters are always assigned; stored temps may be read.
        let mut ok =
            method(vec![Bc::PushTemp(0), Bc::StoreTemp(1), Bc::PushTemp(1), Bc::ReturnTop]);
        ok.n_params = 1;
        ok.n_temps = 1;
        assert!(check(&ok).is_ok());
    }

    #[test]
    fn rejects_bad_literals() {
        assert!(matches!(
            kind_of(&method(vec![Bc::PushLit(0), Bc::ReturnTop])),
            VerifyErrorKind::LiteralOutOfBounds { idx: 0, len: 0 }
        ));
        // A Send whose selector literal is an integer, not a symbol.
        let mut m = method(vec![Bc::PushNil, Bc::Send { sel: 0, argc: 0 }, Bc::ReturnTop]);
        m.literals = vec![Literal::Int(7)];
        assert!(matches!(kind_of(&m), VerifyErrorKind::WrongLiteralKind { idx: 0, .. }));
        // A query template cannot be pushed as a plain value.
        let mut m = method(vec![Bc::PushLit(0), Bc::ReturnTop]);
        m.literals = vec![Literal::Query(QueryTemplate {
            query: Query { result: vec![], ranges: vec![], pred: Pred::True },
            n_captured: 0,
        })];
        assert!(matches!(kind_of(&m), VerifyErrorKind::WrongLiteralKind { idx: 0, .. }));
    }

    #[test]
    fn rejects_bad_block_index() {
        assert!(matches!(
            kind_of(&method(vec![Bc::PushBlock(2), Bc::ReturnTop])),
            VerifyErrorKind::BlockOutOfBounds { idx: 2, len: 0 }
        ));
    }

    fn one_var_query(n_captured: u16, extra_var: Option<u16>) -> QueryTemplate {
        let pred = match extra_var {
            None => Pred::True,
            Some(v) => {
                Pred::Cmp(Term::Var(VarId(0)), gemstone_calculus::CmpOp::Eq, Term::Var(VarId(v)))
            }
        };
        QueryTemplate {
            query: Query {
                result: vec![(SymbolId(0), Term::Var(VarId(0)))],
                ranges: vec![Range { var: VarId(0), domain: Term::Const(Oop::NIL) }],
                pred,
            },
            n_captured,
        }
    }

    #[test]
    fn rejects_bad_query_arity() {
        // Template says one capture; instruction pushes none.
        let mut m = method(vec![Bc::PushNil, Bc::SelectQuery { lit: 0, argc: 0 }, Bc::ReturnTop]);
        m.literals = vec![Literal::Query(one_var_query(1, None))];
        assert!(matches!(kind_of(&m), VerifyErrorKind::BadQueryArity { declared: 1, argc: 0 }));
        // Template mentions VarId(5) with no captures declared.
        let mut m = method(vec![Bc::PushNil, Bc::SelectQuery { lit: 0, argc: 0 }, Bc::ReturnTop]);
        m.literals = vec![Literal::Query(one_var_query(0, Some(5)))];
        assert!(matches!(kind_of(&m), VerifyErrorKind::BadQueryTemplate { idx: 0, .. }));
        // Matching arity passes.
        let mut m = method(vec![
            Bc::PushNil,
            Bc::PushNil,
            Bc::SelectQuery { lit: 0, argc: 1 },
            Bc::ReturnTop,
        ]);
        m.literals = vec![Literal::Query(one_var_query(1, Some(1)))];
        assert!(check(&m).is_ok());
    }

    #[test]
    fn rejects_bad_outer_chain() {
        // Method code has no enclosing activation.
        assert!(matches!(
            kind_of(&method(vec![Bc::PushOuter { up: 1, idx: 0 }, Bc::ReturnTop])),
            VerifyErrorKind::NoOuterScope { up: 1 }
        ));
        // Block pushed from method code: up=1 reaches the method frame,
        // whose size is 1 — idx 5 is out.
        let mut m = method(vec![Bc::PushNil, Bc::StoreTemp(0), Bc::PushBlock(0), Bc::ReturnTop]);
        m.n_temps = 1;
        m.blocks = vec![CompiledBlock {
            n_params: 0,
            n_temps: 0,
            code: vec![Bc::PushOuter { up: 1, idx: 5 }],
        }];
        assert!(matches!(
            kind_of(&m),
            VerifyErrorKind::OuterOutOfBounds { up: 1, idx: 5, frame: 1 }
        ));
        // idx 0 is fine; and up=2 from that same block walks past the
        // method frame.
        m.blocks[0].code = vec![Bc::PushOuter { up: 1, idx: 0 }];
        assert!(check(&m).is_ok());
        m.blocks[0].code = vec![Bc::PushOuter { up: 2, idx: 0 }];
        assert!(matches!(kind_of(&m), VerifyErrorKind::NoOuterScope { up: 2 }));
    }

    #[test]
    fn rejects_method_fall_off() {
        assert_eq!(kind_of(&method(vec![Bc::PushNil])), VerifyErrorKind::MissingReturn);
        assert_eq!(kind_of(&method(vec![])), VerifyErrorKind::MissingReturn);
        // Jumping exactly to the end is a fall-off for a method…
        assert_eq!(kind_of(&method(vec![Bc::Jump(0)])), VerifyErrorKind::MissingReturn);
        // …but fine for a block.
        let mut m = method(vec![Bc::PushBlock(0), Bc::ReturnTop]);
        m.blocks = vec![CompiledBlock { n_params: 0, n_temps: 0, code: vec![Bc::PushNil] }];
        assert!(check(&m).is_ok());
    }

    #[test]
    fn errors_are_deterministic_with_stable_positions() {
        let m = method(vec![Bc::PushTrue, Bc::JumpIfTrue(1), Bc::PushNil, Bc::ReturnSelf]);
        let a = check(&m).unwrap_err();
        let b = check(&m).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.loc, CodeLoc { block: None, pc: 3 });
    }

    #[test]
    fn unreachable_code_lints() {
        // pc 2 is unreachable (both paths return before it).
        let m = method(vec![Bc::PushNil, Bc::ReturnTop, Bc::PushTrue, Bc::ReturnTop]);
        let lints = code_lints(&m);
        assert!(lints.iter().any(|l| l.kind == LintKind::UnreachableCode
            && l.site == LintSite::Code(CodeLoc { block: None, pc: 2 })));
        // Dead scaffold jumps are exempt.
        let m = method(vec![Bc::PushNil, Bc::ReturnTop, Bc::Jump(-3)]);
        assert!(code_lints(&m).is_empty());
    }

    #[test]
    fn display_formats() {
        let e = check(&method(vec![Bc::Pop, Bc::ReturnSelf])).unwrap_err();
        assert_eq!(e.to_string(), "stack underflow at pc 0");
        let g: GemError = e.into();
        assert_eq!(g.to_string(), "corrupt method: stack underflow at pc 0");
    }
}
