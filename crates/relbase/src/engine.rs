//! Relations, operators and indexes.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;

/// An atomic relational value. Exactly the "fixed set of simple types —
/// integer, real and character string" of §2A, plus null.
#[derive(Debug, Clone, PartialEq)]
pub enum Rval {
    Int(i64),
    Float(f64),
    Str(String),
    Null,
}

impl Rval {
    /// Index/join key. Strictly typed, mirroring `PartialEq` on `Rval`, so
    /// index probes and scans always agree (`3` and `3.0` are different
    /// relational values).
    fn key(&self) -> Option<RvalKey> {
        match self {
            Rval::Int(i) => Some(RvalKey::Int(*i)),
            Rval::Float(f) => Some(RvalKey::Float(if *f == 0.0 { 0 } else { f.to_bits() })),
            Rval::Str(s) => Some(RvalKey::Str(s.clone())),
            Rval::Null => None, // null joins with nothing
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RvalKey {
    Int(i64),
    Float(u64),
    Str(String),
}

impl From<i64> for Rval {
    fn from(v: i64) -> Rval {
        Rval::Int(v)
    }
}
impl From<f64> for Rval {
    fn from(v: f64) -> Rval {
        Rval::Float(v)
    }
}
impl From<&str> for Rval {
    fn from(v: &str) -> Rval {
        Rval::Str(v.to_string())
    }
}

/// Row identifier within a relation.
pub type RowId = usize;

/// An arbitrary row test, boxed for [`Pred::Fn`].
pub type RowTest<'a> = Box<dyn Fn(&[Rval]) -> bool + 'a>;

/// A predicate over a row, by attribute position.
pub enum Pred<'a> {
    /// attribute = constant
    Eq(usize, Rval),
    /// attribute > constant (numeric)
    Gt(usize, f64),
    /// arbitrary test
    Fn(RowTest<'a>),
}

impl Pred<'_> {
    fn test(&self, row: &[Rval]) -> bool {
        match self {
            Pred::Eq(i, v) => &row[*i] == v,
            Pred::Gt(i, x) => match &row[*i] {
                Rval::Int(n) => (*n as f64) > *x,
                Rval::Float(f) => *f > *x,
                _ => false,
            },
            Pred::Fn(f) => f(row),
        }
    }
}

/// Execution counters, for the scan-vs-index comparisons of experiment C8.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    pub rows_examined: u64,
    pub index_probes: u64,
}

/// A relation: a schema (attribute names) and rows of atomic values.
pub struct Relation {
    pub name: String,
    attrs: Vec<String>,
    rows: Vec<Vec<Rval>>,
    indexes: HashMap<usize, HashMap<RvalKey, Vec<RowId>>>,
    stats: Cell<(u64, u64)>, // (rows_examined, index_probes)
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({}, {} rows)", self.name, self.rows.len())
    }
}

impl Relation {
    /// An empty relation over the given attributes.
    pub fn new(name: &str, attrs: &[&str]) -> Relation {
        Relation {
            name: name.to_string(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            indexes: HashMap::new(),
            stats: Cell::new((0, 0)),
        }
    }

    /// Attribute position by name.
    pub fn attr(&self, name: &str) -> usize {
        self.attrs
            .iter()
            .position(|a| a == name)
            .unwrap_or_else(|| panic!("{} has no attribute {name}", self.name))
    }

    /// Attribute names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Insert a row; maintains any indexes.
    pub fn insert(&mut self, row: Vec<Rval>) -> RowId {
        assert_eq!(row.len(), self.attrs.len(), "arity mismatch");
        let id = self.rows.len();
        for (&attr, index) in &mut self.indexes {
            if let Some(k) = row[attr].key() {
                index.entry(k).or_default().push(id);
            }
        }
        self.rows.push(row);
        id
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Rval>] {
        &self.rows
    }

    /// Build a hash index on an attribute (the relational answer to the
    /// Directory Manager).
    pub fn create_index(&mut self, attr: usize) {
        let mut index: HashMap<RvalKey, Vec<RowId>> = HashMap::new();
        for (id, row) in self.rows.iter().enumerate() {
            if let Some(k) = row[attr].key() {
                index.entry(k).or_default().push(id);
            }
        }
        self.indexes.insert(attr, index);
    }

    /// Selection. Uses an index for `Eq` predicates when one exists,
    /// otherwise scans.
    pub fn select(&self, pred: &Pred) -> Vec<&Vec<Rval>> {
        if let Pred::Eq(attr, v) = pred {
            if let (Some(index), Some(k)) = (self.indexes.get(attr), v.key()) {
                self.bump(0, 1);
                return index
                    .get(&k)
                    .map(|ids| ids.iter().map(|&i| &self.rows[i]).collect())
                    .unwrap_or_default();
            }
        }
        self.bump(self.rows.len() as u64, 0);
        self.rows.iter().filter(|r| pred.test(r)).collect()
    }

    /// Projection (with duplicate elimination, per the relational model).
    pub fn project(&self, attrs: &[usize]) -> Vec<Vec<Rval>> {
        let mut seen = Vec::new();
        for row in &self.rows {
            let proj: Vec<Rval> = attrs.iter().map(|&i| row[i].clone()).collect();
            if !seen.contains(&proj) {
                seen.push(proj);
            }
        }
        self.bump(self.rows.len() as u64, 0);
        seen
    }

    /// Read execution counters.
    pub fn stats(&self) -> Stats {
        let (rows_examined, index_probes) = self.stats.get();
        Stats { rows_examined, index_probes }
    }

    /// Reset counters between benchmark runs.
    pub fn reset_stats(&self) {
        self.stats.set((0, 0));
    }

    fn bump(&self, rows: u64, probes: u64) {
        let (r, p) = self.stats.get();
        self.stats.set((r + rows, p + probes));
    }
}

/// Equi-join by nested loops: O(|L|·|R|) row examinations.
pub fn nested_loop_join(
    left: &Relation,
    lattr: usize,
    right: &Relation,
    rattr: usize,
) -> Vec<Vec<Rval>> {
    let mut out = Vec::new();
    for l in left.rows() {
        for r in right.rows() {
            if l[lattr] != Rval::Null && l[lattr] == r[rattr] {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
    }
    left.bump(left.len() as u64 * right.len() as u64, 0);
    out
}

/// Equi-join by hashing the right side: O(|L| + |R|).
pub fn hash_join(left: &Relation, lattr: usize, right: &Relation, rattr: usize) -> Vec<Vec<Rval>> {
    let mut table: HashMap<RvalKey, Vec<&Vec<Rval>>> = HashMap::new();
    for r in right.rows() {
        if let Some(k) = r[rattr].key() {
            table.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for l in left.rows() {
        if let Some(k) = l[lattr].key() {
            if let Some(matches) = table.get(&k) {
                for r in matches {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    out.push(row);
                }
            }
        }
    }
    left.bump(left.len() as u64 + right.len() as u64, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employees() -> Relation {
        let mut r = Relation::new("Emp", &["name", "dept", "salary"]);
        r.insert(vec!["Burns".into(), "Marketing".into(), 24_650i64.into()]);
        r.insert(vec!["Peters".into(), "Sales".into(), 24_000i64.into()]);
        r.insert(vec!["Ng".into(), "Sales".into(), 31_000i64.into()]);
        r
    }

    fn departments() -> Relation {
        let mut r = Relation::new("Dept", &["dname", "budget"]);
        r.insert(vec!["Sales".into(), 142_000i64.into()]);
        r.insert(vec!["Research".into(), 256_500i64.into()]);
        r
    }

    #[test]
    fn select_scan_and_index_agree() {
        let mut r = employees();
        let dept = r.attr("dept");
        let scanned: Vec<_> =
            r.select(&Pred::Eq(dept, "Sales".into())).into_iter().cloned().collect();
        r.create_index(dept);
        let probed: Vec<_> =
            r.select(&Pred::Eq(dept, "Sales".into())).into_iter().cloned().collect();
        assert_eq!(scanned, probed);
        assert_eq!(scanned.len(), 2);
    }

    #[test]
    fn index_avoids_row_examination() {
        let mut r = employees();
        let dept = r.attr("dept");
        r.create_index(dept);
        r.reset_stats();
        r.select(&Pred::Eq(dept, "Sales".into()));
        let s = r.stats();
        assert_eq!(s.rows_examined, 0);
        assert_eq!(s.index_probes, 1);
    }

    #[test]
    fn select_gt_and_fn() {
        let r = employees();
        let salary = r.attr("salary");
        assert_eq!(r.select(&Pred::Gt(salary, 24_500.0)).len(), 2);
        let pred =
            Pred::Fn(Box::new(move |row| matches!(&row[salary], Rval::Int(s) if *s % 1000 == 0)));
        assert_eq!(r.select(&pred).len(), 2);
    }

    #[test]
    fn project_eliminates_duplicates() {
        let r = employees();
        let dept = r.attr("dept");
        let depts = r.project(&[dept]);
        assert_eq!(depts.len(), 2, "Sales appears once");
    }

    #[test]
    fn joins_agree() {
        let e = employees();
        let d = departments();
        let nl = nested_loop_join(&e, e.attr("dept"), &d, d.attr("dname"));
        let h = hash_join(&e, e.attr("dept"), &d, d.attr("dname"));
        assert_eq!(nl.len(), 2, "Burns' Marketing has no dept row — lost by the join");
        let mut nl_sorted = nl.clone();
        let mut h_sorted = h.clone();
        let key = |r: &Vec<Rval>| format!("{r:?}");
        nl_sorted.sort_by_key(key);
        h_sorted.sort_by_key(key);
        assert_eq!(nl_sorted, h_sorted);
    }

    #[test]
    fn dangling_logical_pointer_drops_rows_silently() {
        // §2D's update-anomaly argument: rename the department and the
        // employees' logical pointers dangle.
        let e = employees();
        let mut d = Relation::new("Dept", &["dname", "budget"]);
        d.insert(vec!["Retail".into(), 142_000i64.into()]); // renamed!
        let joined = hash_join(&e, e.attr("dept"), &d, d.attr("dname"));
        assert!(joined.is_empty(), "all Sales employees silently disappear");
    }

    #[test]
    fn null_never_joins() {
        let mut e = Relation::new("E", &["dept"]);
        e.insert(vec![Rval::Null]);
        let mut d = Relation::new("D", &["dname"]);
        d.insert(vec![Rval::Null]);
        assert!(nested_loop_join(&e, 0, &d, 0).is_empty());
        assert!(hash_join(&e, 0, &d, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut r = Relation::new("R", &["a", "b"]);
        r.insert(vec![Rval::Int(1)]);
    }

    #[test]
    fn numeric_keys_coerce_in_index() {
        let mut r = Relation::new("R", &["x"]);
        r.insert(vec![Rval::Int(3)]);
        r.create_index(0);
        assert_eq!(
            r.select(&Pred::Eq(0, Rval::Float(3.0))).len(),
            0,
            "strict typing: 3 ≠ 3.0 under Rval eq"
        );
        assert_eq!(r.select(&Pred::Eq(0, Rval::Int(3))).len(), 1);
    }
}
