//! A minimal relational engine: the baseline GemStone is measured against.
//!
//! §2 and §5.2 of the paper argue against the relational model's flat
//! records, logical-pointer joins and flattened set-valued attributes. To
//! *quantify* those arguments (experiments T1, T2, C8 in DESIGN.md) we need
//! an actual relational executor: schemas, tuples, select / project / join,
//! key indexes, and row-examination accounting.
//!
//! It is intentionally classic: flat rows of atomic values, no entity
//! identity (§2D: "two tuples for employees assigned to the same department
//! must represent that commonality through logical pointers"), nulls for
//! missing data (§2C "At best there is an allowance for null values").

mod engine;

pub use engine::{hash_join, nested_loop_join, Pred, Relation, RowId, Rval, Stats};
