//! Algebra ≡ calculus: the translated plan must return exactly the naive
//! nested-loop semantics, with and without directories, on hand-built and
//! randomized object graphs.

use gemstone_calculus::{
    eval_algebra_stats, eval_naive, eval_query, eval_query_explained, translate, translate_with,
    CmpOp, IndexCatalog, PlanOptions, PlanStats, Pred, Query, QueryContext, Range, Term, VarId,
};
use gemstone_object::{ElemName, GemResult, Oop, SymbolId};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A tiny in-memory object graph: heap index → element map.
#[derive(Default)]
struct MockGraph {
    objects: Vec<BTreeMap<ElemName, Oop>>,
    /// Collections (by Oop) with a directory on a path.
    indexed: Vec<(Oop, Vec<ElemName>)>,
    index_probes: u64,
}

impl MockGraph {
    fn alloc(&mut self, elems: BTreeMap<ElemName, Oop>) -> Oop {
        self.objects.push(elems);
        Oop::obj(self.objects.len() as u32 - 1)
    }
}

impl QueryContext for MockGraph {
    fn elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop> {
        Ok(obj
            .as_obj()
            .and_then(|i| self.objects.get(i as usize))
            .and_then(|m| m.get(&name).copied())
            .unwrap_or(Oop::NIL))
    }

    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>> {
        Ok(obj
            .as_obj()
            .and_then(|i| self.objects.get(i as usize))
            .map(|m| m.values().copied().filter(|v| !v.is_nil()).collect())
            .unwrap_or_default())
    }

    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool> {
        if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
            return Ok(x == y);
        }
        Ok(a == b)
    }

    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<Ordering>> {
        match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Ok(x.partial_cmp(&y)),
            _ => Ok(None),
        }
    }

    fn index_lookup(
        &mut self,
        collection: Oop,
        path: &[ElemName],
        key: Oop,
    ) -> GemResult<Option<Vec<Oop>>> {
        let covered = self.indexed.iter().any(|(c, p)| *c == collection && p == path);
        if !covered {
            return Ok(None);
        }
        self.index_probes += 1;
        let members = self.elements(collection)?;
        let mut out = Vec::new();
        for m in members {
            let mut v = m;
            for n in path {
                v = self.elem(v, *n)?;
            }
            if self.equals(v, key)? {
                out.push(m);
            }
        }
        Ok(Some(out))
    }
}

fn sym(n: u32) -> ElemName {
    ElemName::Sym(SymbolId(n))
}

const SALARY: u32 = 1;
const DEPT: u32 = 2;

/// Employees with salary/dept; returns (graph, employees-collection).
fn build_employees(n: usize) -> (MockGraph, Oop) {
    let mut g = MockGraph::default();
    let mut members = Vec::new();
    for i in 0..n {
        let mut elems = BTreeMap::new();
        elems.insert(sym(SALARY), Oop::int((20_000 + (i % 7) * 1000) as i64));
        elems.insert(sym(DEPT), Oop::int((i % 3) as i64));
        members.push(g.alloc(elems));
    }
    let coll: BTreeMap<ElemName, Oop> =
        members.iter().enumerate().map(|(i, m)| (ElemName::Alias(i as u64), *m)).collect();
    let coll = g.alloc(coll);
    (g, coll)
}

fn salary_eq_query(coll: Oop, salary: i64) -> Query {
    Query {
        result: vec![(SymbolId(0), Term::Var(VarId(0)))],
        ranges: vec![Range { var: VarId(0), domain: Term::Const(coll) }],
        pred: Pred::Cmp(
            Term::Path(VarId(0), vec![sym(SALARY)]),
            CmpOp::Eq,
            Term::Const(Oop::int(salary)),
        ),
    }
}

#[test]
fn algebra_matches_naive_on_selection() {
    let (mut g, coll) = build_employees(50);
    let q = salary_eq_query(coll, 23_000);
    let naive = eval_naive(&mut g, &q).unwrap();
    let planned = eval_query(&mut g, &q, &IndexCatalog::new()).unwrap();
    assert_eq!(naive, planned);
    assert!(!naive.is_empty());
}

#[test]
fn index_is_used_when_available_and_answers_match() {
    let (mut g, coll) = build_employees(50);
    g.indexed.push((coll, vec![sym(SALARY)]));
    let mut cat = IndexCatalog::new();
    cat.add_path(vec![sym(SALARY)]);
    let q = salary_eq_query(coll, 23_000);
    let naive = eval_naive(&mut g, &q).unwrap();
    let plan = translate(&q, &cat);
    assert!(plan.uses_index());
    let planned = eval_query(&mut g, &q, &cat).unwrap();
    assert_eq!(sorted(naive), sorted(planned));
    assert!(g.index_probes > 0, "the directory really served the scan");
}

#[test]
fn catalog_without_runtime_directory_falls_back() {
    let (mut g, coll) = build_employees(30);
    // Catalog says salary paths are indexed, but THIS collection has no
    // directory: index_lookup returns None and evaluation falls back.
    let mut cat = IndexCatalog::new();
    cat.add_path(vec![sym(SALARY)]);
    let q = salary_eq_query(coll, 24_000);
    let naive = eval_naive(&mut g, &q).unwrap();
    let planned = eval_query(&mut g, &q, &cat).unwrap();
    assert_eq!(sorted(naive), sorted(planned));
    assert_eq!(g.index_probes, 0);
}

#[test]
fn dependent_join_matches_naive() {
    // e ∈ Emps, d ∈ Depts, e!dept = d!id and e!salary > 22_500
    let mut g = MockGraph::default();
    const ID: u32 = 3;
    let mut emp_members = BTreeMap::new();
    for i in 0..20 {
        let mut elems = BTreeMap::new();
        elems.insert(sym(SALARY), Oop::int(20_000 + (i % 6) * 1000));
        elems.insert(sym(DEPT), Oop::int(i % 4));
        let e = g.alloc(elems);
        emp_members.insert(ElemName::Alias(i as u64), e);
    }
    let emps = g.alloc(emp_members);
    let mut dept_members = BTreeMap::new();
    for i in 0..4 {
        let mut elems = BTreeMap::new();
        elems.insert(sym(ID), Oop::int(i));
        let d = g.alloc(elems);
        dept_members.insert(ElemName::Alias(i as u64), d);
    }
    let depts = g.alloc(dept_members);

    let q = Query {
        result: vec![(SymbolId(0), Term::Var(VarId(0))), (SymbolId(1), Term::Var(VarId(1)))],
        ranges: vec![
            Range { var: VarId(0), domain: Term::Const(emps) },
            Range { var: VarId(1), domain: Term::Const(depts) },
        ],
        pred: Pred::Cmp(
            Term::Path(VarId(0), vec![sym(DEPT)]),
            CmpOp::Eq,
            Term::Path(VarId(1), vec![sym(ID)]),
        )
        .and(Pred::Cmp(
            Term::Path(VarId(0), vec![sym(SALARY)]),
            CmpOp::Gt,
            Term::Const(Oop::int(22_500)),
        )),
    };
    let naive = eval_naive(&mut g, &q).unwrap();
    assert!(!naive.is_empty());
    // Without indexes.
    let planned = eval_query(&mut g, &q, &IndexCatalog::new()).unwrap();
    assert_eq!(sorted(naive.clone()), sorted(planned));
    // With an index on d!id.
    g.indexed.push((depts, vec![sym(ID)]));
    let mut cat = IndexCatalog::new();
    cat.add_path(vec![sym(ID)]);
    assert!(translate(&q, &cat).uses_index());
    let planned_idx = eval_query(&mut g, &q, &cat).unwrap();
    assert_eq!(sorted(naive), sorted(planned_idx));
}

#[test]
fn membership_and_arithmetic_predicates() {
    // x ∈ S where 2 * x > 5 — ranges over immediates inside a collection.
    let mut g = MockGraph::default();
    let coll: BTreeMap<ElemName, Oop> =
        (0..10).map(|i| (ElemName::Alias(i), Oop::int(i as i64))).collect();
    let coll = g.alloc(coll);
    let q = Query {
        result: vec![(SymbolId(0), Term::Var(VarId(0)))],
        ranges: vec![Range { var: VarId(0), domain: Term::Const(coll) }],
        pred: Pred::Cmp(
            Term::Mul(Box::new(Term::Const(Oop::int(2))), Box::new(Term::Var(VarId(0)))),
            CmpOp::Gt,
            Term::Const(Oop::int(5)),
        ),
    };
    let res = eval_query(&mut g, &q, &IndexCatalog::new()).unwrap();
    assert_eq!(res.len(), 7, "3..9 satisfy 2x > 5");
}

/// Two independent collections of sizes (n, m) with a shared-key element;
/// returns (graph, left coll, right coll, equi-join query).
fn build_join(n: i64, m: i64, key_mod: i64) -> (MockGraph, Query) {
    const ID: u32 = 3;
    let mut g = MockGraph::default();
    let mut left_members = BTreeMap::new();
    for i in 0..n {
        let mut elems = BTreeMap::new();
        elems.insert(sym(DEPT), Oop::int(i % key_mod));
        elems.insert(sym(SALARY), Oop::int(20_000 + i));
        let e = g.alloc(elems);
        left_members.insert(ElemName::Alias(i as u64), e);
    }
    let left = g.alloc(left_members);
    let mut right_members = BTreeMap::new();
    for i in 0..m {
        let mut elems = BTreeMap::new();
        elems.insert(sym(ID), Oop::int(i % key_mod));
        let d = g.alloc(elems);
        right_members.insert(ElemName::Alias(i as u64), d);
    }
    let right = g.alloc(right_members);
    let q = Query {
        result: vec![(SymbolId(0), Term::Var(VarId(0))), (SymbolId(1), Term::Var(VarId(1)))],
        ranges: vec![
            Range { var: VarId(0), domain: Term::Const(left) },
            Range { var: VarId(1), domain: Term::Const(right) },
        ],
        pred: Pred::Cmp(
            Term::Path(VarId(0), vec![sym(DEPT)]),
            CmpOp::Eq,
            Term::Path(VarId(1), vec![sym(ID)]),
        ),
    };
    (g, q)
}

#[test]
fn hash_join_matches_naive_with_linear_row_visits() {
    let (n, m) = (40i64, 30i64);
    let (mut g, q) = build_join(n, m, 6);
    let naive = eval_naive(&mut g, &q).unwrap();
    assert!(!naive.is_empty());

    let (rows, plan, stats) = eval_query_explained(&mut g, &q, &IndexCatalog::new()).unwrap();
    assert!(plan.uses_hash_join(), "{}", plan.describe());
    assert_eq!(sorted(naive.clone()), sorted(rows));
    // O(n + m): each side scanned exactly once.
    assert_eq!(stats.row_visits(), (n + m) as u64);
    assert_eq!(stats.hash_builds, m as u64);
    assert_eq!(stats.hash_probes, n as u64);
    assert_eq!(stats.hash_matches as usize, naive.len());

    // The nested plan agrees but visits O(n·m) rows.
    let nested =
        translate_with(&q, &IndexCatalog::new(), &PlanOptions { hash_joins: false, stats: None });
    assert!(!nested.uses_hash_join());
    let mut nstats = PlanStats::default();
    let nrows = eval_algebra_stats(&mut g, &nested, &q, &mut nstats).unwrap();
    assert_eq!(sorted(naive), sorted(nrows));
    assert_eq!(nstats.row_visits(), (n + n * m) as u64);
}

#[test]
fn hash_join_handles_unhashable_keys_via_equals_fallback() {
    // Join on object-valued keys: MockGraph objects have no default hash
    // image (join_key → None), so every row goes through the pairwise
    // loose-list path — answers must still match naive exactly.
    const REF: u32 = 5;
    let mut g = MockGraph::default();
    let shared: Vec<Oop> = (0..3).map(|_| g.alloc(BTreeMap::new())).collect();
    let mut left_members = BTreeMap::new();
    for i in 0..9usize {
        let mut elems = BTreeMap::new();
        elems.insert(sym(REF), shared[i % 3]);
        let e = g.alloc(elems);
        left_members.insert(ElemName::Alias(i as u64), e);
    }
    let left = g.alloc(left_members);
    let mut right_members = BTreeMap::new();
    for i in 0..4usize {
        let mut elems = BTreeMap::new();
        elems.insert(sym(REF), shared[i % 2]);
        let d = g.alloc(elems);
        right_members.insert(ElemName::Alias(i as u64), d);
    }
    let right = g.alloc(right_members);
    let q = Query {
        result: vec![(SymbolId(0), Term::Var(VarId(0))), (SymbolId(1), Term::Var(VarId(1)))],
        ranges: vec![
            Range { var: VarId(0), domain: Term::Const(left) },
            Range { var: VarId(1), domain: Term::Const(right) },
        ],
        pred: Pred::Cmp(
            Term::Path(VarId(0), vec![sym(REF)]),
            CmpOp::Eq,
            Term::Path(VarId(1), vec![sym(REF)]),
        ),
    };
    let naive = eval_naive(&mut g, &q).unwrap();
    assert!(!naive.is_empty());
    let (rows, plan, _) = eval_query_explained(&mut g, &q, &IndexCatalog::new()).unwrap();
    assert!(plan.uses_hash_join(), "{}", plan.describe());
    assert_eq!(sorted(naive), sorted(rows));
}

#[test]
fn hash_join_with_mixed_int_float_keys() {
    // 1 = 1.0 must land in the same bucket (canonical f64 keying).
    let mut g = MockGraph::default();
    const K: u32 = 7;
    let mk = |g: &mut MockGraph, v: Oop| {
        let mut elems = BTreeMap::new();
        elems.insert(sym(K), v);
        g.alloc(elems)
    };
    let l0 = mk(&mut g, Oop::int(1));
    let l1 = mk(&mut g, Oop::float(2.0));
    let left = g.alloc([(ElemName::Alias(0), l0), (ElemName::Alias(1), l1)].into_iter().collect());
    let r0 = mk(&mut g, Oop::float(1.0));
    let r1 = mk(&mut g, Oop::int(2));
    let right = g.alloc([(ElemName::Alias(0), r0), (ElemName::Alias(1), r1)].into_iter().collect());
    let q = Query {
        result: vec![(SymbolId(0), Term::Var(VarId(0))), (SymbolId(1), Term::Var(VarId(1)))],
        ranges: vec![
            Range { var: VarId(0), domain: Term::Const(left) },
            Range { var: VarId(1), domain: Term::Const(right) },
        ],
        pred: Pred::Cmp(
            Term::Path(VarId(0), vec![sym(K)]),
            CmpOp::Eq,
            Term::Path(VarId(1), vec![sym(K)]),
        ),
    };
    let naive = eval_naive(&mut g, &q).unwrap();
    assert_eq!(naive.len(), 2, "1=1.0 and 2.0=2 both match");
    let (rows, plan, _) = eval_query_explained(&mut g, &q, &IndexCatalog::new()).unwrap();
    assert!(plan.uses_hash_join());
    assert_eq!(sorted(naive), sorted(rows));
}

fn sorted(mut v: Vec<Vec<Oop>>) -> Vec<Vec<Oop>> {
    v.sort_by_key(|t| t.iter().map(|o| o.bits()).collect::<Vec<_>>());
    v
}

proptest! {
    /// Randomized agreement: arbitrary salaries/depts, arbitrary predicate
    /// constants, with and without a directory — algebra ≡ calculus.
    #[test]
    fn algebra_equals_calculus(
        salaries in prop::collection::vec(0i64..8, 1..40),
        key in 0i64..8,
        threshold in 0i64..8,
        with_index in any::<bool>(),
    ) {
        let mut g = MockGraph::default();
        let mut members = BTreeMap::new();
        for (i, s) in salaries.iter().enumerate() {
            let mut elems = BTreeMap::new();
            elems.insert(sym(SALARY), Oop::int(*s));
            elems.insert(sym(DEPT), Oop::int((i as i64) % 3));
            let e = g.alloc(elems);
            members.insert(ElemName::Alias(i as u64), e);
        }
        let coll = g.alloc(members);
        let mut cat = IndexCatalog::new();
        if with_index {
            g.indexed.push((coll, vec![sym(SALARY)]));
            cat.add_path(vec![sym(SALARY)]);
        }
        let q = Query {
            result: vec![(SymbolId(0), Term::Var(VarId(0)))],
            ranges: vec![Range { var: VarId(0), domain: Term::Const(coll) }],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(SALARY)]),
                CmpOp::Eq,
                Term::Const(Oop::int(key)),
            )
            .and(Pred::Cmp(
                Term::Path(VarId(0), vec![sym(DEPT)]),
                CmpOp::Ge,
                Term::Const(Oop::int(threshold)),
            )),
        };
        let naive = eval_naive(&mut g, &q).unwrap();
        let planned = eval_query(&mut g, &q, &cat).unwrap();
        prop_assert_eq!(sorted(naive), sorted(planned));
    }

    /// Randomized equi-joins: the hash plan and the forced nested plan both
    /// reproduce the naive calculus semantics on arbitrary key skews.
    #[test]
    fn hash_join_equals_calculus(
        n in 1i64..25,
        m in 1i64..25,
        key_mod in 1i64..8,
    ) {
        let (mut g, q) = build_join(n, m, key_mod);
        let naive = eval_naive(&mut g, &q).unwrap();
        let (rows, plan, stats) =
            eval_query_explained(&mut g, &q, &IndexCatalog::new()).unwrap();
        prop_assert!(plan.uses_hash_join());
        prop_assert_eq!(sorted(naive.clone()), sorted(rows));
        prop_assert_eq!(stats.row_visits(), (n + m) as u64);
        let nested =
            translate_with(&q, &IndexCatalog::new(), &PlanOptions { hash_joins: false, stats: None });
        let mut nstats = PlanStats::default();
        let nrows = eval_algebra_stats(&mut g, &nested, &q, &mut nstats).unwrap();
        prop_assert_eq!(sorted(naive), sorted(nrows));
        prop_assert_eq!(nstats.row_visits(), (n + n * m) as u64);
    }
}
