//! The GemStone set calculus and set algebra (§3, §5.1, §6).
//!
//! "We have developed a set algebra, and an algorithm to translate a
//! set-calculus expression to a set-algebra expression." The declarative
//! layer is what lets GemStone do "access planning … much more \[than\] with
//! an equivalent query specified procedurally" (§5.2), and §6 notes the
//! OPAL compiler needed "a large addition … to translate calculus
//! expressions into procedural form". This crate is that addition:
//!
//! * [`Query`] — the calculus: range variables over set-valued terms
//!   (domains may mention earlier variables), a predicate, and a result
//!   template;
//! * [`AlgExpr`] — the algebra: dependent scans, selections, index scans,
//!   and the template projection;
//! * [`translate`] — the calculus→algebra algorithm: conjunct extraction,
//!   predicate pushdown, and directory-aware scan replacement;
//! * [`QueryContext`] — the object-graph interface the evaluator runs
//!   against, implemented by the core crate's sessions (and by a mock here
//!   for unit tests).
//!
//! The calculus is deliberately *isomorphic* to the pre-merger STDM calculus
//! in `gemstone-stdm`; it differs in operating over [`Oop`]s and interned
//! [`ElemName`]s so it can run inside the Object Manager with entity
//! identity preserved.

mod algebra;
mod ast;
pub mod stats;
mod translate;

pub use algebra::{
    est_err_pct, eval_algebra, eval_algebra_profiled, eval_algebra_stats, scrape_selectivities,
    AlgExpr, Binding, Env, OpNode, OpProfile, PlanStats,
};
pub use ast::{CmpOp, EnvRead, Pred, Query, Range, Term, VarId};
pub use stats::{
    path_key, pred_key, KeySketch, SelObs, SetStats, StatsCatalog, StatsView, VarStats,
};
pub use translate::{
    plan_query, translate, translate_with, IndexCatalog, PlanDecision, PlanOptions,
};

use gemstone_object::{ElemName, GemResult, Oop, ValueKey};

/// The key a value hashes under in a [`AlgExpr::HashJoin`] table. Reuses
/// the Object Manager's structural key ([`ValueKey`]): `structurally_equal`
/// is *defined* as value-key equality, so hashing by it is exactly
/// consistent with the evaluator's `equals`.
pub type JoinKey = ValueKey;

/// The object-graph view a query evaluates against. Implementations decide
/// how elements are fetched (workspace, permanent store, past state via the
/// time dial) and whether a directory covers a collection.
pub trait QueryContext {
    /// The value of `obj`'s element `name` (nil if absent).
    fn elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop>;

    /// The present element values of a collection, in element-name order.
    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>>;

    /// Structural equivalence (`=`).
    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool>;

    /// Ordering for `<`/`>` comparisons (numbers and strings).
    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<std::cmp::Ordering>>;

    /// If a directory indexes `collection` on `path`, return the members
    /// whose path value equals `key` — otherwise `None` and the evaluator
    /// falls back to a scan. This is how "hints given in OPAL for
    /// structuring directories" (§6) reach query evaluation.
    fn index_lookup(
        &mut self,
        collection: Oop,
        path: &[ElemName],
        key: Oop,
    ) -> GemResult<Option<Vec<Oop>>>;

    /// Range analogue of [`Self::index_lookup`]: members whose path value
    /// lies in `(lo, hi)` with the given inclusivities (`None` bound =
    /// unbounded). Returns `None` when no directory covers the collection.
    fn index_range(
        &mut self,
        _collection: Oop,
        _path: &[ElemName],
        _lo: Option<(Oop, bool)>,
        _hi: Option<(Oop, bool)>,
    ) -> GemResult<Option<Vec<Oop>>> {
        Ok(None)
    }

    /// The hash key of `v` for equi-join tables, or `None` when `v` has no
    /// stable hashable image (such rows join by pairwise `equals` instead,
    /// so `None` is always safe — just slower).
    ///
    /// Contract, for any two values whose keys are both `Some`: the keys
    /// are equal **iff** [`Self::equals`] holds. Matched buckets emit
    /// without re-checking `equals`, so a too-coarse key produces wrong
    /// answers, not just wrong speed. The default covers immediates whose
    /// equality every context shares (numbers with `1 = 1.0` folding,
    /// characters, booleans, nil); NaN maps to `None` because `NaN = NaN`
    /// is false while its bits collide.
    fn join_key(&mut self, v: Oop) -> GemResult<Option<JoinKey>> {
        use gemstone_object::OopKind;
        Ok(match v.kind() {
            OopKind::Int(i) => Some(ValueKey::num(i as f64)),
            OopKind::Float(f) => {
                if f.is_nan() {
                    None
                } else {
                    Some(ValueKey::num(f))
                }
            }
            OopKind::Char(c) => Some(ValueKey::Char(c)),
            OopKind::Nil | OopKind::True | OopKind::False => Some(ValueKey::Imm(v.bits())),
            _ => None,
        })
    }
}

/// Evaluate a calculus query: translate to algebra (using `indexes` to spot
/// usable directories), then run the algebra. Returns one binding tuple per
/// result, in template order.
pub fn eval_query<C: QueryContext>(
    ctx: &mut C,
    query: &Query,
    indexes: &IndexCatalog,
) -> GemResult<Vec<Vec<Oop>>> {
    let (rows, _, _) = eval_query_explained(ctx, query, indexes)?;
    Ok(rows)
}

/// [`eval_query`], additionally returning the chosen plan and the operator
/// counters it accumulated — the payload behind `Session::explain()`.
pub fn eval_query_explained<C: QueryContext>(
    ctx: &mut C,
    query: &Query,
    indexes: &IndexCatalog,
) -> GemResult<(Vec<Vec<Oop>>, AlgExpr, PlanStats)> {
    let (rows, decision, stats) =
        eval_query_explained_with(ctx, query, indexes, &PlanOptions::default())?;
    Ok((rows, decision.plan, stats))
}

/// [`eval_query_explained`] with explicit [`PlanOptions`] (statistics for
/// the cost model ride in on `options.stats`), returning the full
/// [`PlanDecision`] so callers can journal the choice.
pub fn eval_query_explained_with<C: QueryContext>(
    ctx: &mut C,
    query: &Query,
    indexes: &IndexCatalog,
    options: &PlanOptions,
) -> GemResult<(Vec<Vec<Oop>>, PlanDecision, PlanStats)> {
    let decision = plan_query(query, indexes, options);
    let mut stats = PlanStats::default();
    let rows = eval_algebra_stats(ctx, &decision.plan, query, &mut stats)?;
    Ok((rows, decision, stats))
}

/// [`eval_query_explained`] with per-operator profiling: also returns an
/// [`OpProfile`] annotating every algebra node with rows-in/rows-out,
/// hash-build sizes, and inclusive wall time read from `clock`
/// (nanoseconds) — the payload behind `Session::explain_analyze`.
pub fn eval_query_profiled<C: QueryContext>(
    ctx: &mut C,
    query: &Query,
    indexes: &IndexCatalog,
    clock: &dyn Fn() -> u64,
) -> GemResult<(Vec<Vec<Oop>>, AlgExpr, PlanStats, OpProfile)> {
    let (rows, decision, stats, profile) =
        eval_query_profiled_with(ctx, query, indexes, &PlanOptions::default(), clock)?;
    Ok((rows, decision.plan, stats, profile))
}

/// [`eval_query_profiled`] with explicit [`PlanOptions`]: the returned
/// [`OpProfile`] carries the planner's per-operator estimates, so every
/// analyzed run reports estimate vs actual.
pub fn eval_query_profiled_with<C: QueryContext>(
    ctx: &mut C,
    query: &Query,
    indexes: &IndexCatalog,
    options: &PlanOptions,
    clock: &dyn Fn() -> u64,
) -> GemResult<(Vec<Vec<Oop>>, PlanDecision, PlanStats, OpProfile)> {
    let decision = plan_query(query, indexes, options);
    let mut stats = PlanStats::default();
    let (rows, mut profile) = eval_algebra_profiled(ctx, &decision.plan, query, &mut stats, clock)?;
    profile.attach_estimates(&decision.est_rows);
    Ok((rows, decision, stats, profile))
}

/// Evaluate by the calculus' direct semantics (pure nested loops, no
/// planning). The algebra must agree with this — checked by tests and
/// property tests.
pub fn eval_naive<C: QueryContext>(ctx: &mut C, query: &Query) -> GemResult<Vec<Vec<Oop>>> {
    let mut out = Vec::new();
    let mut env: Vec<Oop> = vec![Oop::NIL; query.var_count()];
    naive_ranges(ctx, query, 0, &mut env, &mut out)?;
    Ok(out)
}

fn naive_ranges<C: QueryContext>(
    ctx: &mut C,
    query: &Query,
    depth: usize,
    env: &mut Vec<Oop>,
    out: &mut Vec<Vec<Oop>>,
) -> GemResult<()> {
    if depth == query.ranges.len() {
        if ast::eval_pred(ctx, &query.pred, env)? {
            let mut tuple = Vec::with_capacity(query.result.len());
            for (_, term) in &query.result {
                tuple.push(ast::eval_term(ctx, term, env)?);
            }
            out.push(tuple);
        }
        return Ok(());
    }
    let range = &query.ranges[depth];
    let domain = ast::eval_term(ctx, &range.domain, env)?;
    for v in ctx.elements(domain)? {
        env[range.var.0 as usize] = v;
        naive_ranges(ctx, query, depth + 1, env, out)?;
    }
    env[range.var.0 as usize] = Oop::NIL;
    Ok(())
}
