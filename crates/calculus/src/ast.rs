//! Calculus terms, predicates and queries over the merged data model.

use crate::QueryContext;
use gemstone_object::{ElemName, GemError, GemResult, Oop, SymbolId};
use std::cmp::Ordering;

/// A range variable, indexed densely from 0 in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

/// Read access to variable bindings during evaluation. Implemented by the
/// naive evaluator's dense rows (`[Oop]`) and by the streaming algebra's
/// persistent [`crate::Env`] chains — term/predicate evaluation is generic
/// over both.
pub trait EnvRead {
    /// The value bound to `var` (nil when unbound).
    fn read(&self, var: VarId) -> Oop;
}

impl EnvRead for [Oop] {
    fn read(&self, var: VarId) -> Oop {
        self.get(var.0 as usize).copied().unwrap_or(Oop::NIL)
    }
}

impl EnvRead for Vec<Oop> {
    fn read(&self, var: VarId) -> Oop {
        self.as_slice().read(var)
    }
}

/// A term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A bound variable.
    Var(VarId),
    /// `v!a!b` — path from a bound variable.
    Path(VarId, Vec<ElemName>),
    /// A constant value (immediate or a pre-resolved object).
    Const(Oop),
    Mul(Box<Term>, Box<Term>),
    Add(Box<Term>, Box<Term>),
    Sub(Box<Term>, Box<Term>),
    Div(Box<Term>, Box<Term>),
}

impl Term {
    /// Variables this term mentions.
    pub fn vars(&self, into: &mut Vec<VarId>) {
        match self {
            Term::Var(v) | Term::Path(v, _) => {
                if !into.contains(v) {
                    into.push(*v);
                }
            }
            Term::Const(_) => {}
            Term::Mul(a, b) | Term::Add(a, b) | Term::Sub(a, b) | Term::Div(a, b) => {
                a.vars(into);
                b.vars(into);
            }
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    True,
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
    Cmp(Term, CmpOp, Term),
    /// `x ∈ S` (membership in a set's element values).
    In(Term, Term),
    /// `S ⊆ T`.
    Subset(Term, Term),
}

impl Pred {
    /// Conjunction helper.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Split into top-level conjuncts (for pushdown).
    pub fn conjuncts(self) -> Vec<Pred> {
        match self {
            Pred::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            Pred::True => vec![],
            p => vec![p],
        }
    }

    /// Variables this predicate mentions.
    pub fn vars(&self, into: &mut Vec<VarId>) {
        match self {
            Pred::True => {}
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.vars(into);
                b.vars(into);
            }
            Pred::Not(a) => a.vars(into),
            Pred::Cmp(a, _, b) | Pred::In(a, b) | Pred::Subset(a, b) => {
                a.vars(into);
                b.vars(into);
            }
        }
    }
}

/// A range declaration: `var ∈ domain`.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    pub var: VarId,
    pub domain: Term,
}

/// A calculus query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Output template: label → term.
    pub result: Vec<(SymbolId, Term)>,
    pub ranges: Vec<Range>,
    pub pred: Pred,
}

impl Query {
    /// Number of range variables (they must be densely numbered).
    pub fn var_count(&self) -> usize {
        self.ranges.iter().map(|r| r.var.0 as usize + 1).max().unwrap_or(0)
    }

    /// Every variable the query mentions anywhere — result terms, range
    /// domains, and the predicate — deduplicated, in first-mention order.
    /// Static validators use this to check that all references stay inside
    /// the declared range + capture window.
    pub fn used_vars(&self) -> Vec<VarId> {
        let mut vs = Vec::new();
        for (_, t) in &self.result {
            t.vars(&mut vs);
        }
        for r in &self.ranges {
            r.domain.vars(&mut vs);
        }
        self.pred.vars(&mut vs);
        vs
    }
}

/// Evaluate a term under an environment of variable bindings.
pub fn eval_term<C: QueryContext, E: EnvRead + ?Sized>(
    ctx: &mut C,
    term: &Term,
    env: &E,
) -> GemResult<Oop> {
    match term {
        Term::Var(v) => Ok(env.read(*v)),
        Term::Const(c) => Ok(*c),
        Term::Path(v, names) => {
            let mut cur = env.read(*v);
            for n in names {
                cur = ctx.elem(cur, *n)?;
            }
            Ok(cur)
        }
        Term::Mul(a, b) => arith(ctx, a, b, env, |x, y| x * y),
        Term::Add(a, b) => arith(ctx, a, b, env, |x, y| x + y),
        Term::Sub(a, b) => arith(ctx, a, b, env, |x, y| x - y),
        Term::Div(a, b) => arith(ctx, a, b, env, |x, y| x / y),
    }
}

fn arith<C: QueryContext, E: EnvRead + ?Sized>(
    ctx: &mut C,
    a: &Term,
    b: &Term,
    env: &E,
    f: fn(f64, f64) -> f64,
) -> GemResult<Oop> {
    let av = eval_term(ctx, a, env)?;
    let bv = eval_term(ctx, b, env)?;
    let x = av
        .as_number()
        .ok_or_else(|| GemError::TypeMismatch { expected: "number", got: format!("{av:?}") })?;
    let y = bv
        .as_number()
        .ok_or_else(|| GemError::TypeMismatch { expected: "number", got: format!("{bv:?}") })?;
    // Integral results of integer operands stay SmallIntegers.
    let r = f(x, y);
    if av.as_int().is_some() && bv.as_int().is_some() && r.fract() == 0.0 && r.abs() < 2e17 {
        Ok(Oop::int(r as i64))
    } else {
        Ok(Oop::float(r))
    }
}

/// Evaluate a predicate under an environment.
pub fn eval_pred<C: QueryContext, E: EnvRead + ?Sized>(
    ctx: &mut C,
    pred: &Pred,
    env: &E,
) -> GemResult<bool> {
    match pred {
        Pred::True => Ok(true),
        Pred::And(a, b) => Ok(eval_pred(ctx, a, env)? && eval_pred(ctx, b, env)?),
        Pred::Or(a, b) => Ok(eval_pred(ctx, a, env)? || eval_pred(ctx, b, env)?),
        Pred::Not(a) => Ok(!eval_pred(ctx, a, env)?),
        Pred::Cmp(a, op, b) => {
            let av = eval_term(ctx, a, env)?;
            let bv = eval_term(ctx, b, env)?;
            match op {
                CmpOp::Eq => ctx.equals(av, bv),
                CmpOp::Ne => Ok(!ctx.equals(av, bv)?),
                CmpOp::Lt => Ok(ctx.compare(av, bv)? == Some(Ordering::Less)),
                CmpOp::Le => {
                    Ok(matches!(ctx.compare(av, bv)?, Some(Ordering::Less | Ordering::Equal)))
                }
                CmpOp::Gt => Ok(ctx.compare(av, bv)? == Some(Ordering::Greater)),
                CmpOp::Ge => {
                    Ok(matches!(ctx.compare(av, bv)?, Some(Ordering::Greater | Ordering::Equal)))
                }
            }
        }
        Pred::In(x, s) => {
            let xv = eval_term(ctx, x, env)?;
            let sv = eval_term(ctx, s, env)?;
            for m in ctx.elements(sv)? {
                if ctx.equals(xv, m)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Pred::Subset(a, b) => {
            let av = eval_term(ctx, a, env)?;
            let bv = eval_term(ctx, b, env)?;
            let members_b = ctx.elements(bv)?;
            'outer: for m in ctx.elements(av)? {
                for n in &members_b {
                    if ctx.equals(m, *n)? {
                        continue 'outer;
                    }
                }
                return Ok(false);
            }
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let p = Pred::Cmp(Term::Const(Oop::int(1)), CmpOp::Lt, Term::Const(Oop::int(2)))
            .and(Pred::True.and(Pred::In(Term::Const(Oop::int(3)), Term::Var(VarId(0)))));
        let cs = p.conjuncts();
        assert_eq!(cs.len(), 2, "True vanishes, nested Ands flatten");
    }

    #[test]
    fn var_collection() {
        let t = Term::Mul(Box::new(Term::Path(VarId(1), vec![])), Box::new(Term::Var(VarId(0))));
        let mut vs = Vec::new();
        t.vars(&mut vs);
        assert_eq!(vs.len(), 2);
        let p = Pred::Not(Box::new(Pred::Cmp(Term::Var(VarId(2)), CmpOp::Eq, Term::Var(VarId(2)))));
        let mut vs = Vec::new();
        p.vars(&mut vs);
        assert_eq!(vs, vec![VarId(2)]);
    }

    #[test]
    fn var_count_from_ranges() {
        let q = Query {
            result: vec![],
            ranges: vec![
                Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                Range { var: VarId(2), domain: Term::Const(Oop::NIL) },
            ],
            pred: Pred::True,
        };
        assert_eq!(q.var_count(), 3);
    }

    #[test]
    fn used_vars_spans_result_ranges_pred() {
        let q = Query {
            result: vec![(SymbolId(0), Term::Var(VarId(0)))],
            ranges: vec![Range { var: VarId(0), domain: Term::Var(VarId(3)) }],
            pred: Pred::Cmp(Term::Path(VarId(0), vec![]), CmpOp::Lt, Term::Var(VarId(2))),
        };
        assert_eq!(q.used_vars(), vec![VarId(0), VarId(3), VarId(2)]);
    }
}
