//! Live distribution statistics feeding the cost-based planner.
//!
//! Three layers, mirroring what a 1984 access planner could have kept in
//! the directory machinery (§5.2: "access planning … much more \[than\]
//! with an equivalent query specified procedurally"):
//!
//! * [`KeySketch`] — a bounded equi-depth histogram plus distinct-count
//!   estimate over one directory's key distribution. Built from the full
//!   key multiset, so it is a *pure function of the multiset*: insert
//!   order cannot change it, and [`KeySketch::merge`] answers rank/
//!   quantile queries within a self-reported error bound ([`KeySketch::fuzz`]).
//! * [`SetStats`] — per-set cardinality, the sketches per indexed path,
//!   and per-predicate observed selectivities scraped from `OpProfile`
//!   rows_in/rows_out after each analyzed statement.
//! * [`StatsCatalog`] / [`StatsView`] — the durable catalog (persisted in
//!   the store's metadata, updated under the commit choke point) and the
//!   per-query resolved view the translator's cost model consumes (one
//!   optional [`VarStats`] per range variable).
//!
//! ## Error bound
//!
//! Every rank query `rank(v)` (mass strictly below `v`) answered by a
//! sketch differs from the true multiset rank by at most `fuzz`: exact
//! points contribute exactly, and collapsed points displace at most their
//! own mass across their key span, with `fuzz` maintained as the maximum
//! collapsed-point mass (plus the inputs' fuzz on merge). The property
//! tests assert this bound holds under arbitrary partitioning and merge
//! order.

use crate::ast::{CmpOp, Pred, Term};
use gemstone_object::ElemName;
use std::collections::BTreeMap;

/// Histogram resolution: a sketch never holds more points than this.
pub const SKETCH_MAX_POINTS: usize = 64;

/// Default equality selectivity when no sketch or observation applies.
pub const DEFAULT_EQ_SEL: f64 = 0.1;
/// Default inequality/range selectivity without statistics.
pub const DEFAULT_CMP_SEL: f64 = 1.0 / 3.0;
/// Assumed cardinality of a set the catalog knows nothing about.
pub const DEFAULT_CARD: u64 = 256;
/// Assumed fan-out of a dependent domain (`m ∈ d!Managers`).
pub const DEFAULT_FANOUT: u64 = 8;

/// A bounded equi-depth histogram over one key distribution.
///
/// `points` is sorted by key; each entry is `(key, count)`. A point is
/// either *exact* (one real key) or *collapsed* (the weighted mean of a
/// key span whose combined mass is its count). `fuzz` bounds the rank
/// error any collapsed point can introduce.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KeySketch {
    /// Total number of keys summarized (with multiplicity).
    pub total: u64,
    /// Distinct-key estimate (exact when built un-collapsed from raw keys).
    pub distinct: u64,
    /// Documented rank-error bound: `|rank(v) - true_rank(v)| <= fuzz`.
    pub fuzz: u64,
    /// Sorted `(key, count)` points, at most [`SKETCH_MAX_POINTS`].
    pub points: Vec<(f64, u64)>,
}

impl KeySketch {
    /// Build from a raw key multiset. NaN keys are dropped (they compare
    /// with nothing, so no range or equality probe can reach them).
    pub fn from_keys(keys: &[f64]) -> KeySketch {
        let mut sorted: Vec<f64> = keys.iter().copied().filter(|k| !k.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut pairs: Vec<(f64, u64)> = Vec::new();
        for k in sorted {
            match pairs.last_mut() {
                Some((pk, c)) if pk.to_bits() == k.to_bits() => *c += 1,
                _ => pairs.push((k, 1)),
            }
        }
        let total: u64 = pairs.iter().map(|(_, c)| c).sum();
        let distinct = pairs.len() as u64;
        let mut fuzz = 0;
        collapse(&mut pairs, &mut fuzz);
        KeySketch { total, distinct, fuzz, points: pairs }
    }

    /// Merge two sketches. Equal keys combine exactly; the result is
    /// re-collapsed to the point cap and its `fuzz` is the sum of the
    /// inputs' bounds plus any new collapse error — still a sound rank
    /// bound, whatever order a partition is merged in.
    pub fn merge(&self, other: &KeySketch) -> KeySketch {
        let mut pairs: Vec<(f64, u64)> = Vec::new();
        let mut all: Vec<(f64, u64)> = self.points.iter().chain(&other.points).copied().collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (k, c) in all {
            match pairs.last_mut() {
                Some((pk, pc)) if pk.to_bits() == k.to_bits() => *pc += c,
                _ => pairs.push((k, c)),
            }
        }
        let distinct = (pairs.len() as u64).max(self.distinct.max(other.distinct));
        let mut fuzz = self.fuzz + other.fuzz;
        collapse(&mut pairs, &mut fuzz);
        KeySketch { total: self.total + other.total, distinct, fuzz, points: pairs }
    }

    /// Estimated mass strictly below `v`.
    pub fn rank(&self, v: f64) -> u64 {
        self.points.iter().filter(|(k, _)| *k < v).map(|(_, c)| c).sum()
    }

    /// Estimated mass at or below `v`.
    pub fn rank_le(&self, v: f64) -> u64 {
        self.points.iter().filter(|(k, _)| *k <= v).map(|(_, c)| c).sum()
    }

    /// The smallest key whose cumulative mass reaches quantile `q` ∈ \[0,1\].
    pub fn quantile(&self, q: f64) -> f64 {
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (k, c) in &self.points {
            cum += c;
            if cum >= target {
                return *k;
            }
        }
        self.points.last().map(|(k, _)| *k).unwrap_or(0.0)
    }

    /// Estimated selectivity of `key = v` against this distribution.
    pub fn selectivity_eq(&self, v: f64) -> f64 {
        if self.total == 0 {
            return DEFAULT_EQ_SEL;
        }
        let floor = 0.5 / self.total as f64;
        if let Some((_, c)) = self.points.iter().find(|(k, _)| k.to_bits() == v.to_bits()) {
            return (*c as f64 / self.total as f64).max(floor);
        }
        let lo = self.points.first().map(|(k, _)| *k).unwrap_or(0.0);
        let hi = self.points.last().map(|(k, _)| *k).unwrap_or(0.0);
        if v >= lo && v <= hi {
            (1.0 / self.distinct.max(1) as f64).max(floor)
        } else {
            floor
        }
    }

    /// Estimated selectivity of an interval probe; `None` = unbounded.
    pub fn selectivity_range(&self, lo: Option<(f64, bool)>, hi: Option<(f64, bool)>) -> f64 {
        if self.total == 0 {
            return DEFAULT_CMP_SEL;
        }
        let upper = match hi {
            Some((h, true)) => self.rank_le(h),
            Some((h, false)) => self.rank(h),
            None => self.total,
        };
        let lower = match lo {
            Some((l, true)) => self.rank(l),
            Some((l, false)) => self.rank_le(l),
            None => 0,
        };
        let mass = upper.saturating_sub(lower);
        (mass as f64 / self.total as f64).clamp(0.5 / self.total as f64, 1.0)
    }

    /// The key range `[min, max]` this sketch covers (`None` when empty).
    pub fn bounds(&self) -> Option<(f64, f64)> {
        let lo = self.points.first().map(|(k, _)| *k)?;
        let hi = self.points.last().map(|(k, _)| *k)?;
        Some((lo, hi))
    }

    /// Fraction of the cross product surviving an equi-join between this
    /// key column (left) and `right`: the containment assumption applied
    /// inside the overlap window of the two key ranges. Without the
    /// window, non-overlapping foreign keys (probes from `[1,40]` against
    /// a column concentrated in `[100,500]`) are wildly overestimated —
    /// exactly the drift mode the re-optimization protocol must converge
    /// out of, not re-trigger.
    ///
    /// `|L ⋈ R| ≈ |L∩W| · |R∩W| / max(d_L∩W, d_R∩W)` with `W` the range
    /// intersection; per-window distinct counts scale with each side's
    /// row fraction in `W` (uniform-spread assumption).
    pub fn equi_join_selectivity(&self, right: &KeySketch) -> f64 {
        let (Some((llo, lhi)), Some((rlo, rhi))) = (self.bounds(), right.bounds()) else {
            return 1.0 / right.distinct.max(1) as f64;
        };
        let (lo, hi) = (llo.max(rlo), lhi.min(rhi));
        if lo > hi {
            return 0.0; // disjoint key ranges: nothing can match
        }
        let fl = self.selectivity_range(Some((lo, true)), Some((hi, true)));
        let fr = right.selectivity_range(Some((lo, true)), Some((hi, true)));
        let dl = (self.distinct as f64 * fl).max(1.0);
        let dr = (right.distinct as f64 * fr).max(1.0);
        (fl * fr / dl.max(dr)).clamp(0.0, 1.0)
    }

    /// Exact wire encoding of the points (`hexbits:hexcount,…`) — f64 keys
    /// go through `to_bits`, so journal round-trips reproduce the sketch
    /// bit for bit.
    pub fn encode_points(&self) -> String {
        let mut s = String::new();
        for (i, (k, c)) in self.points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{:x}:{:x}", k.to_bits(), c));
        }
        s
    }

    /// Inverse of [`KeySketch::encode_points`].
    pub fn decode_points(s: &str) -> Option<Vec<(f64, u64)>> {
        if s.is_empty() {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        for part in s.split(',') {
            let (bits, count) = part.split_once(':')?;
            let k = f64::from_bits(u64::from_str_radix(bits, 16).ok()?);
            let c = u64::from_str_radix(count, 16).ok()?;
            out.push((k, c));
        }
        Some(out)
    }
}

/// Collapse a sorted point list down to [`SKETCH_MAX_POINTS`], folding the
/// lightest adjacent pair into its weighted mean each step and keeping
/// `fuzz` at the maximum collapsed-point mass. Over-long inputs first go
/// through one equi-depth pass so construction stays near-linear.
fn collapse(points: &mut Vec<(f64, u64)>, fuzz: &mut u64) {
    if points.len() > SKETCH_MAX_POINTS * 4 {
        let total: u64 = points.iter().map(|(_, c)| c).sum();
        let depth = (total / (SKETCH_MAX_POINTS as u64 * 2)).max(1);
        let mut bucketed: Vec<(f64, u64)> = Vec::with_capacity(SKETCH_MAX_POINTS * 2 + 1);
        let (mut mass, mut wsum) = (0u64, 0f64);
        for (k, c) in points.iter() {
            mass += c;
            wsum += k * *c as f64;
            if mass >= depth {
                bucketed.push((wsum / mass as f64, mass));
                *fuzz = (*fuzz).max(mass);
                mass = 0;
                wsum = 0.0;
            }
        }
        if mass > 0 {
            bucketed.push((wsum / mass as f64, mass));
            *fuzz = (*fuzz).max(mass);
        }
        *points = bucketed;
    }
    while points.len() > SKETCH_MAX_POINTS {
        let mut best = 0;
        let mut best_mass = u64::MAX;
        for i in 0..points.len() - 1 {
            let m = points[i].1 + points[i + 1].1;
            if m < best_mass {
                best_mass = m;
                best = i;
            }
        }
        let (k1, c1) = points[best];
        let (k2, c2) = points[best + 1];
        let merged = ((k1 * c1 as f64 + k2 * c2 as f64) / (c1 + c2) as f64, c1 + c2);
        points[best] = merged;
        points.remove(best + 1);
        *fuzz = (*fuzz).max(c1 + c2);
    }
}

/// One predicate's observed row flow, accumulated across analyzed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelObs {
    pub rows_in: u64,
    pub rows_out: u64,
}

impl SelObs {
    /// Fold one more observation in.
    pub fn observe(&mut self, rows_in: u64, rows_out: u64) {
        self.rows_in = self.rows_in.saturating_add(rows_in);
        self.rows_out = self.rows_out.saturating_add(rows_out);
    }

    /// The observed selectivity, once any rows have flowed.
    pub fn selectivity(&self) -> Option<f64> {
        (self.rows_in > 0).then(|| self.rows_out as f64 / self.rows_in as f64)
    }
}

/// Everything the catalog knows about one committed set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SetStats {
    /// Member count at `updated_at`.
    pub cardinality: u64,
    /// Store time of the last refresh (staleness = now − this).
    pub updated_at: u64,
    /// Key-distribution sketches per indexed path ([`path_key`] keyed).
    pub sketches: BTreeMap<String, KeySketch>,
    /// Observed selectivities per pushed-down predicate ([`pred_key`] keyed).
    pub predicates: BTreeMap<String, SelObs>,
    /// Set when a drift episode implicated this set: the next planning
    /// pass refreshes it before costing (the re-optimization protocol).
    pub stale: bool,
}

/// The durable statistics catalog, keyed by committed collection identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsCatalog {
    pub sets: BTreeMap<u64, SetStats>,
}

impl StatsCatalog {
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The entry for `goop`, created empty on first touch.
    pub fn entry(&mut self, goop: u64) -> &mut SetStats {
        self.sets.entry(goop).or_default()
    }

    pub fn get(&self, goop: u64) -> Option<&SetStats> {
        self.sets.get(&goop)
    }

    /// Flag `goop` for refresh-before-next-plan (drift response).
    pub fn mark_stale(&mut self, goop: u64) {
        if let Some(s) = self.sets.get_mut(&goop) {
            s.stale = true;
        }
    }
}

/// Statistics resolved for one range variable of one query.
#[derive(Debug, Clone, Default)]
pub struct VarStats {
    pub cardinality: u64,
    pub sketches: BTreeMap<String, KeySketch>,
    /// Observed selectivity per predicate key.
    pub predicates: BTreeMap<String, f64>,
}

impl VarStats {
    /// Resolve a catalog entry into the planner's view.
    pub fn from_set(set: &SetStats) -> VarStats {
        VarStats {
            cardinality: set.cardinality,
            sketches: set.sketches.clone(),
            predicates: set
                .predicates
                .iter()
                .filter_map(|(k, o)| o.selectivity().map(|s| (k.clone(), s)))
                .collect(),
        }
    }

    /// The sketch covering `path`, if any.
    pub fn sketch(&self, path: &[ElemName]) -> Option<&KeySketch> {
        self.sketches.get(&path_key(path))
    }
}

/// The cost model's input: one optional [`VarStats`] per range variable,
/// indexed by `VarId`. A missing entry falls back to the defaults.
#[derive(Debug, Clone, Default)]
pub struct StatsView {
    pub per_var: Vec<Option<VarStats>>,
}

impl StatsView {
    pub fn var(&self, var: u16) -> Option<&VarStats> {
        self.per_var.get(var as usize).and_then(|v| v.as_ref())
    }
}

/// Canonical symbol-table-free key for an element path (`s3.i0`, …) —
/// shared by the catalog writers in core and the cost model here.
pub fn path_key(path: &[ElemName]) -> String {
    let mut s = String::new();
    for (i, e) in path.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        match e {
            ElemName::Int(n) => s.push_str(&format!("i{n}")),
            ElemName::Sym(id) => s.push_str(&format!("s{}", id.0)),
            ElemName::Alias(a) => s.push_str(&format!("a{a}")),
        }
    }
    s
}

fn term_key(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("v{}", v.0),
        Term::Path(v, p) => format!("v{}!{}", v.0, path_key(p)),
        Term::Const(o) => match o.as_number() {
            Some(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("c{}", n as i64),
            Some(n) => format!("c{n}"),
            None => "c?".into(),
        },
        Term::Mul(a, b) => format!("mul({},{})", term_key(a), term_key(b)),
        Term::Add(a, b) => format!("add({},{})", term_key(a), term_key(b)),
        Term::Sub(a, b) => format!("sub({},{})", term_key(a), term_key(b)),
        Term::Div(a, b) => format!("div({},{})", term_key(a), term_key(b)),
    }
}

/// Canonical key for one predicate conjunct, stable across runs — how
/// observed selectivities find their way back to the same conjunct.
pub fn pred_key(p: &Pred) -> String {
    match p {
        Pred::True => "true".into(),
        Pred::And(a, b) => format!("and({},{})", pred_key(a), pred_key(b)),
        Pred::Or(a, b) => format!("or({},{})", pred_key(a), pred_key(b)),
        Pred::Not(a) => format!("not({})", pred_key(a)),
        Pred::Cmp(a, op, b) => {
            let o = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{}{}{}", term_key(a), o, term_key(b))
        }
        Pred::In(a, b) => format!("in({},{})", term_key(a), term_key(b)),
        Pred::Subset(a, b) => format!("subset({},{})", term_key(a), term_key(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarId;
    use gemstone_object::{Oop, SymbolId};

    #[test]
    fn exact_sketch_is_exact() {
        let keys: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let s = KeySketch::from_keys(&keys);
        assert_eq!(s.total, 50);
        assert_eq!(s.distinct, 10);
        assert_eq!(s.fuzz, 0, "under the cap nothing collapses");
        assert_eq!(s.rank(5.0), 25);
        assert_eq!(s.rank_le(5.0), 30);
        assert!((s.selectivity_eq(3.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn insert_order_cannot_matter() {
        let mut keys: Vec<f64> = (0..500).map(|i| (i * 7 % 113) as f64).collect();
        let a = KeySketch::from_keys(&keys);
        keys.reverse();
        keys.rotate_left(137);
        let b = KeySketch::from_keys(&keys);
        assert_eq!(a, b, "a sketch is a pure function of the key multiset");
    }

    #[test]
    fn collapse_respects_cap_and_reports_fuzz() {
        let keys: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let s = KeySketch::from_keys(&keys);
        assert!(s.points.len() <= SKETCH_MAX_POINTS);
        assert_eq!(s.total, 10_000);
        assert!(s.fuzz > 0);
        // Rank answers stay within the documented bound.
        for v in [0.0, 777.0, 5000.0, 9999.0] {
            let true_rank = v as u64;
            let got = s.rank(v);
            assert!(
                got.abs_diff(true_rank) <= s.fuzz,
                "rank({v}) = {got}, true {true_rank}, fuzz {}",
                s.fuzz
            );
        }
    }

    #[test]
    fn merge_bound_holds() {
        let a_keys: Vec<f64> = (0..3000).map(|i| i as f64).collect();
        let b_keys: Vec<f64> = (1500..4500).map(|i| i as f64).collect();
        let a = KeySketch::from_keys(&a_keys);
        let b = KeySketch::from_keys(&b_keys);
        let m = a.merge(&b);
        assert_eq!(m.total, 6000);
        let whole: Vec<f64> = a_keys.iter().chain(&b_keys).copied().collect();
        let exact = KeySketch::from_keys(&whole);
        for v in [100.0, 2000.0, 4400.0] {
            let true_rank = whole.iter().filter(|k| **k < v).count() as u64;
            assert!(m.rank(v).abs_diff(true_rank) <= m.fuzz);
            assert!(exact.rank(v).abs_diff(true_rank) <= exact.fuzz);
        }
        assert_eq!(a.merge(&b), b.merge(&a), "merge is symmetric");
    }

    #[test]
    fn selectivities_and_quantiles() {
        // 90 copies of 1.0, 10 copies of 100.0 — heavy skew.
        let mut keys = vec![1.0; 90];
        keys.extend(vec![100.0; 10]);
        let s = KeySketch::from_keys(&keys);
        assert!((s.selectivity_eq(1.0) - 0.9).abs() < 1e-12);
        assert!((s.selectivity_eq(100.0) - 0.1).abs() < 1e-12);
        assert!(s.selectivity_eq(7.0) <= 0.5, "absent in-range key ≈ 1/distinct");
        assert_eq!(s.quantile(0.5), 1.0);
        assert_eq!(s.quantile(0.95), 100.0);
        let r = s.selectivity_range(Some((0.0, false)), Some((50.0, true)));
        assert!((r - 0.9).abs() < 1e-12, "{r}");
    }

    #[test]
    fn points_encode_decode_roundtrip() {
        let keys: Vec<f64> = vec![-3.25, 0.0, 0.5, 1e18, 7.0, 7.0];
        let s = KeySketch::from_keys(&keys);
        let wire = s.encode_points();
        assert_eq!(KeySketch::decode_points(&wire).unwrap(), s.points);
        assert_eq!(KeySketch::decode_points("").unwrap(), Vec::<(f64, u64)>::new());
        assert!(KeySketch::decode_points("zz").is_none());
    }

    #[test]
    fn sel_obs_accumulates() {
        let mut o = SelObs::default();
        assert_eq!(o.selectivity(), None);
        o.observe(100, 10);
        o.observe(100, 30);
        assert!((o.selectivity().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn catalog_staleness_protocol() {
        let mut c = StatsCatalog::default();
        c.entry(7).cardinality = 42;
        c.mark_stale(7);
        c.mark_stale(99); // unknown sets are ignored
        assert!(c.get(7).unwrap().stale);
        assert_eq!(c.sets.len(), 1);
    }

    #[test]
    fn keys_are_canonical() {
        let p = vec![ElemName::Sym(SymbolId(3)), ElemName::Int(0), ElemName::Alias(9)];
        assert_eq!(path_key(&p), "s3.i0.a9");
        let pred = Pred::Cmp(
            Term::Path(VarId(1), vec![ElemName::Sym(SymbolId(3))]),
            CmpOp::Gt,
            Term::Const(Oop::int(100)),
        );
        assert_eq!(pred_key(&pred), "v1!s3>c100");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Partition a multiset arbitrarily, sketch each part, merge in
            /// the given order: rank answers stay inside the merged
            /// sketch's self-reported bound. This is satellite (c)'s
            /// "merge/insert order doesn't change quantile answers beyond
            /// the documented bound".
            #[test]
            fn partition_merge_within_fuzz(
                raw in proptest::collection::vec(-1000i64..1000, 1..400),
                cuts in proptest::collection::vec(0usize..400, 0..4),
            ) {
                let keys: Vec<f64> = raw.iter().map(|k| *k as f64).collect();
                let mut bounds: Vec<usize> =
                    cuts.iter().map(|c| c % keys.len()).collect();
                bounds.push(0);
                bounds.push(keys.len());
                bounds.sort_unstable();
                let mut merged: Option<KeySketch> = None;
                for w in bounds.windows(2) {
                    let part = KeySketch::from_keys(&keys[w[0]..w[1]]);
                    merged = Some(match merged {
                        None => part,
                        Some(m) => m.merge(&part),
                    });
                }
                let m = merged.unwrap();
                prop_assert_eq!(m.total, keys.len() as u64);
                for v in [-1000.0, -1.0, 0.0, 3.0, 999.0] {
                    let true_rank = keys.iter().filter(|k| **k < v).count() as u64;
                    prop_assert!(
                        m.rank(v).abs_diff(true_rank) <= m.fuzz,
                        "rank({}) = {} true {} fuzz {}", v, m.rank(v), true_rank, m.fuzz
                    );
                }
            }

            /// The wire form reproduces the points bit for bit — what the
            /// journal's `StatsUpdate` replay relies on.
            #[test]
            fn wire_roundtrip_is_exact(
                raw in proptest::collection::vec(i64::MIN..i64::MAX, 0..300),
            ) {
                // The vendored proptest has no float strategies; divide to
                // cover non-integral keys (bit patterns still exercise the
                // full mantissa).
                let keys: Vec<f64> = raw.iter().map(|k| *k as f64 / 7.0).collect();
                let s = KeySketch::from_keys(&keys);
                prop_assert_eq!(KeySketch::decode_points(&s.encode_points()).unwrap(), s.points);
            }
        }
    }
}
