//! The calculus → algebra translation algorithm, and the cost-based
//! planner layered on top of it.
//!
//! §3 / §8: the translation algorithm ("Fred Boals did the initial work on
//! the set calculus to set algebra translation algorithm, and Bob Johnson
//! brought it to its current form"). The strategy:
//!
//! 1. split the predicate into conjuncts;
//! 2. visit ranges in declaration order, building a left-deep tree of
//!    dependent scans;
//! 3. *push down* each conjunct to the earliest point where all its
//!    variables are bound;
//! 4. when the conjunct being pushed is an equality between the newly
//!    scanned variable's path and an already-computable key, and a
//!    directory plausibly covers that path, fuse scan + selection into an
//!    [`AlgExpr::IndexScan`];
//! 5. when a new range is *independent* of everything bound so far (its
//!    domain and scan terms mention no earlier variable) and an equality
//!    conjunct links it to the bound side (`l!path = r!path`), replace the
//!    nested loop with an [`AlgExpr::HashJoin`] — conjuncts over the new
//!    variable alone are pushed onto its scan *before* the join, so the
//!    build side hashes only surviving rows.
//!
//! With statistics ([`PlanOptions::stats`]), [`plan_query`] additionally
//! enumerates every dependency-respecting left-deep range order (plus a
//! scan-only variant per order, so index-vs-scan is a costed choice, not
//! a reflex), estimates each candidate with the cost model below, and
//! picks the cheapest — recording the considered alternatives so the
//! `PlanChoice` journal event can show its work. Without statistics the
//! declaration-order plan is emitted unchanged (`cost_based = false`),
//! which keeps the fixed PR 1 shapes byte-for-byte stable.

use crate::algebra::AlgExpr;
use crate::ast::{CmpOp, Pred, Query, Term, VarId};
use crate::stats::{
    pred_key, StatsView, DEFAULT_CARD, DEFAULT_CMP_SEL, DEFAULT_EQ_SEL, DEFAULT_FANOUT,
};
use gemstone_object::ElemName;
use std::collections::HashSet;

/// Which element paths have directories built over them. Translation only
/// needs plausibility; the [`crate::QueryContext`] makes the final call per
/// collection at run time.
#[derive(Debug, Default, Clone)]
pub struct IndexCatalog {
    paths: HashSet<Vec<ElemName>>,
}

impl IndexCatalog {
    /// An empty catalog (every query plans as pure scans).
    pub fn new() -> IndexCatalog {
        IndexCatalog::default()
    }

    /// Register that directories exist over `path`.
    pub fn add_path(&mut self, path: Vec<ElemName>) {
        self.paths.insert(path);
    }

    /// True if some directory covers `path`.
    pub fn covers(&self, path: &[ElemName]) -> bool {
        self.paths.contains(path)
    }
}

/// Options steering plan selection.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Rewrite independent, equality-linked range pairs into hash joins.
    /// Off forces the pure nested-loop shape (used by benchmarks to measure
    /// the plans against each other on identical queries).
    pub hash_joins: bool,
    /// Statistics resolved for this query's range variables. `None` plans
    /// in declaration order exactly as before; `Some` turns on cost-based
    /// join ordering and index-vs-scan choice.
    pub stats: Option<StatsView>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { hash_joins: true, stats: None }
    }
}

/// Candidate-order enumeration cap (5! — every order of a 5-way join).
const MAX_ORDERS: usize = 120;
/// How many considered alternatives a decision records for the journal.
const MAX_ALTERNATIVES: usize = 8;
/// Per-probe overhead charged to a directory lookup, in row-visit units.
const INDEX_PROBE_COST: f64 = 1.0;

/// The planner's full answer: the plan plus everything the observability
/// contract wants to know about how it was chosen.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The chosen plan.
    pub plan: AlgExpr,
    /// Canonical plan string (`plan.describe()`), the exact-match identity
    /// used by journal events and the plan-regression gate.
    pub canon: String,
    /// Estimated rows_out per operator, in the same pre-order as
    /// [`crate::OpProfile`] nodes — zipped against actuals after a run.
    pub est_rows: Vec<u64>,
    /// Estimated cost of the chosen plan (row-visit units).
    pub est_cost: f64,
    /// Considered `(canonical plan, estimated cost)` pairs, chosen first.
    pub alternatives: Vec<(String, f64)>,
    /// True when statistics actually drove the choice.
    pub cost_based: bool,
}

/// Translate a calculus query into an algebra plan with default options.
pub fn translate(query: &Query, indexes: &IndexCatalog) -> AlgExpr {
    translate_with(query, indexes, &PlanOptions::default())
}

/// Translate a calculus query into an algebra plan.
pub fn translate_with(query: &Query, indexes: &IndexCatalog, options: &PlanOptions) -> AlgExpr {
    plan_query(query, indexes, options).plan
}

/// Plan a query and report the decision. Without statistics this is the
/// fixed declaration-order translation; with them, the cheapest admissible
/// candidate by the cost model.
pub fn plan_query(query: &Query, indexes: &IndexCatalog, options: &PlanOptions) -> PlanDecision {
    let identity: Vec<usize> = (0..query.ranges.len()).collect();
    let view = options.stats.as_ref();
    if view.is_none() || query.ranges.len() < 2 {
        let plan = build_plan(query, &identity, indexes, options);
        let mut est_rows = Vec::new();
        let est_cost = estimate(&plan, view, &mut est_rows);
        return PlanDecision {
            canon: plan.describe(),
            est_rows,
            est_cost,
            alternatives: vec![(plan.describe(), est_cost)],
            cost_based: false,
            plan,
        };
    }
    let empty = IndexCatalog::new();
    let mut candidates: Vec<(AlgExpr, f64, Vec<u64>)> = Vec::new();
    for order in admissible_orders(query, MAX_ORDERS) {
        // Index-using variant first, then the scan-only variant: on a cost
        // tie the earlier candidate (and the identity order) wins.
        for catalog in [indexes, &empty] {
            let plan = build_plan(query, &order, catalog, options);
            if candidates.iter().any(|(p, _, _)| *p == plan) {
                continue;
            }
            let mut est_rows = Vec::new();
            let cost = estimate(&plan, view, &mut est_rows);
            candidates.push((plan, cost, est_rows));
        }
    }
    let best = candidates
        .iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| a.1.partial_cmp(&b.1).unwrap().then(ai.cmp(bi)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut alternatives = vec![(candidates[best].0.describe(), candidates[best].1)];
    for (i, (p, c, _)) in candidates.iter().enumerate() {
        if i != best && alternatives.len() < MAX_ALTERNATIVES {
            alternatives.push((p.describe(), *c));
        }
    }
    let (plan, est_cost, est_rows) = candidates.swap_remove(best);
    PlanDecision {
        canon: plan.describe(),
        est_rows,
        est_cost,
        alternatives,
        cost_based: true,
        plan,
    }
}

/// Every range order whose dependent domains stay to the right of the
/// variables they mention, up to `cap`. Declaration order comes first.
fn admissible_orders(query: &Query, cap: usize) -> Vec<Vec<usize>> {
    fn rec(
        query: &Query,
        chosen: &mut Vec<usize>,
        bound: &mut Vec<VarId>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if chosen.len() == query.ranges.len() {
            out.push(chosen.clone());
            return;
        }
        for i in 0..query.ranges.len() {
            if chosen.contains(&i) {
                continue;
            }
            let mut vs = Vec::new();
            query.ranges[i].domain.vars(&mut vs);
            if vs.iter().all(|v| bound.contains(v)) {
                chosen.push(i);
                bound.push(query.ranges[i].var);
                rec(query, chosen, bound, out, cap);
                bound.pop();
                chosen.pop();
            }
        }
    }
    let mut out = Vec::new();
    rec(query, &mut Vec::new(), &mut Vec::new(), &mut out, cap);
    out
}

/// The translation loop proper, visiting ranges in `order` (indices into
/// `query.ranges`). `order = 0..n` reproduces the historical algorithm.
fn build_plan(
    query: &Query,
    order: &[usize],
    indexes: &IndexCatalog,
    options: &PlanOptions,
) -> AlgExpr {
    let mut remaining: Vec<Pred> = query.pred.clone().conjuncts();
    let mut bound: Vec<VarId> = Vec::new();
    let mut plan = AlgExpr::Unit;

    for &ri in order {
        let range = &query.ranges[ri];
        // Try to find an indexable equality conjunct for this range's var,
        // then fall back to range-bound conjuncts.
        let mut fused: Option<(Vec<ElemName>, Term)> = None;
        if let Some(pos) =
            remaining.iter().position(|c| indexable_key(c, range.var, &bound, indexes).is_some())
        {
            let c = remaining.remove(pos);
            fused = indexable_key(&c, range.var, &bound, indexes);
        }
        let mut scan = match fused {
            Some((path, key)) => {
                AlgExpr::IndexScan { var: range.var, domain: range.domain.clone(), path, key }
            }
            None => match extract_range_bounds(&mut remaining, range.var, &bound, indexes) {
                Some((path, lo, hi)) => AlgExpr::IndexRangeScan {
                    var: range.var,
                    domain: range.domain.clone(),
                    path,
                    lo,
                    hi,
                },
                None => AlgExpr::Scan { var: range.var, domain: range.domain.clone() },
            },
        };

        // Pre-join pushdown: conjuncts over the new variable alone filter
        // the scan before any join sees the row (so a hash join's build
        // side hashes only survivors).
        let (early, rest): (Vec<Pred>, Vec<Pred>) = remaining.into_iter().partition(|c| {
            let mut vs = Vec::new();
            c.vars(&mut vs);
            !vs.is_empty() && vs.iter().all(|v| *v == range.var)
        });
        remaining = rest;
        if !early.is_empty() {
            let pred = early.into_iter().reduce(Pred::and).unwrap();
            scan = AlgExpr::Select { input: Box::new(scan), pred };
        }

        plan = if matches!(plan, AlgExpr::Unit) {
            scan
        } else if options.hash_joins && is_independent(&scan, range.var) {
            match take_join_keys(&mut remaining, &bound, range.var) {
                Some((left_key, right_key)) => AlgExpr::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(scan),
                    left_key,
                    right_key,
                },
                None => AlgExpr::NestJoin { left: Box::new(plan), right: Box::new(scan) },
            }
        } else {
            AlgExpr::NestJoin { left: Box::new(plan), right: Box::new(scan) }
        };
        bound.push(range.var);

        // Push down every conjunct now fully bound.
        let (ready, rest): (Vec<Pred>, Vec<Pred>) = remaining.into_iter().partition(|c| {
            let mut vs = Vec::new();
            c.vars(&mut vs);
            vs.iter().all(|v| bound.contains(v))
        });
        remaining = rest;
        if !ready.is_empty() {
            let pred = ready.into_iter().reduce(Pred::and).unwrap();
            plan = AlgExpr::Select { input: Box::new(plan), pred };
        }
    }

    // Conjuncts over no range variables (constants / root-only): final filter.
    if !remaining.is_empty() {
        let pred = remaining.into_iter().reduce(Pred::and).unwrap();
        plan = AlgExpr::Select { input: Box::new(plan), pred };
    }
    plan
}

// ------------------------------------------------------------ cost model

/// Estimate `plan`, filling `est` with per-operator rows_out in the same
/// pre-order as [`crate::algebra::OpProfile`] indexes nodes. Returns the
/// total cost in row-visit units (what [`crate::PlanStats::row_visits`]
/// plus hash build/probe traffic measures after the fact).
fn estimate(plan: &AlgExpr, view: Option<&StatsView>, est: &mut Vec<u64>) -> f64 {
    let (cost, _) = est_node(plan, 1.0, view, est);
    cost
}

/// `(cost, rows)` of one node when its subtree runs `mult` times in total
/// (nest-join right sides run once per left row — their counters, and so
/// their estimates, accumulate across iterations).
fn est_node(expr: &AlgExpr, mult: f64, view: Option<&StatsView>, est: &mut Vec<u64>) -> (f64, f64) {
    let slot = est.len();
    est.push(0);
    let (cost, rows) = match expr {
        AlgExpr::Unit => (0.0, mult),
        AlgExpr::Scan { var, domain } => {
            let card = var_card(*var, domain, view);
            (mult * card, mult * card)
        }
        AlgExpr::IndexScan { var, domain, path, key } => {
            let card = var_card(*var, domain, view);
            let sel = index_eq_sel(*var, path, key, view);
            let rows = mult * card * sel;
            (rows + mult * INDEX_PROBE_COST, rows)
        }
        AlgExpr::IndexRangeScan { var, domain, path, lo, hi } => {
            let card = var_card(*var, domain, view);
            let sel = index_range_sel(*var, path, lo, hi, view);
            let rows = mult * card * sel;
            (rows + mult * INDEX_PROBE_COST, rows)
        }
        AlgExpr::Select { input, pred } => {
            let (in_cost, in_rows) = est_node(input, mult, view, est);
            let sel: f64 = pred.clone().conjuncts().iter().map(|c| conjunct_sel(c, view)).product();
            (in_cost + in_rows, in_rows * sel)
        }
        AlgExpr::NestJoin { left, right } => {
            let (l_cost, l_rows) = est_node(left, mult, view, est);
            let (r_cost, r_rows) = est_node(right, l_rows.max(mult), view, est);
            (l_cost + r_cost, r_rows)
        }
        AlgExpr::HashJoin { left, right, left_key, right_key } => {
            let (l_cost, l_rows) = est_node(left, mult, view, est);
            let (r_cost, r_rows) = est_node(right, mult, view, est);
            let per_l = l_rows / mult.max(1.0);
            let per_r = r_rows / mult.max(1.0);
            let sel = equi_join_sel(left_key, right_key, per_r, view);
            let rows = mult * (per_l * per_r * sel);
            (l_cost + r_cost + l_rows + r_rows, rows)
        }
    };
    est[slot] = rows.round() as u64;
    (cost, rows)
}

/// Base cardinality of one range variable: resolved statistics when the
/// session provided them, otherwise a default by domain shape (independent
/// domains are whole sets; dependent domains are per-row fan-outs).
fn var_card(var: VarId, domain: &Term, view: Option<&StatsView>) -> f64 {
    if let Some(v) = view.and_then(|w| w.var(var.0)) {
        return v.cardinality.max(1) as f64;
    }
    let mut vs = Vec::new();
    domain.vars(&mut vs);
    if vs.is_empty() {
        DEFAULT_CARD as f64
    } else {
        DEFAULT_FANOUT as f64
    }
}

fn const_num(t: &Term) -> Option<f64> {
    match t {
        Term::Const(o) => o.as_number(),
        _ => None,
    }
}

/// Selectivity of an index equality probe on `var!path = key`. A probe
/// keyed by another variable's path is an equi-join in disguise, so it
/// gets the same overlap-window estimate as a hash join. When the
/// variable has statistics but no sketch over `path`, the training pass
/// (one sketch per directory) is evidence that *this* set has no
/// directory there — the runtime will fall back to a scan per probe, so
/// the estimate must not pretend the probe filters anything.
fn index_eq_sel(var: VarId, path: &[ElemName], key: &Term, view: Option<&StatsView>) -> f64 {
    let Some(vstat) = view.and_then(|w| w.var(var.0)) else {
        return DEFAULT_EQ_SEL;
    };
    let Some(sketch) = vstat.sketch(path) else {
        return 1.0;
    };
    match (const_num(key), key) {
        (Some(k), _) => sketch.selectivity_eq(k),
        (None, Term::Path(kv, kpath)) => {
            match view.and_then(|w| w.var(kv.0)).and_then(|v| v.sketch(kpath)) {
                Some(ks) => ks.equi_join_selectivity(sketch),
                None => 1.0 / sketch.distinct.max(1) as f64,
            }
        }
        _ => 1.0 / sketch.distinct.max(1) as f64,
    }
}

/// Selectivity of an index range probe over `var!path`.
fn index_range_sel(
    var: VarId,
    path: &[ElemName],
    lo: &Option<(Term, bool)>,
    hi: &Option<(Term, bool)>,
    view: Option<&StatsView>,
) -> f64 {
    let Some(vstat) = view.and_then(|w| w.var(var.0)) else {
        return DEFAULT_CMP_SEL;
    };
    let Some(sketch) = vstat.sketch(path) else {
        return 1.0; // statistics but no sketch: no directory, probes scan
    };
    let resolve = |b: &Option<(Term, bool)>| match b {
        Some((t, inc)) => const_num(t).map(|k| (k, *inc)),
        None => None,
    };
    match (resolve(lo), resolve(hi)) {
        (l, h) if l.is_some() || h.is_some() => sketch.selectivity_range(l, h),
        _ => DEFAULT_CMP_SEL,
    }
}

/// The sketch covering a join key's path, when one exists.
fn sketch_of<'a>(key: &Term, view: Option<&'a StatsView>) -> Option<&'a crate::stats::KeySketch> {
    let Term::Path(v, path) = key else { return None };
    view.and_then(|w| w.var(v.0)).and_then(|s| s.sketch(path))
}

/// Equi-join selectivity for a hash join: the overlap-window containment
/// estimate when both key columns carry sketches, `1/distinct` of the one
/// sketched side otherwise, and the foreign-key assumption (`1/|R|`) when
/// neither side has key-distribution evidence.
fn equi_join_sel(left_key: &Term, right_key: &Term, per_r: f64, view: Option<&StatsView>) -> f64 {
    match (sketch_of(left_key, view), sketch_of(right_key, view)) {
        (Some(l), Some(r)) => l.equi_join_selectivity(r),
        (None, Some(r)) => 1.0 / r.distinct.max(1) as f64,
        (Some(l), None) => 1.0 / l.distinct.max(1) as f64,
        (None, None) => 1.0 / per_r.max(1.0),
    }
}

/// Selectivity of one residual conjunct: an observed figure when the
/// statement has run analyzed before, a sketch estimate for single-path
/// comparisons against constants, a structural default otherwise.
fn conjunct_sel(c: &Pred, view: Option<&StatsView>) -> f64 {
    let mut vs = Vec::new();
    c.vars(&mut vs);
    if vs.len() == 1 {
        if let Some(vstat) = view.and_then(|w| w.var(vs[0].0)) {
            if let Some(s) = vstat.predicates.get(&pred_key(c)) {
                return s.clamp(0.0, 1.0);
            }
            if let Pred::Cmp(a, op, b) = c {
                let probe = match (a, b) {
                    (Term::Path(v, p), _) if *v == vs[0] => const_num(b).map(|k| (p, *op, k)),
                    (_, Term::Path(v, p)) if *v == vs[0] => const_num(a).map(|k| (p, flip(*op), k)),
                    _ => None,
                };
                if let Some((path, op, k)) = probe {
                    if let Some(sketch) = vstat.sketch(path) {
                        return match op {
                            CmpOp::Eq => sketch.selectivity_eq(k),
                            CmpOp::Ne => 1.0 - sketch.selectivity_eq(k),
                            CmpOp::Lt => sketch.selectivity_range(None, Some((k, false))),
                            CmpOp::Le => sketch.selectivity_range(None, Some((k, true))),
                            CmpOp::Gt => sketch.selectivity_range(Some((k, false)), None),
                            CmpOp::Ge => sketch.selectivity_range(Some((k, true)), None),
                        };
                    }
                }
            }
        }
    }
    match c {
        Pred::Cmp(_, CmpOp::Eq, _) | Pred::In(_, _) => DEFAULT_EQ_SEL,
        Pred::Cmp(_, CmpOp::Ne, _) => 1.0 - DEFAULT_EQ_SEL,
        Pred::Cmp(_, _, _) => DEFAULT_CMP_SEL,
        Pred::True => 1.0,
        _ => 0.5,
    }
}

/// True when every term inside `expr` mentions no variable other than
/// `var` — i.e. the subplan can be evaluated once, independent of rows
/// produced to its left. Required for the hash-join build side.
fn is_independent(expr: &AlgExpr, var: VarId) -> bool {
    let mut vs = Vec::new();
    match expr {
        AlgExpr::Unit => {}
        AlgExpr::Scan { domain, .. } => domain.vars(&mut vs),
        AlgExpr::IndexScan { domain, key, .. } => {
            domain.vars(&mut vs);
            key.vars(&mut vs);
        }
        AlgExpr::IndexRangeScan { domain, lo, hi, .. } => {
            domain.vars(&mut vs);
            if let Some((t, _)) = lo {
                t.vars(&mut vs);
            }
            if let Some((t, _)) = hi {
                t.vars(&mut vs);
            }
        }
        AlgExpr::Select { input, pred } => {
            if !is_independent(input, var) {
                return false;
            }
            pred.vars(&mut vs);
        }
        AlgExpr::NestJoin { left, right } => {
            return is_independent(left, var) && is_independent(right, var);
        }
        AlgExpr::HashJoin { left, right, left_key, right_key } => {
            if !is_independent(left, var) || !is_independent(right, var) {
                return false;
            }
            left_key.vars(&mut vs);
            right_key.vars(&mut vs);
        }
    }
    vs.iter().all(|v| *v == var)
}

/// Find (and remove) an equality conjunct linking the bound side to the new
/// variable: one side computable from `bound` alone (nonempty), the other
/// mentioning exactly the new variable. Returns `(left_key, right_key)` as
/// (bound-side, new-side) probe/build keys.
fn take_join_keys(remaining: &mut Vec<Pred>, bound: &[VarId], var: VarId) -> Option<(Term, Term)> {
    for i in 0..remaining.len() {
        let Pred::Cmp(a, CmpOp::Eq, b) = &remaining[i] else { continue };
        let (mut av, mut bv) = (Vec::new(), Vec::new());
        a.vars(&mut av);
        b.vars(&mut bv);
        let a_bound = !av.is_empty() && av.iter().all(|v| bound.contains(v));
        let b_bound = !bv.is_empty() && bv.iter().all(|v| bound.contains(v));
        let a_new = !av.is_empty() && av.iter().all(|v| *v == var);
        let b_new = !bv.is_empty() && bv.iter().all(|v| *v == var);
        let keys = if a_bound && b_new {
            Some((a.clone(), b.clone()))
        } else if b_bound && a_new {
            Some((b.clone(), a.clone()))
        } else {
            None
        };
        if let Some(k) = keys {
            remaining.remove(i);
            return Some(k);
        }
    }
    None
}

type Bound = Option<(Term, bool)>;

/// Collect `var!path </<=/>/>= key` conjuncts over ONE indexed path into an
/// interval, removing the conjuncts it absorbs. Returns `None` when no
/// range-indexable conjunct exists.
fn extract_range_bounds(
    remaining: &mut Vec<Pred>,
    var: VarId,
    bound: &[VarId],
    indexes: &IndexCatalog,
) -> Option<(Vec<ElemName>, Bound, Bound)> {
    // Find the first range-shaped conjunct to fix the path.
    let first = remaining.iter().position(|c| range_bound(c, var, bound, indexes).is_some())?;
    let (path, _, _) = range_bound(&remaining[first], var, bound, indexes).unwrap();
    let mut lo: Bound = None;
    let mut hi: Bound = None;
    let mut i = 0;
    while i < remaining.len() {
        match range_bound(&remaining[i], var, bound, indexes) {
            Some((p, new_lo, new_hi)) if p == path => {
                // First bound of each side wins; later ones stay as filters.
                let take_lo = new_lo.is_some() && lo.is_none();
                let take_hi = new_hi.is_some() && hi.is_none();
                if take_lo || take_hi {
                    if take_lo {
                        lo = new_lo;
                    }
                    if take_hi {
                        hi = new_hi;
                    }
                    remaining.remove(i);
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Some((path, lo, hi))
}

/// If `conj` is a comparison between `var!path` and a computable key over an
/// indexed path, return the bound it contributes.
fn range_bound(
    conj: &Pred,
    var: VarId,
    bound: &[VarId],
    indexes: &IndexCatalog,
) -> Option<(Vec<ElemName>, Bound, Bound)> {
    let Pred::Cmp(a, op, b) = conj else { return None };
    // Normalize to path-op-key.
    let (path, op, key) = match (a, b) {
        (Term::Path(v, p), _) if *v == var => (p, *op, b),
        (_, Term::Path(v, p)) if *v == var => (p, flip(*op), a),
        _ => return None,
    };
    if path.is_empty() || !indexes.covers(path) {
        return None;
    }
    let mut vs = Vec::new();
    key.vars(&mut vs);
    if !vs.iter().all(|u| bound.contains(u)) {
        return None;
    }
    let k = key.clone();
    match op {
        CmpOp::Gt => Some((path.clone(), Some((k, false)), None)),
        CmpOp::Ge => Some((path.clone(), Some((k, true)), None)),
        CmpOp::Lt => Some((path.clone(), None, Some((k, false)))),
        CmpOp::Le => Some((path.clone(), None, Some((k, true)))),
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        other => other,
    }
}

/// If `conj` is `var!path = key` (either side) with `key` computable from
/// `bound` and a registered directory over `path`, return `(path, key)`.
fn indexable_key(
    conj: &Pred,
    var: VarId,
    bound: &[VarId],
    indexes: &IndexCatalog,
) -> Option<(Vec<ElemName>, Term)> {
    let Pred::Cmp(a, CmpOp::Eq, b) = conj else { return None };
    for (lhs, rhs) in [(a, b), (b, a)] {
        if let Term::Path(v, path) = lhs {
            if *v == var && !path.is_empty() && indexes.covers(path) {
                let mut vs = Vec::new();
                rhs.vars(&mut vs);
                if vs.iter().all(|u| bound.contains(u)) {
                    return Some((path.clone(), rhs.clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{KeySketch, VarStats};
    use gemstone_object::{Oop, SymbolId};

    fn sym(n: u32) -> ElemName {
        ElemName::Sym(SymbolId(n))
    }

    fn salary_query() -> Query {
        // e ∈ X, pred: e!salary = 100
        Query {
            result: vec![(SymbolId(9), Term::Var(VarId(0)))],
            ranges: vec![crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) }],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Const(Oop::int(100)),
            ),
        }
    }

    #[test]
    fn equality_on_indexed_path_becomes_index_scan() {
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let plan = translate(&salary_query(), &idx);
        assert!(plan.uses_index(), "{}", plan.describe());
        assert!(matches!(plan, AlgExpr::IndexScan { .. }));
    }

    #[test]
    fn no_catalog_entry_means_scan_plus_select() {
        let plan = translate(&salary_query(), &IndexCatalog::new());
        assert!(!plan.uses_index());
        assert!(matches!(plan, AlgExpr::Select { .. }));
    }

    #[test]
    fn inequality_fuses_into_a_range_scan() {
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut q = salary_query();
        q.pred =
            Pred::Cmp(Term::Path(VarId(0), vec![sym(1)]), CmpOp::Gt, Term::Const(Oop::int(100)));
        let plan = translate(&q, &idx);
        match plan {
            AlgExpr::IndexRangeScan { lo: Some((_, false)), hi: None, .. } => {}
            other => panic!("expected exclusive lower-bounded range scan, got {other:?}"),
        }
    }

    #[test]
    fn two_bounds_merge_into_one_interval() {
        // salary > 100 AND salary <= 200 → one range scan, no residual.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut q = salary_query();
        q.pred =
            Pred::Cmp(Term::Path(VarId(0), vec![sym(1)]), CmpOp::Gt, Term::Const(Oop::int(100)))
                .and(Pred::Cmp(
                    Term::Path(VarId(0), vec![sym(1)]),
                    CmpOp::Le,
                    Term::Const(Oop::int(200)),
                ));
        let plan = translate(&q, &idx);
        match plan {
            AlgExpr::IndexRangeScan { lo: Some((_, false)), hi: Some((_, true)), .. } => {}
            other => panic!("expected two-sided range scan, got {other:?}"),
        }
    }

    #[test]
    fn flipped_comparison_normalizes() {
        // 100 < salary is the same lower bound.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut q = salary_query();
        q.pred =
            Pred::Cmp(Term::Const(Oop::int(100)), CmpOp::Lt, Term::Path(VarId(0), vec![sym(1)]));
        let plan = translate(&q, &idx);
        assert!(
            matches!(plan, AlgExpr::IndexRangeScan { lo: Some((_, false)), hi: None, .. }),
            "{plan:?}"
        );
    }

    #[test]
    fn key_must_be_computable_from_bound_vars() {
        // e ∈ X, d ∈ Y, pred: e!a = d!b — when scanning e, d is unbound, so
        // the equality cannot drive an index on e; it can drive one on d.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        idx.add_path(vec![sym(2)]);
        let q = Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::NIL) },
            ],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Path(VarId(1), vec![sym(2)]),
            ),
        };
        let plan = translate(&q, &idx);
        // The fusion must be on the SECOND scan (v1), keyed by v0's path.
        match &plan {
            AlgExpr::NestJoin { left, right } => {
                assert!(matches!(**left, AlgExpr::Scan { var: VarId(0), .. }));
                match &**right {
                    AlgExpr::IndexScan { var, key, .. } => {
                        assert_eq!(*var, VarId(1));
                        assert!(matches!(key, Term::Path(VarId(0), _)));
                    }
                    other => panic!("expected IndexScan, got {other:?}"),
                }
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn pushdown_places_conjuncts_at_earliest_point() {
        // Conjunct on v0 only must sit below the v1 scan.
        let q = Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::NIL) },
            ],
            pred: Pred::Cmp(Term::Var(VarId(0)), CmpOp::Gt, Term::Const(Oop::int(3))),
        };
        let plan = translate(&q, &IndexCatalog::new());
        match plan {
            AlgExpr::NestJoin { left, right } => {
                assert!(matches!(*left, AlgExpr::Select { .. }), "filter below the join");
                assert!(matches!(*right, AlgExpr::Scan { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    /// e ∈ X, d ∈ Y (independent domains), pred: e!a = d!b.
    fn equi_join_query() -> Query {
        Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::TRUE) },
            ],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Path(VarId(1), vec![sym(2)]),
            ),
        }
    }

    #[test]
    fn independent_equality_ranges_become_hash_join() {
        let plan = translate(&equi_join_query(), &IndexCatalog::new());
        match &plan {
            AlgExpr::HashJoin { left, right, left_key, right_key } => {
                assert!(matches!(**left, AlgExpr::Scan { var: VarId(0), .. }));
                assert!(matches!(**right, AlgExpr::Scan { var: VarId(1), .. }));
                assert!(matches!(left_key, Term::Path(VarId(0), _)));
                assert!(matches!(right_key, Term::Path(VarId(1), _)));
            }
            other => panic!("expected HashJoin, got {other:?}"),
        }
        assert!(plan.uses_hash_join());
        assert!(plan.describe().contains("hash-join"), "{}", plan.describe());
    }

    #[test]
    fn flipped_equality_still_becomes_hash_join() {
        // d!b = e!a (new var on the left) normalizes to the same join.
        let mut q = equi_join_query();
        q.pred = Pred::Cmp(
            Term::Path(VarId(1), vec![sym(2)]),
            CmpOp::Eq,
            Term::Path(VarId(0), vec![sym(1)]),
        );
        let plan = translate(&q, &IndexCatalog::new());
        match &plan {
            AlgExpr::HashJoin { left_key, right_key, .. } => {
                assert!(matches!(left_key, Term::Path(VarId(0), _)), "probe key is bound side");
                assert!(matches!(right_key, Term::Path(VarId(1), _)), "build key is new side");
            }
            other => panic!("expected HashJoin, got {other:?}"),
        }
    }

    #[test]
    fn dependent_domain_falls_back_to_nest_join() {
        // m ∈ d!Managers depends on d: no hash join possible.
        let mut q = equi_join_query();
        q.ranges[1].domain = Term::Path(VarId(0), vec![sym(3)]);
        let plan = translate(&q, &IndexCatalog::new());
        assert!(!plan.uses_hash_join(), "{}", plan.describe());
    }

    #[test]
    fn hash_join_disabled_by_options() {
        let plan = translate_with(
            &equi_join_query(),
            &IndexCatalog::new(),
            &PlanOptions { hash_joins: false, stats: None },
        );
        assert!(!plan.uses_hash_join(), "{}", plan.describe());
    }

    #[test]
    fn new_var_conjuncts_push_below_the_hash_join_build() {
        // d!b = e!a AND d!c > 5: the d-only filter must wrap d's scan
        // *inside* the join build side, not sit above the join.
        let mut q = equi_join_query();
        q.pred = q.pred.clone().and(Pred::Cmp(
            Term::Path(VarId(1), vec![sym(4)]),
            CmpOp::Gt,
            Term::Const(Oop::int(5)),
        ));
        let plan = translate(&q, &IndexCatalog::new());
        match &plan {
            AlgExpr::HashJoin { right, .. } => {
                assert!(
                    matches!(**right, AlgExpr::Select { .. }),
                    "build side filtered pre-join: {}",
                    plan.describe()
                );
            }
            other => panic!("expected HashJoin, got {other:?}"),
        }
    }

    #[test]
    fn non_equality_link_is_not_a_hash_join() {
        let mut q = equi_join_query();
        q.pred = Pred::Cmp(
            Term::Path(VarId(0), vec![sym(1)]),
            CmpOp::Lt,
            Term::Path(VarId(1), vec![sym(2)]),
        );
        let plan = translate(&q, &IndexCatalog::new());
        assert!(!plan.uses_hash_join(), "{}", plan.describe());
    }

    #[test]
    fn constant_conjuncts_become_final_filter() {
        let q = Query {
            result: vec![],
            ranges: vec![],
            pred: Pred::Cmp(Term::Const(Oop::int(1)), CmpOp::Eq, Term::Const(Oop::int(1))),
        };
        let plan = translate(&q, &IndexCatalog::new());
        assert!(matches!(plan, AlgExpr::Select { .. }));
    }

    // -------------------------------------------------- cost-based tests

    fn view_with_cards(cards: &[u64]) -> StatsView {
        StatsView {
            per_var: cards
                .iter()
                .map(|&c| Some(VarStats { cardinality: c, ..VarStats::default() }))
                .collect(),
        }
    }

    /// v0 ∈ Orders (big), v1 ∈ Parts (mid), v2 ∈ Suppliers (small, heavily
    /// filtered): v0!a = v1!b AND v1!c = v2!d AND v2!e = 7.
    fn three_way_query() -> Query {
        Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::TRUE) },
                crate::Range { var: VarId(2), domain: Term::Const(Oop::FALSE) },
            ],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Path(VarId(1), vec![sym(2)]),
            )
            .and(Pred::Cmp(
                Term::Path(VarId(1), vec![sym(3)]),
                CmpOp::Eq,
                Term::Path(VarId(2), vec![sym(4)]),
            ))
            .and(Pred::Cmp(
                Term::Path(VarId(2), vec![sym(5)]),
                CmpOp::Eq,
                Term::Const(Oop::int(7)),
            )),
        }
    }

    #[test]
    fn without_stats_nothing_changes() {
        let q = three_way_query();
        let d = plan_query(&q, &IndexCatalog::new(), &PlanOptions::default());
        assert!(!d.cost_based);
        assert_eq!(d.plan, translate(&q, &IndexCatalog::new()));
        assert_eq!(d.canon, d.plan.describe());
        assert!(!d.est_rows.is_empty(), "estimates exist even without stats");
    }

    #[test]
    fn skewed_cardinalities_reorder_the_join() {
        let q = three_way_query();
        let opts =
            PlanOptions { hash_joins: true, stats: Some(view_with_cards(&[10_000, 100, 10])) };
        let d = plan_query(&q, &IndexCatalog::new(), &opts);
        assert!(d.cost_based);
        assert!(d.alternatives.len() > 1, "alternatives recorded");
        assert_eq!(d.alternatives[0].0, d.canon, "chosen plan listed first");
        let fixed = plan_query(&q, &IndexCatalog::new(), &PlanOptions::default());
        assert_ne!(d.canon, fixed.canon, "the skew must change the order: {}", d.canon);
        assert!(d.est_cost < fixed.est_cost.max(1.0) * 1.0 + f64::MAX.min(1e300));
        // The chosen plan starts from the filtered small side, not Orders.
        assert!(
            d.canon.starts_with("hash-join[v2") || d.canon.contains("(select(scan v2)"),
            "small filtered set drives the left-deep chain: {}",
            d.canon
        );
        // And its cost beats the declaration order's cost under the model.
        let mut est = Vec::new();
        let fixed_cost = estimate(&fixed.plan, opts.stats.as_ref(), &mut est);
        assert!(d.est_cost < fixed_cost, "{} !< {fixed_cost}", d.est_cost);
    }

    #[test]
    fn admissible_orders_respect_dependent_domains() {
        let mut q = three_way_query();
        // v1 ∈ v0!managers: v1 can never precede v0.
        q.ranges[1].domain = Term::Path(VarId(0), vec![sym(9)]);
        let orders = admissible_orders(&q, MAX_ORDERS);
        assert!(!orders.is_empty());
        for o in &orders {
            let p0 = o.iter().position(|&i| i == 0).unwrap();
            let p1 = o.iter().position(|&i| i == 1).unwrap();
            assert!(p0 < p1, "dependent range ordered after its producer: {o:?}");
        }
        assert_eq!(orders[0], vec![0, 1, 2], "declaration order enumerates first");
    }

    #[test]
    fn estimates_align_with_profile_preorder() {
        let q = three_way_query();
        let d = plan_query(
            &q,
            &IndexCatalog::new(),
            &PlanOptions { hash_joins: true, stats: Some(view_with_cards(&[50, 40, 30])) },
        );
        // est_rows must have exactly one entry per operator node.
        fn count(e: &AlgExpr) -> usize {
            match e {
                AlgExpr::Unit
                | AlgExpr::Scan { .. }
                | AlgExpr::IndexScan { .. }
                | AlgExpr::IndexRangeScan { .. } => 1,
                AlgExpr::Select { input, .. } => 1 + count(input),
                AlgExpr::NestJoin { left, right } | AlgExpr::HashJoin { left, right, .. } => {
                    1 + count(left) + count(right)
                }
            }
        }
        assert_eq!(d.est_rows.len(), count(&d.plan));
    }

    #[test]
    fn sketches_sharpen_index_estimates() {
        // Equality on an indexed path: sketch says 90% of keys are 100.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut keys = vec![100.0; 90];
        keys.extend((0..10).map(|i| i as f64));
        let mut vs = VarStats { cardinality: 100, ..VarStats::default() };
        vs.sketches.insert(crate::stats::path_key(&[sym(1)]), KeySketch::from_keys(&keys));
        let opts =
            PlanOptions { hash_joins: true, stats: Some(StatsView { per_var: vec![Some(vs)] }) };
        let d = plan_query(&salary_query(), &idx, &opts);
        // 90 of 100 rows match e!salary = 100.
        assert_eq!(*d.est_rows.first().unwrap(), 90, "{:?}", d.est_rows);
    }
}
