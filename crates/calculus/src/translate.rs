//! The calculus → algebra translation algorithm.
//!
//! §3 / §8: the translation algorithm ("Fred Boals did the initial work on
//! the set calculus to set algebra translation algorithm, and Bob Johnson
//! brought it to its current form"). The strategy:
//!
//! 1. split the predicate into conjuncts;
//! 2. visit ranges in declaration order, building a left-deep tree of
//!    dependent scans;
//! 3. *push down* each conjunct to the earliest point where all its
//!    variables are bound;
//! 4. when the conjunct being pushed is an equality between the newly
//!    scanned variable's path and an already-computable key, and a
//!    directory plausibly covers that path, fuse scan + selection into an
//!    [`AlgExpr::IndexScan`];
//! 5. when a new range is *independent* of everything bound so far (its
//!    domain and scan terms mention no earlier variable) and an equality
//!    conjunct links it to the bound side (`l!path = r!path`), replace the
//!    nested loop with an [`AlgExpr::HashJoin`] — conjuncts over the new
//!    variable alone are pushed onto its scan *before* the join, so the
//!    build side hashes only surviving rows.

use crate::algebra::AlgExpr;
use crate::ast::{CmpOp, Pred, Query, Term, VarId};
use gemstone_object::ElemName;
use std::collections::HashSet;

/// Which element paths have directories built over them. Translation only
/// needs plausibility; the [`crate::QueryContext`] makes the final call per
/// collection at run time.
#[derive(Debug, Default, Clone)]
pub struct IndexCatalog {
    paths: HashSet<Vec<ElemName>>,
}

impl IndexCatalog {
    /// An empty catalog (every query plans as pure scans).
    pub fn new() -> IndexCatalog {
        IndexCatalog::default()
    }

    /// Register that directories exist over `path`.
    pub fn add_path(&mut self, path: Vec<ElemName>) {
        self.paths.insert(path);
    }

    /// True if some directory covers `path`.
    pub fn covers(&self, path: &[ElemName]) -> bool {
        self.paths.contains(path)
    }
}

/// Options steering plan selection.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Rewrite independent, equality-linked range pairs into hash joins.
    /// Off forces the pure nested-loop shape (used by benchmarks to measure
    /// the plans against each other on identical queries).
    pub hash_joins: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions { hash_joins: true }
    }
}

/// Translate a calculus query into an algebra plan with default options.
pub fn translate(query: &Query, indexes: &IndexCatalog) -> AlgExpr {
    translate_with(query, indexes, &PlanOptions::default())
}

/// Translate a calculus query into an algebra plan.
pub fn translate_with(query: &Query, indexes: &IndexCatalog, options: &PlanOptions) -> AlgExpr {
    let mut remaining: Vec<Pred> = query.pred.clone().conjuncts();
    let mut bound: Vec<VarId> = Vec::new();
    let mut plan = AlgExpr::Unit;

    for range in &query.ranges {
        // Try to find an indexable equality conjunct for this range's var,
        // then fall back to range-bound conjuncts.
        let mut fused: Option<(Vec<ElemName>, Term)> = None;
        if let Some(pos) =
            remaining.iter().position(|c| indexable_key(c, range.var, &bound, indexes).is_some())
        {
            let c = remaining.remove(pos);
            fused = indexable_key(&c, range.var, &bound, indexes);
        }
        let mut scan = match fused {
            Some((path, key)) => {
                AlgExpr::IndexScan { var: range.var, domain: range.domain.clone(), path, key }
            }
            None => match extract_range_bounds(&mut remaining, range.var, &bound, indexes) {
                Some((path, lo, hi)) => AlgExpr::IndexRangeScan {
                    var: range.var,
                    domain: range.domain.clone(),
                    path,
                    lo,
                    hi,
                },
                None => AlgExpr::Scan { var: range.var, domain: range.domain.clone() },
            },
        };

        // Pre-join pushdown: conjuncts over the new variable alone filter
        // the scan before any join sees the row (so a hash join's build
        // side hashes only survivors).
        let (early, rest): (Vec<Pred>, Vec<Pred>) = remaining.into_iter().partition(|c| {
            let mut vs = Vec::new();
            c.vars(&mut vs);
            !vs.is_empty() && vs.iter().all(|v| *v == range.var)
        });
        remaining = rest;
        if !early.is_empty() {
            let pred = early.into_iter().reduce(Pred::and).unwrap();
            scan = AlgExpr::Select { input: Box::new(scan), pred };
        }

        plan = if matches!(plan, AlgExpr::Unit) {
            scan
        } else if options.hash_joins && is_independent(&scan, range.var) {
            match take_join_keys(&mut remaining, &bound, range.var) {
                Some((left_key, right_key)) => AlgExpr::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(scan),
                    left_key,
                    right_key,
                },
                None => AlgExpr::NestJoin { left: Box::new(plan), right: Box::new(scan) },
            }
        } else {
            AlgExpr::NestJoin { left: Box::new(plan), right: Box::new(scan) }
        };
        bound.push(range.var);

        // Push down every conjunct now fully bound.
        let (ready, rest): (Vec<Pred>, Vec<Pred>) = remaining.into_iter().partition(|c| {
            let mut vs = Vec::new();
            c.vars(&mut vs);
            vs.iter().all(|v| bound.contains(v))
        });
        remaining = rest;
        if !ready.is_empty() {
            let pred = ready.into_iter().reduce(Pred::and).unwrap();
            plan = AlgExpr::Select { input: Box::new(plan), pred };
        }
    }

    // Conjuncts over no range variables (constants / root-only): final filter.
    if !remaining.is_empty() {
        let pred = remaining.into_iter().reduce(Pred::and).unwrap();
        plan = AlgExpr::Select { input: Box::new(plan), pred };
    }
    plan
}

/// True when every term inside `expr` mentions no variable other than
/// `var` — i.e. the subplan can be evaluated once, independent of rows
/// produced to its left. Required for the hash-join build side.
fn is_independent(expr: &AlgExpr, var: VarId) -> bool {
    let mut vs = Vec::new();
    match expr {
        AlgExpr::Unit => {}
        AlgExpr::Scan { domain, .. } => domain.vars(&mut vs),
        AlgExpr::IndexScan { domain, key, .. } => {
            domain.vars(&mut vs);
            key.vars(&mut vs);
        }
        AlgExpr::IndexRangeScan { domain, lo, hi, .. } => {
            domain.vars(&mut vs);
            if let Some((t, _)) = lo {
                t.vars(&mut vs);
            }
            if let Some((t, _)) = hi {
                t.vars(&mut vs);
            }
        }
        AlgExpr::Select { input, pred } => {
            if !is_independent(input, var) {
                return false;
            }
            pred.vars(&mut vs);
        }
        AlgExpr::NestJoin { left, right } => {
            return is_independent(left, var) && is_independent(right, var);
        }
        AlgExpr::HashJoin { left, right, left_key, right_key } => {
            if !is_independent(left, var) || !is_independent(right, var) {
                return false;
            }
            left_key.vars(&mut vs);
            right_key.vars(&mut vs);
        }
    }
    vs.iter().all(|v| *v == var)
}

/// Find (and remove) an equality conjunct linking the bound side to the new
/// variable: one side computable from `bound` alone (nonempty), the other
/// mentioning exactly the new variable. Returns `(left_key, right_key)` as
/// (bound-side, new-side) probe/build keys.
fn take_join_keys(remaining: &mut Vec<Pred>, bound: &[VarId], var: VarId) -> Option<(Term, Term)> {
    for i in 0..remaining.len() {
        let Pred::Cmp(a, CmpOp::Eq, b) = &remaining[i] else { continue };
        let (mut av, mut bv) = (Vec::new(), Vec::new());
        a.vars(&mut av);
        b.vars(&mut bv);
        let a_bound = !av.is_empty() && av.iter().all(|v| bound.contains(v));
        let b_bound = !bv.is_empty() && bv.iter().all(|v| bound.contains(v));
        let a_new = !av.is_empty() && av.iter().all(|v| *v == var);
        let b_new = !bv.is_empty() && bv.iter().all(|v| *v == var);
        let keys = if a_bound && b_new {
            Some((a.clone(), b.clone()))
        } else if b_bound && a_new {
            Some((b.clone(), a.clone()))
        } else {
            None
        };
        if let Some(k) = keys {
            remaining.remove(i);
            return Some(k);
        }
    }
    None
}

type Bound = Option<(Term, bool)>;

/// Collect `var!path </<=/>/>= key` conjuncts over ONE indexed path into an
/// interval, removing the conjuncts it absorbs. Returns `None` when no
/// range-indexable conjunct exists.
fn extract_range_bounds(
    remaining: &mut Vec<Pred>,
    var: VarId,
    bound: &[VarId],
    indexes: &IndexCatalog,
) -> Option<(Vec<ElemName>, Bound, Bound)> {
    // Find the first range-shaped conjunct to fix the path.
    let first = remaining.iter().position(|c| range_bound(c, var, bound, indexes).is_some())?;
    let (path, _, _) = range_bound(&remaining[first], var, bound, indexes).unwrap();
    let mut lo: Bound = None;
    let mut hi: Bound = None;
    let mut i = 0;
    while i < remaining.len() {
        match range_bound(&remaining[i], var, bound, indexes) {
            Some((p, new_lo, new_hi)) if p == path => {
                // First bound of each side wins; later ones stay as filters.
                let take_lo = new_lo.is_some() && lo.is_none();
                let take_hi = new_hi.is_some() && hi.is_none();
                if take_lo || take_hi {
                    if take_lo {
                        lo = new_lo;
                    }
                    if take_hi {
                        hi = new_hi;
                    }
                    remaining.remove(i);
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Some((path, lo, hi))
}

/// If `conj` is a comparison between `var!path` and a computable key over an
/// indexed path, return the bound it contributes.
fn range_bound(
    conj: &Pred,
    var: VarId,
    bound: &[VarId],
    indexes: &IndexCatalog,
) -> Option<(Vec<ElemName>, Bound, Bound)> {
    let Pred::Cmp(a, op, b) = conj else { return None };
    // Normalize to path-op-key.
    let (path, op, key) = match (a, b) {
        (Term::Path(v, p), _) if *v == var => (p, *op, b),
        (_, Term::Path(v, p)) if *v == var => (p, flip(*op), a),
        _ => return None,
    };
    if path.is_empty() || !indexes.covers(path) {
        return None;
    }
    let mut vs = Vec::new();
    key.vars(&mut vs);
    if !vs.iter().all(|u| bound.contains(u)) {
        return None;
    }
    let k = key.clone();
    match op {
        CmpOp::Gt => Some((path.clone(), Some((k, false)), None)),
        CmpOp::Ge => Some((path.clone(), Some((k, true)), None)),
        CmpOp::Lt => Some((path.clone(), None, Some((k, false)))),
        CmpOp::Le => Some((path.clone(), None, Some((k, true)))),
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        other => other,
    }
}

/// If `conj` is `var!path = key` (either side) with `key` computable from
/// `bound` and a registered directory over `path`, return `(path, key)`.
fn indexable_key(
    conj: &Pred,
    var: VarId,
    bound: &[VarId],
    indexes: &IndexCatalog,
) -> Option<(Vec<ElemName>, Term)> {
    let Pred::Cmp(a, CmpOp::Eq, b) = conj else { return None };
    for (lhs, rhs) in [(a, b), (b, a)] {
        if let Term::Path(v, path) = lhs {
            if *v == var && !path.is_empty() && indexes.covers(path) {
                let mut vs = Vec::new();
                rhs.vars(&mut vs);
                if vs.iter().all(|u| bound.contains(u)) {
                    return Some((path.clone(), rhs.clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_object::{Oop, SymbolId};

    fn sym(n: u32) -> ElemName {
        ElemName::Sym(SymbolId(n))
    }

    fn salary_query() -> Query {
        // e ∈ X, pred: e!salary = 100
        Query {
            result: vec![(SymbolId(9), Term::Var(VarId(0)))],
            ranges: vec![crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) }],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Const(Oop::int(100)),
            ),
        }
    }

    #[test]
    fn equality_on_indexed_path_becomes_index_scan() {
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let plan = translate(&salary_query(), &idx);
        assert!(plan.uses_index(), "{}", plan.describe());
        assert!(matches!(plan, AlgExpr::IndexScan { .. }));
    }

    #[test]
    fn no_catalog_entry_means_scan_plus_select() {
        let plan = translate(&salary_query(), &IndexCatalog::new());
        assert!(!plan.uses_index());
        assert!(matches!(plan, AlgExpr::Select { .. }));
    }

    #[test]
    fn inequality_fuses_into_a_range_scan() {
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut q = salary_query();
        q.pred =
            Pred::Cmp(Term::Path(VarId(0), vec![sym(1)]), CmpOp::Gt, Term::Const(Oop::int(100)));
        let plan = translate(&q, &idx);
        match plan {
            AlgExpr::IndexRangeScan { lo: Some((_, false)), hi: None, .. } => {}
            other => panic!("expected exclusive lower-bounded range scan, got {other:?}"),
        }
    }

    #[test]
    fn two_bounds_merge_into_one_interval() {
        // salary > 100 AND salary <= 200 → one range scan, no residual.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut q = salary_query();
        q.pred =
            Pred::Cmp(Term::Path(VarId(0), vec![sym(1)]), CmpOp::Gt, Term::Const(Oop::int(100)))
                .and(Pred::Cmp(
                    Term::Path(VarId(0), vec![sym(1)]),
                    CmpOp::Le,
                    Term::Const(Oop::int(200)),
                ));
        let plan = translate(&q, &idx);
        match plan {
            AlgExpr::IndexRangeScan { lo: Some((_, false)), hi: Some((_, true)), .. } => {}
            other => panic!("expected two-sided range scan, got {other:?}"),
        }
    }

    #[test]
    fn flipped_comparison_normalizes() {
        // 100 < salary is the same lower bound.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        let mut q = salary_query();
        q.pred =
            Pred::Cmp(Term::Const(Oop::int(100)), CmpOp::Lt, Term::Path(VarId(0), vec![sym(1)]));
        let plan = translate(&q, &idx);
        assert!(
            matches!(plan, AlgExpr::IndexRangeScan { lo: Some((_, false)), hi: None, .. }),
            "{plan:?}"
        );
    }

    #[test]
    fn key_must_be_computable_from_bound_vars() {
        // e ∈ X, d ∈ Y, pred: e!a = d!b — when scanning e, d is unbound, so
        // the equality cannot drive an index on e; it can drive one on d.
        let mut idx = IndexCatalog::new();
        idx.add_path(vec![sym(1)]);
        idx.add_path(vec![sym(2)]);
        let q = Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::NIL) },
            ],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Path(VarId(1), vec![sym(2)]),
            ),
        };
        let plan = translate(&q, &idx);
        // The fusion must be on the SECOND scan (v1), keyed by v0's path.
        match &plan {
            AlgExpr::NestJoin { left, right } => {
                assert!(matches!(**left, AlgExpr::Scan { var: VarId(0), .. }));
                match &**right {
                    AlgExpr::IndexScan { var, key, .. } => {
                        assert_eq!(*var, VarId(1));
                        assert!(matches!(key, Term::Path(VarId(0), _)));
                    }
                    other => panic!("expected IndexScan, got {other:?}"),
                }
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn pushdown_places_conjuncts_at_earliest_point() {
        // Conjunct on v0 only must sit below the v1 scan.
        let q = Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::NIL) },
            ],
            pred: Pred::Cmp(Term::Var(VarId(0)), CmpOp::Gt, Term::Const(Oop::int(3))),
        };
        let plan = translate(&q, &IndexCatalog::new());
        match plan {
            AlgExpr::NestJoin { left, right } => {
                assert!(matches!(*left, AlgExpr::Select { .. }), "filter below the join");
                assert!(matches!(*right, AlgExpr::Scan { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    /// e ∈ X, d ∈ Y (independent domains), pred: e!a = d!b.
    fn equi_join_query() -> Query {
        Query {
            result: vec![],
            ranges: vec![
                crate::Range { var: VarId(0), domain: Term::Const(Oop::NIL) },
                crate::Range { var: VarId(1), domain: Term::Const(Oop::TRUE) },
            ],
            pred: Pred::Cmp(
                Term::Path(VarId(0), vec![sym(1)]),
                CmpOp::Eq,
                Term::Path(VarId(1), vec![sym(2)]),
            ),
        }
    }

    #[test]
    fn independent_equality_ranges_become_hash_join() {
        let plan = translate(&equi_join_query(), &IndexCatalog::new());
        match &plan {
            AlgExpr::HashJoin { left, right, left_key, right_key } => {
                assert!(matches!(**left, AlgExpr::Scan { var: VarId(0), .. }));
                assert!(matches!(**right, AlgExpr::Scan { var: VarId(1), .. }));
                assert!(matches!(left_key, Term::Path(VarId(0), _)));
                assert!(matches!(right_key, Term::Path(VarId(1), _)));
            }
            other => panic!("expected HashJoin, got {other:?}"),
        }
        assert!(plan.uses_hash_join());
        assert!(plan.describe().contains("hash-join"), "{}", plan.describe());
    }

    #[test]
    fn flipped_equality_still_becomes_hash_join() {
        // d!b = e!a (new var on the left) normalizes to the same join.
        let mut q = equi_join_query();
        q.pred = Pred::Cmp(
            Term::Path(VarId(1), vec![sym(2)]),
            CmpOp::Eq,
            Term::Path(VarId(0), vec![sym(1)]),
        );
        let plan = translate(&q, &IndexCatalog::new());
        match &plan {
            AlgExpr::HashJoin { left_key, right_key, .. } => {
                assert!(matches!(left_key, Term::Path(VarId(0), _)), "probe key is bound side");
                assert!(matches!(right_key, Term::Path(VarId(1), _)), "build key is new side");
            }
            other => panic!("expected HashJoin, got {other:?}"),
        }
    }

    #[test]
    fn dependent_domain_falls_back_to_nest_join() {
        // m ∈ d!Managers depends on d: no hash join possible.
        let mut q = equi_join_query();
        q.ranges[1].domain = Term::Path(VarId(0), vec![sym(3)]);
        let plan = translate(&q, &IndexCatalog::new());
        assert!(!plan.uses_hash_join(), "{}", plan.describe());
    }

    #[test]
    fn hash_join_disabled_by_options() {
        let plan = translate_with(
            &equi_join_query(),
            &IndexCatalog::new(),
            &PlanOptions { hash_joins: false },
        );
        assert!(!plan.uses_hash_join(), "{}", plan.describe());
    }

    #[test]
    fn new_var_conjuncts_push_below_the_hash_join_build() {
        // d!b = e!a AND d!c > 5: the d-only filter must wrap d's scan
        // *inside* the join build side, not sit above the join.
        let mut q = equi_join_query();
        q.pred = q.pred.clone().and(Pred::Cmp(
            Term::Path(VarId(1), vec![sym(4)]),
            CmpOp::Gt,
            Term::Const(Oop::int(5)),
        ));
        let plan = translate(&q, &IndexCatalog::new());
        match &plan {
            AlgExpr::HashJoin { right, .. } => {
                assert!(
                    matches!(**right, AlgExpr::Select { .. }),
                    "build side filtered pre-join: {}",
                    plan.describe()
                );
            }
            other => panic!("expected HashJoin, got {other:?}"),
        }
    }

    #[test]
    fn non_equality_link_is_not_a_hash_join() {
        let mut q = equi_join_query();
        q.pred = Pred::Cmp(
            Term::Path(VarId(0), vec![sym(1)]),
            CmpOp::Lt,
            Term::Path(VarId(1), vec![sym(2)]),
        );
        let plan = translate(&q, &IndexCatalog::new());
        assert!(!plan.uses_hash_join(), "{}", plan.describe());
    }

    #[test]
    fn constant_conjuncts_become_final_filter() {
        let q = Query {
            result: vec![],
            ranges: vec![],
            pred: Pred::Cmp(Term::Const(Oop::int(1)), CmpOp::Eq, Term::Const(Oop::int(1))),
        };
        let plan = translate(&q, &IndexCatalog::new());
        assert!(matches!(plan, AlgExpr::Select { .. }));
    }
}
