//! The set algebra and its evaluator.
//!
//! Operators are *dependent*: a scan's domain term may reference variables
//! bound to its left, which is what lets the algebra realize calculus ranges
//! like `m ∈ d!Managers` directly (§5.1's "variables can be bound to
//! functions of other variables").

use crate::ast::{self, Pred, Query, Term, VarId};
use crate::QueryContext;
use gemstone_object::{ElemName, GemResult, Oop};

/// A (partial) environment: one slot per range variable.
pub type Binding = Vec<Oop>;

/// An algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgExpr {
    /// The empty binding.
    Unit,
    /// Bind `var` to each element value of `domain`.
    Scan { var: VarId, domain: Term },
    /// Bind `var` to the members of `domain` whose `path` value equals
    /// `key` — served by a directory when one covers the collection,
    /// otherwise by scan-and-filter. Replaces `Scan + Select(path = key)`.
    IndexScan { var: VarId, domain: Term, path: Vec<ElemName>, key: Term },
    /// Bind `var` to the members of `domain` whose `path` value lies in the
    /// half-open/closed interval — the directory's range scan. Bounds are
    /// `(term, inclusive)`. Replaces `Scan + Select(path </<=/>/>= key)`.
    IndexRangeScan {
        var: VarId,
        domain: Term,
        path: Vec<ElemName>,
        lo: Option<(Term, bool)>,
        hi: Option<(Term, bool)>,
    },
    /// Filter bindings by a residual predicate.
    Select { input: Box<AlgExpr>, pred: Pred },
    /// Dependent product: for each left binding, evaluate the right.
    NestJoin { left: Box<AlgExpr>, right: Box<AlgExpr> },
}

impl AlgExpr {
    /// Pretty printer for plan inspection (EXPERIMENTS.md shows plans).
    pub fn describe(&self) -> String {
        match self {
            AlgExpr::Unit => "unit".into(),
            AlgExpr::Scan { var, .. } => format!("scan v{}", var.0),
            AlgExpr::IndexScan { var, path, .. } => {
                format!("index-scan v{} on path({} names)", var.0, path.len())
            }
            AlgExpr::IndexRangeScan { var, path, .. } => {
                format!("index-range-scan v{} on path({} names)", var.0, path.len())
            }
            AlgExpr::Select { input, .. } => format!("select({})", input.describe()),
            AlgExpr::NestJoin { left, right } => {
                format!("({} ⋈ {})", left.describe(), right.describe())
            }
        }
    }

    /// True if any index scan appears in the plan.
    pub fn uses_index(&self) -> bool {
        match self {
            AlgExpr::Unit | AlgExpr::Scan { .. } => false,
            AlgExpr::IndexScan { .. } | AlgExpr::IndexRangeScan { .. } => true,
            AlgExpr::Select { input, .. } => input.uses_index(),
            AlgExpr::NestJoin { left, right } => left.uses_index() || right.uses_index(),
        }
    }
}

/// Evaluate an algebra expression, extending `base` bindings.
fn eval<C: QueryContext>(
    ctx: &mut C,
    expr: &AlgExpr,
    base: &Binding,
) -> GemResult<Vec<Binding>> {
    match expr {
        AlgExpr::Unit => Ok(vec![base.clone()]),
        AlgExpr::Scan { var, domain } => {
            let d = ast::eval_term(ctx, domain, base)?;
            let mut out = Vec::new();
            for m in ctx.elements(d)? {
                let mut env = base.clone();
                env[var.0 as usize] = m;
                out.push(env);
            }
            Ok(out)
        }
        AlgExpr::IndexScan { var, domain, path, key } => {
            let d = ast::eval_term(ctx, domain, base)?;
            let k = ast::eval_term(ctx, key, base)?;
            let members = match ctx.index_lookup(d, path, k)? {
                Some(members) => members,
                None => {
                    // No directory after all: scan and filter on the path.
                    let mut kept = Vec::new();
                    for m in ctx.elements(d)? {
                        let mut v = m;
                        for n in path {
                            v = ctx.elem(v, *n)?;
                        }
                        if ctx.equals(v, k)? {
                            kept.push(m);
                        }
                    }
                    kept
                }
            };
            let mut out = Vec::new();
            for m in members {
                let mut env = base.clone();
                env[var.0 as usize] = m;
                out.push(env);
            }
            Ok(out)
        }
        AlgExpr::IndexRangeScan { var, domain, path, lo, hi } => {
            let d = ast::eval_term(ctx, domain, base)?;
            let lo_v = match lo {
                Some((t, inc)) => Some((ast::eval_term(ctx, t, base)?, *inc)),
                None => None,
            };
            let hi_v = match hi {
                Some((t, inc)) => Some((ast::eval_term(ctx, t, base)?, *inc)),
                None => None,
            };
            let members = match ctx.index_range(d, path, lo_v, hi_v)? {
                Some(members) => members,
                None => {
                    // No directory: scan and test the bounds.
                    let mut kept = Vec::new();
                    for m in ctx.elements(d)? {
                        let mut v = m;
                        for n in path {
                            v = ctx.elem(v, *n)?;
                        }
                        let mut ok = true;
                        if let Some((b, inc)) = lo_v {
                            ok &= match ctx.compare(v, b)? {
                                Some(std::cmp::Ordering::Greater) => true,
                                Some(std::cmp::Ordering::Equal) => inc,
                                _ => false,
                            };
                        }
                        if ok {
                            if let Some((b, inc)) = hi_v {
                                ok &= match ctx.compare(v, b)? {
                                    Some(std::cmp::Ordering::Less) => true,
                                    Some(std::cmp::Ordering::Equal) => inc,
                                    _ => false,
                                };
                            }
                        }
                        if ok {
                            kept.push(m);
                        }
                    }
                    kept
                }
            };
            let mut out = Vec::new();
            for m in members {
                let mut env = base.clone();
                env[var.0 as usize] = m;
                out.push(env);
            }
            Ok(out)
        }
        AlgExpr::Select { input, pred } => {
            let mut out = Vec::new();
            for env in eval(ctx, input, base)? {
                if ast::eval_pred(ctx, pred, &env)? {
                    out.push(env);
                }
            }
            Ok(out)
        }
        AlgExpr::NestJoin { left, right } => {
            let mut out = Vec::new();
            for env in eval(ctx, left, base)? {
                out.extend(eval(ctx, right, &env)?);
            }
            Ok(out)
        }
    }
}

/// Run a plan and project each surviving binding through the query's result
/// template.
pub fn eval_algebra<C: QueryContext>(
    ctx: &mut C,
    plan: &AlgExpr,
    query: &Query,
) -> GemResult<Vec<Vec<Oop>>> {
    let base: Binding = vec![Oop::NIL; query.var_count()];
    let bindings = eval(ctx, plan, &base)?;
    let mut out = Vec::with_capacity(bindings.len());
    for env in bindings {
        let mut tuple = Vec::with_capacity(query.result.len());
        for (_, term) in &query.result {
            tuple.push(ast::eval_term(ctx, term, &env)?);
        }
        out.push(tuple);
    }
    Ok(out)
}
