//! The set algebra and its evaluator.
//!
//! Operators are *dependent*: a scan's domain term may reference variables
//! bound to its left, which is what lets the algebra realize calculus ranges
//! like `m ∈ d!Managers` directly (§5.1's "variables can be bound to
//! functions of other variables"). Independent equality joins get a real
//! [`AlgExpr::HashJoin`] operator instead, so two 1 000-element sets join in
//! O(n + m) row visits rather than the nested loop's O(n·m).
//!
//! Evaluation *streams*: every operator pushes bindings into a sink instead
//! of materializing intermediate `Vec<Binding>`s, and a binding is an
//! immutable [`Env`] chain extended in O(1) per bound variable — join
//! fan-out shares the common prefix instead of deep-cloning a row per
//! output binding. [`PlanStats`] counts what every operator touched, which
//! is how the benchmarks verify complexity claims by counters rather than
//! wall clock.

use crate::ast::{self, EnvRead, Pred, Query, Term, VarId};
use crate::QueryContext;
use gemstone_object::{GemResult, Oop, ValueKey};
use std::collections::HashMap;
use std::rc::Rc;

/// A (partial) environment as a dense row; the boundary representation
/// handed to callers of [`eval_algebra`].
pub type Binding = Vec<Oop>;

/// An immutable binding environment: a persistent chain of
/// (variable, value) pairs. `bind` is O(1) and shares the tail with the
/// parent, so a join producing k outputs from one left row allocates k
/// nodes, not k full row copies.
#[derive(Debug, Clone, Default)]
pub struct Env {
    node: Option<Rc<EnvNode>>,
}

#[derive(Debug)]
struct EnvNode {
    var: u16,
    val: Oop,
    parent: Option<Rc<EnvNode>>,
}

impl Env {
    /// The empty environment (every variable reads as nil).
    pub fn empty() -> Env {
        Env { node: None }
    }

    /// Extend with `var = val` (shadowing any earlier binding of `var`).
    pub fn bind(&self, var: VarId, val: Oop) -> Env {
        Env { node: Some(Rc::new(EnvNode { var: var.0, val, parent: self.node.clone() })) }
    }

    /// The bindings added on top of `base`, oldest first. `base` must be a
    /// tail of `self` (which the evaluator guarantees).
    fn delta_since(&self, base: &Env) -> Vec<(u16, Oop)> {
        let stop = base.node.as_ref().map(Rc::as_ptr);
        let mut out = Vec::new();
        let mut cur = self.node.as_ref();
        while let Some(n) = cur {
            if Some(Rc::as_ptr(n)) == stop {
                break;
            }
            out.push((n.var, n.val));
            cur = n.parent.as_ref();
        }
        out.reverse();
        out
    }

    /// Replay a recorded delta on top of `self`.
    fn bind_delta(&self, delta: &[(u16, Oop)]) -> Env {
        let mut env = self.clone();
        for &(var, val) in delta {
            env = env.bind(VarId(var), val);
        }
        env
    }

    /// Materialize as a dense row of `n` slots (unbound slots are nil).
    pub fn to_row(&self, n: usize) -> Binding {
        let mut row = vec![Oop::NIL; n];
        let mut cur = self.node.as_ref();
        let mut filled = 0usize;
        while let Some(node) = cur {
            let i = node.var as usize;
            if i < n && row[i].is_nil() {
                row[i] = node.val;
                filled += 1;
                if filled == n {
                    break;
                }
            }
            cur = node.parent.as_ref();
        }
        row
    }
}

impl EnvRead for Env {
    fn read(&self, var: VarId) -> Oop {
        let mut cur = self.node.as_ref();
        while let Some(n) = cur {
            if n.var == var.0 {
                return n.val;
            }
            cur = n.parent.as_ref();
        }
        Oop::NIL
    }
}

/// Counters the evaluator maintains per run: how many rows each operator
/// class visited. The join benchmark asserts complexity on these (an O(n+m)
/// hash join vs the O(n·m) nested loop), so they must count *visits*, not
/// results.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Bindings produced by plain scans (including index fallbacks, which
    /// visit every member).
    pub rows_scanned: u64,
    /// Bindings produced by directory-served index scans.
    pub index_rows: u64,
    /// Directory probes that were served.
    pub index_hits: u64,
    /// Directory probes that fell back to scan-and-filter.
    pub index_fallbacks: u64,
    /// Bindings entering a residual `Select`.
    pub select_in: u64,
    /// Bindings surviving a residual `Select`.
    pub select_out: u64,
    /// Left bindings that drove a dependent `NestJoin` re-evaluation.
    pub nest_loops: u64,
    /// Rows hashed into a join table (build side).
    pub hash_builds: u64,
    /// Rows probing a join table.
    pub hash_probes: u64,
    /// Matched (probe, build) pairs a hash join emitted.
    pub hash_matches: u64,
    /// Bindings that reached the result template.
    pub rows_out: u64,
}

impl PlanStats {
    /// Total scan-layer row visits — the complexity measure the benchmarks
    /// assert on. A nested equi-join over n×m sets scans n + n·m rows; the
    /// hash join scans n + m.
    pub fn row_visits(&self) -> u64 {
        self.rows_scanned + self.index_rows
    }

    /// One-line rendering for `explain()` output.
    pub fn summary(&self) -> String {
        format!(
            "rows: scanned={} indexed={} out={} | index: hits={} fallbacks={} | \
             select: {}/{} | nest-loops={} | hash: build={} probe={} match={}",
            self.rows_scanned,
            self.index_rows,
            self.rows_out,
            self.index_hits,
            self.index_fallbacks,
            self.select_out,
            self.select_in,
            self.nest_loops,
            self.hash_builds,
            self.hash_probes,
            self.hash_matches,
        )
    }
}

/// An algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgExpr {
    /// The empty binding.
    Unit,
    /// Bind `var` to each element value of `domain`.
    Scan { var: VarId, domain: Term },
    /// Bind `var` to the members of `domain` whose `path` value equals
    /// `key` — served by a directory when one covers the collection,
    /// otherwise by scan-and-filter. Replaces `Scan + Select(path = key)`.
    IndexScan { var: VarId, domain: Term, path: Vec<gemstone_object::ElemName>, key: Term },
    /// Bind `var` to the members of `domain` whose `path` value lies in the
    /// half-open/closed interval — the directory's range scan. Bounds are
    /// `(term, inclusive)`. Replaces `Scan + Select(path </<=/>/>= key)`.
    IndexRangeScan {
        var: VarId,
        domain: Term,
        path: Vec<gemstone_object::ElemName>,
        lo: Option<(Term, bool)>,
        hi: Option<(Term, bool)>,
    },
    /// Filter bindings by a residual predicate.
    Select { input: Box<AlgExpr>, pred: Pred },
    /// Dependent product: for each left binding, evaluate the right.
    NestJoin { left: Box<AlgExpr>, right: Box<AlgExpr> },
    /// Independent equality join: evaluate `right` once into a hash table
    /// keyed by `right_key`, then stream `left` probing with `left_key`.
    /// O(n + m) row visits where `NestJoin + Select` is O(n·m).
    HashJoin { left: Box<AlgExpr>, right: Box<AlgExpr>, left_key: Term, right_key: Term },
}

fn term_label(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("v{}", v.0),
        Term::Path(v, p) => format!("v{}!path({} names)", v.0, p.len()),
        Term::Const(_) => "const".into(),
        _ => "expr".into(),
    }
}

impl AlgExpr {
    /// Pretty printer for plan inspection (EXPERIMENTS.md shows plans).
    pub fn describe(&self) -> String {
        match self {
            AlgExpr::Unit => "unit".into(),
            AlgExpr::Scan { var, .. } => format!("scan v{}", var.0),
            AlgExpr::IndexScan { var, path, .. } => {
                format!("index-scan v{} on path({} names)", var.0, path.len())
            }
            AlgExpr::IndexRangeScan { var, path, .. } => {
                format!("index-range-scan v{} on path({} names)", var.0, path.len())
            }
            AlgExpr::Select { input, .. } => format!("select({})", input.describe()),
            AlgExpr::NestJoin { left, right } => {
                format!("({} ⋈ {})", left.describe(), right.describe())
            }
            AlgExpr::HashJoin { left, right, left_key, right_key } => {
                format!(
                    "hash-join[{} = {}]({}, {})",
                    term_label(left_key),
                    term_label(right_key),
                    left.describe(),
                    right.describe()
                )
            }
        }
    }

    /// True if any index scan appears in the plan.
    pub fn uses_index(&self) -> bool {
        match self {
            AlgExpr::Unit | AlgExpr::Scan { .. } => false,
            AlgExpr::IndexScan { .. } | AlgExpr::IndexRangeScan { .. } => true,
            AlgExpr::Select { input, .. } => input.uses_index(),
            AlgExpr::NestJoin { left, right } | AlgExpr::HashJoin { left, right, .. } => {
                left.uses_index() || right.uses_index()
            }
        }
    }

    /// True if a hash join appears in the plan.
    pub fn uses_hash_join(&self) -> bool {
        match self {
            AlgExpr::Unit
            | AlgExpr::Scan { .. }
            | AlgExpr::IndexScan { .. }
            | AlgExpr::IndexRangeScan { .. } => false,
            AlgExpr::Select { input, .. } => input.uses_hash_join(),
            AlgExpr::NestJoin { left, right } => left.uses_hash_join() || right.uses_hash_join(),
            AlgExpr::HashJoin { .. } => true,
        }
    }
}

/// The binding consumer threaded through streaming evaluation. The context
/// and meter ride along so sinks can evaluate dependent subplans.
type Sink<'a, C> = &'a mut dyn FnMut(&mut C, &mut Meter<'_>, Env) -> GemResult<()>;

/// Per-operator accumulators for one profiled run (parallel to the
/// pre-order node list the profiler built from the plan).
#[derive(Debug, Default, Clone, Copy)]
struct OpAcc {
    rows_out: u64,
    wall_ns: u64,
}

/// Profiling context: a pointer-identity map from plan nodes to pre-order
/// indices, the per-node accumulators, and the caller's clock. The plan is
/// borrowed for the whole evaluation, so node addresses are stable.
struct Prof<'p> {
    ids: &'p HashMap<usize, usize>,
    accs: &'p mut Vec<OpAcc>,
    clock: &'p dyn Fn() -> u64,
}

/// What every operator threads along: the aggregate [`PlanStats`] plus an
/// optional per-operator profiler. The unprofiled path pays one `None`
/// check per operator entry, nothing per row.
struct Meter<'p> {
    stats: &'p mut PlanStats,
    prof: Option<Prof<'p>>,
}

/// A build-side row: its join-key value plus the env delta to replay when
/// it matches a probe row.
type BuildRow = (Oop, Vec<(u16, Oop)>);

/// One side of a hash-join table: rows that hashed, and "loose" rows whose
/// key has no hashable image (compared pairwise by `equals`).
struct JoinTable {
    buckets: HashMap<ValueKey, Vec<BuildRow>>,
    loose: Vec<BuildRow>,
}

/// Evaluate an algebra expression, pushing each produced binding into
/// `out`. When profiling, wrap the sink to count this node's output rows
/// and charge it the inclusive wall time of the invocation. Wall time is
/// *inclusive of downstream consumption* — evaluation streams by pushing,
/// so a parent's sink runs inside the child's loop; with the strictly
/// monotonic telemetry clock every invocation still costs ≥ 1 ns, making
/// "nonzero wall time per operator" deterministic.
fn eval_stream<C: QueryContext>(
    ctx: &mut C,
    expr: &AlgExpr,
    env: &Env,
    meter: &mut Meter<'_>,
    out: Sink<'_, C>,
) -> GemResult<()> {
    let node =
        meter.prof.as_ref().and_then(|p| p.ids.get(&(expr as *const AlgExpr as usize)).copied());
    let Some(id) = node else {
        return eval_node(ctx, expr, env, meter, out);
    };
    let t0 = (meter.prof.as_ref().expect("profiled").clock)();
    let result = eval_node(ctx, expr, env, meter, &mut |ctx, m, e| {
        if let Some(p) = m.prof.as_mut() {
            p.accs[id].rows_out += 1;
        }
        out(ctx, m, e)
    });
    let p = meter.prof.as_mut().expect("profiled");
    let t1 = (p.clock)();
    p.accs[id].wall_ns += t1.saturating_sub(t0);
    result
}

/// The operator bodies (recursing through [`eval_stream`] so children are
/// profiled too).
fn eval_node<C: QueryContext>(
    ctx: &mut C,
    expr: &AlgExpr,
    env: &Env,
    meter: &mut Meter<'_>,
    out: Sink<'_, C>,
) -> GemResult<()> {
    match expr {
        AlgExpr::Unit => out(ctx, meter, env.clone()),
        AlgExpr::Scan { var, domain } => {
            let d = ast::eval_term(ctx, domain, env)?;
            for m in ctx.elements(d)? {
                meter.stats.rows_scanned += 1;
                out(ctx, meter, env.bind(*var, m))?;
            }
            Ok(())
        }
        AlgExpr::IndexScan { var, domain, path, key } => {
            let d = ast::eval_term(ctx, domain, env)?;
            let k = ast::eval_term(ctx, key, env)?;
            match ctx.index_lookup(d, path, k)? {
                Some(members) => {
                    meter.stats.index_hits += 1;
                    for m in members {
                        meter.stats.index_rows += 1;
                        out(ctx, meter, env.bind(*var, m))?;
                    }
                }
                None => {
                    // No directory after all: scan and filter on the path.
                    meter.stats.index_fallbacks += 1;
                    for m in ctx.elements(d)? {
                        meter.stats.rows_scanned += 1;
                        let mut v = m;
                        for n in path {
                            v = ctx.elem(v, *n)?;
                        }
                        if ctx.equals(v, k)? {
                            out(ctx, meter, env.bind(*var, m))?;
                        }
                    }
                }
            }
            Ok(())
        }
        AlgExpr::IndexRangeScan { var, domain, path, lo, hi } => {
            let d = ast::eval_term(ctx, domain, env)?;
            let lo_v = match lo {
                Some((t, inc)) => Some((ast::eval_term(ctx, t, env)?, *inc)),
                None => None,
            };
            let hi_v = match hi {
                Some((t, inc)) => Some((ast::eval_term(ctx, t, env)?, *inc)),
                None => None,
            };
            match ctx.index_range(d, path, lo_v, hi_v)? {
                Some(members) => {
                    meter.stats.index_hits += 1;
                    for m in members {
                        meter.stats.index_rows += 1;
                        out(ctx, meter, env.bind(*var, m))?;
                    }
                }
                None => {
                    // No directory: scan and test the bounds.
                    meter.stats.index_fallbacks += 1;
                    for m in ctx.elements(d)? {
                        meter.stats.rows_scanned += 1;
                        let mut v = m;
                        for n in path {
                            v = ctx.elem(v, *n)?;
                        }
                        let mut ok = true;
                        if let Some((b, inc)) = lo_v {
                            ok &= match ctx.compare(v, b)? {
                                Some(std::cmp::Ordering::Greater) => true,
                                Some(std::cmp::Ordering::Equal) => inc,
                                _ => false,
                            };
                        }
                        if ok {
                            if let Some((b, inc)) = hi_v {
                                ok &= match ctx.compare(v, b)? {
                                    Some(std::cmp::Ordering::Less) => true,
                                    Some(std::cmp::Ordering::Equal) => inc,
                                    _ => false,
                                };
                            }
                        }
                        if ok {
                            out(ctx, meter, env.bind(*var, m))?;
                        }
                    }
                }
            }
            Ok(())
        }
        AlgExpr::Select { input, pred } => {
            eval_stream(ctx, input, env, meter, &mut |ctx, meter, e| {
                meter.stats.select_in += 1;
                if ast::eval_pred(ctx, pred, &e)? {
                    meter.stats.select_out += 1;
                    out(ctx, meter, e)
                } else {
                    Ok(())
                }
            })
        }
        AlgExpr::NestJoin { left, right } => {
            eval_stream(ctx, left, env, meter, &mut |ctx, meter, lenv| {
                meter.stats.nest_loops += 1;
                eval_stream(ctx, right, &lenv, meter, &mut *out)
            })
        }
        AlgExpr::HashJoin { left, right, left_key, right_key } => {
            // Build: evaluate the right side once from the *outer* env (the
            // translator guarantees independence) and hash it by key. Rows
            // whose key has no hashable image go to the loose list and are
            // probed pairwise by `equals`.
            let mut table = JoinTable { buckets: HashMap::new(), loose: Vec::new() };
            eval_stream(ctx, right, env, meter, &mut |ctx, meter, renv| {
                meter.stats.hash_builds += 1;
                let kv = ast::eval_term(ctx, right_key, &renv)?;
                let delta = renv.delta_since(env);
                match ctx.join_key(kv)? {
                    Some(k) => table.buckets.entry(k).or_default().push((kv, delta)),
                    None => table.loose.push((kv, delta)),
                }
                Ok(())
            })?;
            // Probe: stream the left side through the table.
            eval_stream(ctx, left, env, meter, &mut |ctx, meter, lenv| {
                meter.stats.hash_probes += 1;
                let kv = ast::eval_term(ctx, left_key, &lenv)?;
                match ctx.join_key(kv)? {
                    Some(k) => {
                        if let Some(bucket) = table.buckets.get(&k) {
                            for (_, delta) in bucket {
                                meter.stats.hash_matches += 1;
                                out(ctx, meter, lenv.bind_delta(delta))?;
                            }
                        }
                        for (rkv, delta) in &table.loose {
                            if ctx.equals(kv, *rkv)? {
                                meter.stats.hash_matches += 1;
                                out(ctx, meter, lenv.bind_delta(delta))?;
                            }
                        }
                    }
                    None => {
                        // Unhashable probe key: fall back to pairwise
                        // equality against every build row.
                        for bucket in table.buckets.values() {
                            for (rkv, delta) in bucket {
                                if ctx.equals(kv, *rkv)? {
                                    meter.stats.hash_matches += 1;
                                    out(ctx, meter, lenv.bind_delta(delta))?;
                                }
                            }
                        }
                        for (rkv, delta) in &table.loose {
                            if ctx.equals(kv, *rkv)? {
                                meter.stats.hash_matches += 1;
                                out(ctx, meter, lenv.bind_delta(delta))?;
                            }
                        }
                    }
                }
                Ok(())
            })
        }
    }
}

// ------------------------------------------------- per-operator profiles

/// One operator of a profiled plan, in pre-order.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// Shallow operator label (`scan v0`, `hash-join[…]`, …).
    pub label: String,
    /// Tree depth (root = 0); with pre-order, enough to render the tree.
    pub depth: usize,
    /// Pre-order indices of the children.
    pub children: Vec<usize>,
    /// Rows this operator consumed: sum of children `rows_out` (leaves
    /// consume what they emit).
    pub rows_in: u64,
    /// Bindings this operator emitted to its consumer.
    pub rows_out: u64,
    /// Hash joins: rows hashed into the build table (the right child's
    /// output). `None` for every other operator.
    pub build_rows: Option<u64>,
    /// Inclusive wall time of this operator's evaluation, in nanoseconds.
    /// Streaming pushes rows *through* the consumer, so a node's time
    /// includes downstream work on its rows.
    pub wall_ns: u64,
    /// The planner's rows_out estimate for this operator, attached by
    /// [`OpProfile::attach_estimates`] after a planned run. `None` when no
    /// decision was recorded (plain profiled evaluation).
    pub est_rows: Option<u64>,
}

/// Estimate-vs-actual error in percent, signed (positive = actual exceeded
/// the estimate), against a floor-1 denominator so zero estimates stay
/// finite.
pub fn est_err_pct(est: u64, actual: u64) -> i64 {
    ((actual as i128 - est as i128) * 100 / est.max(1) as i128) as i64
}

/// Per-operator counters for one evaluated plan (the EXPLAIN ANALYZE
/// payload), in pre-order of the algebra tree.
#[derive(Debug, Clone, Default)]
pub struct OpProfile {
    pub nodes: Vec<OpNode>,
}

impl OpProfile {
    /// The root operator (none for an empty profile).
    pub fn root(&self) -> Option<&OpNode> {
        self.nodes.first()
    }

    /// Rows the whole plan produced.
    pub fn rows_out(&self) -> u64 {
        self.root().map(|n| n.rows_out).unwrap_or(0)
    }

    /// Zip the planner's pre-order rows_out estimates onto the nodes (both
    /// sides are pre-order walks of the same tree, so indices line up).
    pub fn attach_estimates(&mut self, est_rows: &[u64]) {
        for (n, e) in self.nodes.iter_mut().zip(est_rows) {
            n.est_rows = Some(*e);
        }
    }

    /// The worst estimate-vs-actual node: `(index, est, actual)` by error
    /// ratio, once estimates are attached. Drift detection keys off this.
    pub fn worst_estimate(&self) -> Option<(usize, u64, u64)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.est_rows.map(|e| (i, e, n.rows_out)))
            .max_by(|a, b| {
                let ratio = |&(_, e, a): &(usize, u64, u64)| {
                    e.max(a).max(1) as f64 / e.min(a).max(1) as f64
                };
                ratio(a).partial_cmp(&ratio(b)).unwrap()
            })
    }

    /// Indented tree rendering with per-operator annotations.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self.nodes.iter().map(|n| n.depth * 2 + n.label.len()).max().unwrap_or(0);
        for n in &self.nodes {
            let pad = "  ".repeat(n.depth);
            let build = match n.build_rows {
                Some(b) => format!(" build={b}"),
                None => String::new(),
            };
            let est = match n.est_rows {
                Some(e) => {
                    format!(" est={e} err={:+}%", est_err_pct(e, n.rows_out))
                }
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{pad}{label:<w$}  rows_in={ri} rows_out={ro}{est}{build} wall={ns}ns",
                label = n.label,
                w = width.saturating_sub(n.depth * 2),
                ri = n.rows_in,
                ro = n.rows_out,
                ns = n.wall_ns,
            );
        }
        out
    }
}

/// Pair every single-variable `Select` operator with its observed row flow.
/// The walk is the same pre-order as [`OpProfile`] nodes, so index `i` of
/// the walk is node `i` of the profile. Returns `(var, pred_key, rows_in,
/// rows_out)` tuples — how observed selectivities from an analyzed run get
/// back into the statistics catalog.
pub fn scrape_selectivities(plan: &AlgExpr, profile: &OpProfile) -> Vec<(u16, String, u64, u64)> {
    fn walk(
        e: &AlgExpr,
        idx: &mut usize,
        profile: &OpProfile,
        out: &mut Vec<(u16, String, u64, u64)>,
    ) {
        let my = *idx;
        *idx += 1;
        match e {
            AlgExpr::Unit
            | AlgExpr::Scan { .. }
            | AlgExpr::IndexScan { .. }
            | AlgExpr::IndexRangeScan { .. } => {}
            AlgExpr::Select { input, pred } => {
                let mut vars = Vec::new();
                pred.vars(&mut vars);
                if let (Some(n), [v]) = (profile.nodes.get(my), vars.as_slice()) {
                    out.push((v.0, crate::stats::pred_key(pred), n.rows_in, n.rows_out));
                }
                walk(input, idx, profile, out);
            }
            AlgExpr::NestJoin { left, right } | AlgExpr::HashJoin { left, right, .. } => {
                walk(left, idx, profile, out);
                walk(right, idx, profile, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut 0, profile, &mut out);
    out
}

/// Shallow (single-node) operator label.
fn node_label(e: &AlgExpr) -> String {
    match e {
        AlgExpr::Unit => "unit".into(),
        AlgExpr::Scan { var, .. } => format!("scan v{}", var.0),
        AlgExpr::IndexScan { var, path, .. } => {
            format!("index-scan v{} on path({} names)", var.0, path.len())
        }
        AlgExpr::IndexRangeScan { var, path, .. } => {
            format!("index-range-scan v{} on path({} names)", var.0, path.len())
        }
        AlgExpr::Select { .. } => "select".into(),
        AlgExpr::NestJoin { .. } => "nest-join".into(),
        AlgExpr::HashJoin { left_key, right_key, .. } => {
            format!("hash-join[{} = {}]", term_label(left_key), term_label(right_key))
        }
    }
}

/// Pre-order walk: assign indices by node address, record label/depth and
/// child indices. Returns this subtree's root index.
fn index_plan(
    expr: &AlgExpr,
    depth: usize,
    ids: &mut HashMap<usize, usize>,
    skeleton: &mut Vec<(String, usize, Vec<usize>, bool)>,
) -> usize {
    let id = skeleton.len();
    ids.insert(expr as *const AlgExpr as usize, id);
    let is_hash = matches!(expr, AlgExpr::HashJoin { .. });
    skeleton.push((node_label(expr), depth, Vec::new(), is_hash));
    let children: Vec<usize> = match expr {
        AlgExpr::Unit
        | AlgExpr::Scan { .. }
        | AlgExpr::IndexScan { .. }
        | AlgExpr::IndexRangeScan { .. } => Vec::new(),
        AlgExpr::Select { input, .. } => {
            vec![index_plan(input, depth + 1, ids, skeleton)]
        }
        AlgExpr::NestJoin { left, right } | AlgExpr::HashJoin { left, right, .. } => {
            vec![
                index_plan(left, depth + 1, ids, skeleton),
                index_plan(right, depth + 1, ids, skeleton),
            ]
        }
    };
    skeleton[id].2 = children;
    id
}

/// Run a plan and project each surviving binding through the query's result
/// template, counting operator work into `stats`.
pub fn eval_algebra_stats<C: QueryContext>(
    ctx: &mut C,
    plan: &AlgExpr,
    query: &Query,
    stats: &mut PlanStats,
) -> GemResult<Vec<Vec<Oop>>> {
    let mut meter = Meter { stats, prof: None };
    eval_projected(ctx, plan, query, &mut meter)
}

/// Run a plan with per-operator profiling: same results and aggregate
/// stats as [`eval_algebra_stats`], plus an [`OpProfile`] with per-node
/// rows-in/out, hash-build sizes, and inclusive wall time read from
/// `clock` (nanoseconds; inject a deterministic clock in tests).
pub fn eval_algebra_profiled<C: QueryContext>(
    ctx: &mut C,
    plan: &AlgExpr,
    query: &Query,
    stats: &mut PlanStats,
    clock: &dyn Fn() -> u64,
) -> GemResult<(Vec<Vec<Oop>>, OpProfile)> {
    let mut ids = HashMap::new();
    let mut skeleton = Vec::new();
    index_plan(plan, 0, &mut ids, &mut skeleton);
    let mut accs = vec![OpAcc::default(); skeleton.len()];
    let rows = {
        let mut meter = Meter { stats, prof: Some(Prof { ids: &ids, accs: &mut accs, clock }) };
        eval_projected(ctx, plan, query, &mut meter)?
    };
    let nodes = skeleton
        .into_iter()
        .enumerate()
        .map(|(i, (label, depth, children, is_hash))| {
            let rows_in = if children.is_empty() {
                accs[i].rows_out
            } else {
                children.iter().map(|&c| accs[c].rows_out).sum()
            };
            let build_rows =
                if is_hash { children.get(1).map(|&c| accs[c].rows_out) } else { None };
            OpNode {
                label,
                depth,
                rows_in,
                rows_out: accs[i].rows_out,
                build_rows,
                wall_ns: accs[i].wall_ns,
                children,
                est_rows: None,
            }
        })
        .collect();
    Ok((rows, OpProfile { nodes }))
}

fn eval_projected<C: QueryContext>(
    ctx: &mut C,
    plan: &AlgExpr,
    query: &Query,
    meter: &mut Meter<'_>,
) -> GemResult<Vec<Vec<Oop>>> {
    let base = Env::empty();
    let mut out: Vec<Vec<Oop>> = Vec::new();
    eval_stream(ctx, plan, &base, meter, &mut |ctx, meter, env| {
        meter.stats.rows_out += 1;
        let mut tuple = Vec::with_capacity(query.result.len());
        for (_, term) in &query.result {
            tuple.push(ast::eval_term(ctx, term, &env)?);
        }
        out.push(tuple);
        Ok(())
    })?;
    Ok(out)
}

/// Run a plan and project each surviving binding through the query's result
/// template.
pub fn eval_algebra<C: QueryContext>(
    ctx: &mut C,
    plan: &AlgExpr,
    query: &Query,
) -> GemResult<Vec<Vec<Oop>>> {
    let mut stats = PlanStats::default();
    eval_algebra_stats(ctx, plan, query, &mut stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_bind_get_and_shadowing() {
        let e = Env::empty();
        assert!(e.read(VarId(0)).is_nil());
        let e1 = e.bind(VarId(0), Oop::int(1));
        let e2 = e1.bind(VarId(1), Oop::int(2));
        assert_eq!(e2.read(VarId(0)).as_int(), Some(1));
        assert_eq!(e2.read(VarId(1)).as_int(), Some(2));
        let shadowed = e2.bind(VarId(0), Oop::int(9));
        assert_eq!(shadowed.read(VarId(0)).as_int(), Some(9));
        // The parent is untouched (persistence).
        assert_eq!(e2.read(VarId(0)).as_int(), Some(1));
    }

    #[test]
    fn env_delta_roundtrip() {
        let base = Env::empty().bind(VarId(0), Oop::int(7));
        let ext = base.bind(VarId(1), Oop::int(8)).bind(VarId(2), Oop::int(9));
        let delta = ext.delta_since(&base);
        assert_eq!(delta, vec![(1, Oop::int(8)), (2, Oop::int(9))]);
        let other = Env::empty().bind(VarId(0), Oop::int(70));
        let replayed = other.bind_delta(&delta);
        assert_eq!(replayed.read(VarId(0)).as_int(), Some(70));
        assert_eq!(replayed.read(VarId(1)).as_int(), Some(8));
        assert_eq!(replayed.read(VarId(2)).as_int(), Some(9));
    }

    #[test]
    fn env_to_row_densifies() {
        let e = Env::empty().bind(VarId(0), Oop::int(1)).bind(VarId(2), Oop::int(3));
        assert_eq!(e.to_row(3), vec![Oop::int(1), Oop::NIL, Oop::int(3)]);
    }

    #[test]
    fn describe_shows_hash_join() {
        let plan = AlgExpr::HashJoin {
            left: Box::new(AlgExpr::Scan { var: VarId(0), domain: Term::Const(Oop::NIL) }),
            right: Box::new(AlgExpr::Scan { var: VarId(1), domain: Term::Const(Oop::NIL) }),
            left_key: Term::Path(VarId(0), vec![gemstone_object::ElemName::Int(0)]),
            right_key: Term::Path(VarId(1), vec![gemstone_object::ElemName::Int(0)]),
        };
        let d = plan.describe();
        assert!(d.contains("hash-join"), "{d}");
        assert!(!plan.uses_index());
        assert!(plan.uses_hash_join());
    }
}
