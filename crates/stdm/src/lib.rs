//! The Set-Theoretic Data Model (STDM) of §5.1–§5.3.
//!
//! STDM is the data model Servio Logic designed *before* choosing
//! Smalltalk-80: "labeled sets of heterogeneous values, which themselves can
//! be sets or simple values", building on Childs \[Chi\]. This crate implements
//! STDM exactly as the paper presents it, pre-merger:
//!
//! * [`LabeledSet`] — sets of (element name, value) pairs, unlimited nesting,
//!   optional elements, generated aliases for unlabeled sets;
//! * [`Path`] — the `X!Departments!A16!Managers` path syntax, including
//!   `@T` temporal access and assignment-to-path;
//! * [`Query`] — the set calculus with range variables that "can be bound to
//!   functions of other variables", and its nested-loop evaluator;
//! * [`encode`] — the §5.2 encodings: relations, arrays and records as
//!   labeled sets, and the flattening that the relational model forces.
//!
//! Deliberate STDM limitations the paper calls out in §5.4 — no entity
//! identity (a set instance is an element of at most one other set), no type
//! hierarchy, no operations on types — are *kept*: ownership of child sets
//! is by value, which is exactly "an element in at most one other set". The
//! merged GemStone Data Model that fixes these lives in the `gemstone` core
//! crate.

pub mod encode;
mod path;
mod query;
mod value;

pub use path::{parse_path, Path, PathStep};
pub use query::{CmpOp, Pred, Query, Range, Term};
pub use value::{Label, LabeledSet, SValue};

pub use gemstone_temporal::TxnTime;
