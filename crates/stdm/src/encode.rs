//! The §5.2 encodings: how standard data structures map into STDM, and what
//! the relational model forces instead.
//!
//! These functions back experiments T1 (relation as a set of tuples), T2
//! (flattening a set-valued attribute) and T3 (arrays as integer-labeled
//! sets) from DESIGN.md.

use crate::value::{Label, LabeledSet, SValue};

/// Encode a relation as a set of tuples: "A relation is represented as a set
/// of tuples, where each tuple is a set with element names corresponding to
/// attributes of the relation" (§5.2). Tuples get `T1`, `T2`, … labels as in
/// the paper's example.
pub fn relation_to_set(attrs: &[&str], rows: &[Vec<SValue>]) -> LabeledSet {
    let mut rel = LabeledSet::new();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), attrs.len(), "row arity must match attributes");
        let mut tuple = LabeledSet::new();
        for (attr, v) in attrs.iter().zip(row) {
            tuple.put(Label::name(*attr), v.clone());
        }
        rel.put(Label::name(format!("T{}", i + 1)), tuple);
    }
    rel
}

/// Decode a set of tuples back into rows, in tuple-label order. Attributes
/// absent from a tuple come back as nil (STDM tolerates optional elements;
/// the relation does not).
pub fn set_to_relation(attrs: &[&str], rel: &LabeledSet) -> Vec<Vec<SValue>> {
    rel.iter()
        .map(|(_, tuple)| {
            let t = tuple.as_set().expect("tuple must be a set");
            attrs.iter().map(|a| t.get(&Label::name(*a)).cloned().unwrap_or(SValue::Nil)).collect()
        })
        .collect()
}

/// Encode an array: "Arrays may be represented by sets with numbers as
/// element names" (§5.2). 1-based, as in the paper's example.
pub fn array_to_set<V: Into<SValue>>(items: impl IntoIterator<Item = V>) -> LabeledSet {
    let mut s = LabeledSet::new();
    for (i, v) in items.into_iter().enumerate() {
        s.put(Label::Int(i as i64 + 1), v);
    }
    s
}

/// Read an array encoding back out in index order.
pub fn set_to_array(s: &LabeledSet) -> Vec<SValue> {
    s.iter().filter(|(l, _)| matches!(l, Label::Int(_))).map(|(_, v)| v.clone()).collect()
}

/// The §5.2 flattening: an employee with a set of children becomes one
/// relational row *per child*, repeating the employee's name in every row.
///
/// Input shape: `{Name: {First: …, Last: …}, Children: {…}}`.
/// Output rows: `(FirstName, LastName, Child)`.
pub fn flatten_children(employee: &LabeledSet) -> Vec<(String, String, String)> {
    let name = employee
        .get(&Label::name("Name"))
        .and_then(SValue::as_set)
        .expect("employee must have a Name set");
    let first = string_at(name, "First");
    let last = string_at(name, "Last");
    let children = employee
        .get(&Label::name("Children"))
        .and_then(SValue::as_set)
        .expect("employee must have a Children set");
    children
        .iter()
        .map(|(_, c)| match c {
            SValue::Str(s) => (first.clone(), last.clone(), s.clone()),
            v => panic!("child must be a string, got {v:?}"),
        })
        .collect()
}

fn string_at(s: &LabeledSet, label: &str) -> String {
    match s.get(&Label::name(label)) {
        Some(SValue::Str(v)) => v.clone(),
        other => panic!("expected string at {label}, got {other:?}"),
    }
}

/// Bytes of payload data in a nested employee record (strings only): the
/// denominator for the redundancy measurement of experiment T2.
pub fn payload_bytes(v: &SValue) -> usize {
    match v {
        SValue::Str(s) => s.len(),
        SValue::Set(s) => s.iter().map(|(_, v)| payload_bytes(v)).sum(),
        SValue::Int(_) | SValue::Float(_) => 8,
        SValue::Bool(_) => 1,
        SValue::Nil => 0,
    }
}

/// Bytes of payload data in the flattened relational rows — the repeated
/// name bytes are the "unavoidable redundancy" §5.2 identifies.
pub fn flattened_bytes(rows: &[(String, String, String)]) -> usize {
    rows.iter().map(|(a, b, c)| a.len() + b.len() + c.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.2's inline relation:
    /// ```text
    /// A B C
    /// 1 3 4
    /// 1 5 4
    /// ```
    #[test]
    fn t1_relation_roundtrip() {
        let attrs = ["A", "B", "C"];
        let rows = vec![
            vec![SValue::Int(1), SValue::Int(3), SValue::Int(4)],
            vec![SValue::Int(1), SValue::Int(5), SValue::Int(4)],
        ];
        let rel = relation_to_set(&attrs, &rows);
        assert_eq!(
            rel.to_string(),
            "{T1: {A: 1, B: 3, C: 4}, T2: {A: 1, B: 5, C: 4}}",
            "matches the paper's printed encoding"
        );
        assert_eq!(set_to_relation(&attrs, &rel), rows);
    }

    /// §5.2's inline array example.
    #[test]
    fn t3_array_encoding() {
        let arr = array_to_set([
            SValue::Set(LabeledSet::values(["Anders", "Roberts"])),
            SValue::Set(LabeledSet::values(["Roberts", "Ching"])),
            SValue::Set(LabeledSet::values(["Albrecht", "Ching"])),
        ]);
        assert_eq!(arr.len(), 3);
        let back = set_to_array(&arr);
        assert_eq!(back.len(), 3);
        assert!(back[0].as_set().unwrap().contains_value(&SValue::from("Anders")));
        // "The index set for an array need not be positive integers" — other
        // labels coexist:
        let mut arr2 = arr.clone();
        arr2.put(Label::name("rowCount"), 3i64);
        assert_eq!(set_to_array(&arr2).len(), 3, "named elements don't disturb the array view");
    }

    /// §5.2's flattening table:
    /// ```text
    /// FirstName LastName Child
    /// Robert    Peters   Olivia
    /// Robert    Peters   Dale
    /// Robert    Peters   Paul
    /// ```
    #[test]
    fn t2_flattening_matches_paper() {
        let emp = LabeledSet::of([
            ("Name", SValue::Set(LabeledSet::of([("First", "Robert"), ("Last", "Peters")]))),
            ("Children", SValue::Set(LabeledSet::values(["Olivia", "Dale", "Paul"]))),
        ]);
        let mut rows = flatten_children(&emp);
        rows.sort_by(|a, b| a.2.cmp(&b.2));
        assert_eq!(
            rows,
            vec![
                ("Robert".into(), "Peters".into(), "Dale".into()),
                ("Robert".into(), "Peters".into(), "Olivia".into()),
                ("Robert".into(), "Peters".into(), "Paul".into()),
            ]
        );
    }

    /// "Some value is going to be repeated three times": quantify it.
    #[test]
    fn t2_redundancy_is_measurable() {
        let emp = LabeledSet::of([
            ("Name", SValue::Set(LabeledSet::of([("First", "Robert"), ("Last", "Peters")]))),
            ("Children", SValue::Set(LabeledSet::values(["Olivia", "Dale", "Paul"]))),
        ]);
        let nested = payload_bytes(&SValue::Set(emp.clone()));
        let flat = flattened_bytes(&flatten_children(&emp));
        // nested: Robert+Peters once + 3 children = 6+6+6+4+4 = 26
        // flat:   (Robert+Peters) × 3 + children  = 36 + 14   = 50
        assert_eq!(nested, 26);
        assert_eq!(flat, 50);
        assert!(flat > nested, "flattening repeats the name per child");
    }

    /// "the set of children does not exist anywhere as a single object" in
    /// the flat form — but in STDM the subset test is one operation.
    #[test]
    fn t2_set_operations_stay_expressible() {
        let peters_kids = LabeledSet::values(["Olivia", "Dale", "Paul"]);
        let all_kids = LabeledSet::values(["Olivia", "Dale", "Paul", "Sam"]);
        assert!(peters_kids.subset_of(&all_kids));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn relation_rows_must_match_arity() {
        relation_to_set(&["A", "B"], &[vec![SValue::Int(1)]]);
    }

    #[test]
    fn optional_elements_come_back_nil() {
        let mut rel = LabeledSet::new();
        rel.put(Label::name("T1"), LabeledSet::of([("A", 1i64)]));
        let rows = set_to_relation(&["A", "B"], &rel);
        assert_eq!(rows, vec![vec![SValue::Int(1), SValue::Nil]]);
    }
}
