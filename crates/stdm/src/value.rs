//! Labeled sets and simple values (§5.1).
//!
//! "STDM has simple types, generally subsets of number or character types,
//! and sets. A set (denoted with {...}) has elements, each of which has an
//! element name that labels the element and a value, which can be from a
//! simple type or a set. … No two elements in a set may have the same
//! element name."

use gemstone_temporal::{History, TxnTime};
use std::collections::BTreeMap;
use std::fmt;

/// An element name: a symbolic label, a number (arrays), or a generated
/// alias for unlabeled sets.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    Int(i64),
    Name(String),
    Alias(u64),
}

impl Label {
    /// Convenience constructor from anything string-like.
    pub fn name(s: impl Into<String>) -> Label {
        Label::Name(s.into())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Int(i) => write!(f, "{i}"),
            Label::Name(s) => write!(f, "{s}"),
            Label::Alias(a) => write!(f, "@a{a}"),
        }
    }
}

/// An STDM value: a simple value or a set. Child sets are owned by value —
/// §5.4: "STDM sets are unlike mathematical sets, in that any set instance
/// can be an element in at most one other set."
#[derive(Debug, Clone, PartialEq)]
pub enum SValue {
    Nil,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Set(LabeledSet),
}

impl SValue {
    /// Numeric view for comparisons.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            SValue::Int(i) => Some(*i as f64),
            SValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The set, if this is one.
    pub fn as_set(&self) -> Option<&LabeledSet> {
        match self {
            SValue::Set(s) => Some(s),
            _ => None,
        }
    }

    /// The set, mutably.
    pub fn as_set_mut(&mut self) -> Option<&mut LabeledSet> {
        match self {
            SValue::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Structural equality with numeric coercion (`24000 = 24000.0`).
    pub fn equals(&self, other: &SValue) -> bool {
        if let (Some(a), Some(b)) = (self.as_number(), other.as_number()) {
            return a == b;
        }
        self == other
    }

    /// True for nil.
    pub fn is_nil(&self) -> bool {
        matches!(self, SValue::Nil)
    }
}

impl From<i64> for SValue {
    fn from(v: i64) -> SValue {
        SValue::Int(v)
    }
}
impl From<f64> for SValue {
    fn from(v: f64) -> SValue {
        SValue::Float(v)
    }
}
impl From<&str> for SValue {
    fn from(v: &str) -> SValue {
        SValue::Str(v.to_string())
    }
}
impl From<String> for SValue {
    fn from(v: String) -> SValue {
        SValue::Str(v)
    }
}
impl From<bool> for SValue {
    fn from(v: bool) -> SValue {
        SValue::Bool(v)
    }
}
impl From<LabeledSet> for SValue {
    fn from(v: LabeledSet) -> SValue {
        SValue::Set(v)
    }
}

/// A labeled set with per-element history (§5.3.2: "We represent history in
/// STDM by replacing an element's single value with a set of values … The
/// binding between an element name and its associated value is indexed by
/// time. Objects themselves do not have time.").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabeledSet {
    elems: BTreeMap<Label, History<SValue>>,
    alias_next: u64,
}

impl LabeledSet {
    /// An empty set.
    pub fn new() -> LabeledSet {
        LabeledSet::default()
    }

    /// Bind `label` to `value` at transaction time `t`.
    pub fn put_at(&mut self, label: Label, value: impl Into<SValue>, t: TxnTime) {
        self.elems.entry(label).or_insert_with(History::new).write_committed(t, value.into());
    }

    /// Bind at `EPOCH` (for building non-temporal example databases).
    pub fn put(&mut self, label: Label, value: impl Into<SValue>) {
        self.put_at(label, value, TxnTime::EPOCH);
    }

    /// Add a value under a fresh alias at time `t`, returning the alias.
    pub fn add_at(&mut self, value: impl Into<SValue>, t: TxnTime) -> Label {
        let label = Label::Alias(self.alias_next);
        self.alias_next += 1;
        self.put_at(label.clone(), value, t);
        label
    }

    /// Add under a fresh alias at `EPOCH`.
    pub fn add(&mut self, value: impl Into<SValue>) -> Label {
        self.add_at(value, TxnTime::EPOCH)
    }

    /// Remove an element at time `t` — which, per the temporal model, binds
    /// it to nil rather than erasing it (Figure 1's employee 1821).
    pub fn remove_at(&mut self, label: Label, t: TxnTime) {
        self.put_at(label, SValue::Nil, t);
    }

    /// Current value of an element. Nil/absent are indistinguishable.
    pub fn get(&self, label: &Label) -> Option<&SValue> {
        self.elems.get(label).and_then(|h| h.current()).filter(|v| !v.is_nil())
    }

    /// Value of an element in the database state at time `t`.
    pub fn get_at(&self, label: &Label, t: TxnTime) -> Option<&SValue> {
        self.elems.get(label).and_then(|h| h.as_of(t)).filter(|v| !v.is_nil())
    }

    /// The full history of an element.
    pub fn history(&self, label: &Label) -> Option<&History<SValue>> {
        self.elems.get(label)
    }

    /// Present elements (non-nil current values), in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &SValue)> {
        self.elems.iter().filter_map(|(l, h)| h.current().filter(|v| !v.is_nil()).map(|v| (l, v)))
    }

    /// Elements present at time `t`.
    pub fn iter_at(&self, t: TxnTime) -> impl Iterator<Item = (&Label, &SValue)> {
        self.elems
            .iter()
            .filter_map(move |(l, h)| h.as_of(t).filter(|v| !v.is_nil()).map(|v| (l, v)))
    }

    /// Number of present elements.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if any present element's value equals `v` (set membership —
    /// the `∈` of the calculus: `d!Name ∈ e!Depts`).
    pub fn contains_value(&self, v: &SValue) -> bool {
        self.iter().any(|(_, e)| e.equals(v))
    }

    /// True if every value of `self` is a value of `other` — the subset test
    /// that §5.2 notes "requires two quantifiers in relational calculus" but
    /// is a single operation on a set entity.
    pub fn subset_of(&self, other: &LabeledSet) -> bool {
        self.iter().all(|(_, v)| other.contains_value(v))
    }

    /// Mutable access to an element's current value without advancing its
    /// history (the value keeps evolving internally; the *relationship*
    /// between this set and the value is unchanged).
    pub fn current_value_mut(&mut self, label: &Label) -> Option<&mut SValue> {
        self.elems.get_mut(label).and_then(|h| h.current_mut()).filter(|v| !v.is_nil())
    }

    /// Builder sugar: `LabeledSet::of([("Name", v), …])`.
    pub fn of<I, V>(pairs: I) -> LabeledSet
    where
        I: IntoIterator<Item = (&'static str, V)>,
        V: Into<SValue>,
    {
        let mut s = LabeledSet::new();
        for (k, v) in pairs {
            s.put(Label::name(k), v);
        }
        s
    }

    /// Builder sugar for unlabeled sets: `LabeledSet::values(["a", "b"])`.
    pub fn values<I, V>(vals: I) -> LabeledSet
    where
        I: IntoIterator<Item = V>,
        V: Into<SValue>,
    {
        let mut s = LabeledSet::new();
        for v in vals {
            s.add(v);
        }
        s
    }
}

impl fmt::Display for LabeledSet {
    /// Prints in the paper's `{Name: value, …}` notation, eliding alias
    /// labels exactly as §5.1 does ("we have elided element names for sets
    /// of simple values").
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if !matches!(l, Label::Alias(_)) {
                write!(f, "{l}: ")?;
            }
            match v {
                SValue::Str(s) => write!(f, "'{s}'")?,
                SValue::Set(s) => write!(f, "{s}")?,
                SValue::Int(n) => write!(f, "{n}")?,
                SValue::Float(x) => write!(f, "{x}")?,
                SValue::Bool(b) => write!(f, "{b}")?,
                SValue::Nil => write!(f, "nil")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    #[test]
    fn section51_database_fragment() {
        // The Acme fragment from §5.1.
        let mut acme = LabeledSet::new();
        let mut departments = LabeledSet::new();
        departments.add(LabeledSet::of([
            ("Name", SValue::from("Sales")),
            ("Managers", LabeledSet::values(["Nathen", "Roberts"]).into()),
            ("Budget", SValue::Int(142_000)),
        ]));
        departments.add(LabeledSet::of([
            ("Name", SValue::from("Research")),
            ("Managers", LabeledSet::values(["Carter"]).into()),
            ("Budget", SValue::Int(256_500)),
        ]));
        acme.put(Label::name("Departments"), departments);

        let depts = acme.get(&Label::name("Departments")).unwrap().as_set().unwrap();
        assert_eq!(depts.len(), 2);
        let research = depts
            .iter()
            .find(|(_, d)| {
                d.as_set().unwrap().get(&Label::name("Name")) == Some(&SValue::from("Research"))
            })
            .unwrap()
            .1
            .as_set()
            .unwrap();
        assert!(research
            .get(&Label::name("Managers"))
            .unwrap()
            .as_set()
            .unwrap()
            .contains_value(&SValue::from("Carter")));
    }

    #[test]
    fn no_two_elements_share_a_name() {
        let mut s = LabeledSet::new();
        s.put(Label::name("x"), 1);
        s.put_at(Label::name("x"), 2, t(1));
        // Re-binding replaced the value (advanced history), not added a peer.
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&Label::name("x")), Some(&SValue::Int(2)));
    }

    #[test]
    fn heterogeneous_values_for_one_label_over_time() {
        // §5.2: "the element name AssignedTo could have a value that is an
        // employee, a department or a set of departments."
        let mut car = LabeledSet::new();
        car.put_at(Label::name("AssignedTo"), "Milton", t(1));
        car.put_at(Label::name("AssignedTo"), LabeledSet::values(["Sales", "Planning"]), t(5));
        assert_eq!(car.get_at(&Label::name("AssignedTo"), t(2)), Some(&SValue::from("Milton")));
        assert!(car.get(&Label::name("AssignedTo")).unwrap().as_set().is_some());
    }

    #[test]
    fn removal_is_nil_binding_with_history() {
        let mut employees = LabeledSet::new();
        employees.put_at(Label::Int(1821), "Ayn Rand", t(2));
        employees.remove_at(Label::Int(1821), t(8));
        assert_eq!(employees.get(&Label::Int(1821)), None, "gone from current state");
        assert_eq!(
            employees.get_at(&Label::Int(1821), t(7)),
            Some(&SValue::from("Ayn Rand")),
            "still employed at t7"
        );
        assert_eq!(employees.len(), 0);
    }

    #[test]
    fn membership_and_subset() {
        let depts = LabeledSet::values(["Sales", "Planning"]);
        assert!(depts.contains_value(&SValue::from("Sales")));
        assert!(!depts.contains_value(&SValue::from("Research")));
        let sub = LabeledSet::values(["Planning"]);
        assert!(sub.subset_of(&depts));
        assert!(!depts.subset_of(&sub));
        let empty = LabeledSet::new();
        assert!(empty.subset_of(&sub), "∅ ⊆ anything");
    }

    #[test]
    fn aliases_are_fresh() {
        let mut s = LabeledSet::new();
        let a = s.add(1);
        let b = s.add(2);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        let name = LabeledSet::of([("First", "Ellen"), ("Last", "Burns")]);
        assert_eq!(name.to_string(), "{First: 'Ellen', Last: 'Burns'}");
        let phones = LabeledSet::values([3949i64, 3862]);
        assert_eq!(phones.to_string(), "{3949, 3862}");
    }

    #[test]
    fn numeric_equality_coerces() {
        assert!(SValue::Int(3).equals(&SValue::Float(3.0)));
        assert!(!SValue::Int(3).equals(&SValue::from("3")));
    }

    #[test]
    fn unlimited_nesting() {
        // §5.2: "There is unlimited nesting of sets."
        let mut v = SValue::Set(LabeledSet::new());
        for i in 0..64 {
            let mut outer = LabeledSet::new();
            outer.put(Label::Int(i), v);
            v = SValue::Set(outer);
        }
        let mut depth = 0;
        let mut cur = &v;
        while let Some(s) = cur.as_set() {
            match s.iter().next() {
                Some((_, inner)) => {
                    depth += 1;
                    cur = inner;
                }
                None => break,
            }
        }
        assert_eq!(depth, 64);
    }
}
