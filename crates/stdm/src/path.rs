//! STDM path expressions (§5.1, §5.3.2).
//!
//! "STDM uses a path syntax for accessing subparts of a set. If X is a
//! variable whose value is the set above, then sample path expressions are
//! `X!Departments!A16!Managers` and `X!Employees!E62!Name`."
//!
//! The temporal extension adds `@T` per component: `E!Salary@T` is the value
//! `E!Salary` had in the database state at time T. An `@` binds to the
//! component it follows; later components read the current state unless they
//! carry their own `@` or a time dial is in force. §5.3.2's example
//! `World!'Acme Corp'!'president'@7!city` answers the *previous* president's
//! *current* city.

use crate::value::{Label, LabeledSet, SValue};
use gemstone_temporal::TxnTime;
use std::fmt;

/// One step of a path: an element label, optionally time-qualified.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    pub label: Label,
    pub at: Option<TxnTime>,
}

/// A parsed path: the root variable name and the steps from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    pub root: String,
    pub steps: Vec<PathStep>,
}

/// Errors from path parsing and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum PathError {
    Parse(String),
    NoSuchElement(String),
    NotASet(String),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Parse(m) => write!(f, "path parse error: {m}"),
            PathError::NoSuchElement(p) => write!(f, "no element at {p}"),
            PathError::NotASet(p) => write!(f, "value at {p} is not a set"),
        }
    }
}

impl std::error::Error for PathError {}

/// Parse a textual path: components separated by `!`; a component is an
/// identifier, a `'quoted name'`, or an integer; each may be followed by
/// `@<time>`.
pub fn parse_path(src: &str) -> Result<Path, PathError> {
    let mut parts = split_components(src)?;
    if parts.is_empty() {
        return Err(PathError::Parse("empty path".into()));
    }
    let (root, root_at) = parts.remove(0);
    if root_at.is_some() {
        return Err(PathError::Parse("root variable cannot be time-qualified".into()));
    }
    let root = match root {
        Label::Name(s) => s,
        other => return Err(PathError::Parse(format!("root must be a name, got {other}"))),
    };
    let steps = parts.into_iter().map(|(label, at)| PathStep { label, at }).collect();
    Ok(Path { root, steps })
}

fn split_components(src: &str) -> Result<Vec<(Label, Option<TxnTime>)>, PathError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    loop {
        // skip whitespace
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let label = match chars.peek() {
            None => return Err(PathError::Parse("expected component".into())),
            Some('\'') => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(PathError::Parse("unterminated quote".into())),
                    }
                }
                Label::Name(s)
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut s = String::new();
                if *c == '-' {
                    s.push(chars.next().unwrap());
                }
                while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    s.push(chars.next().unwrap());
                }
                Label::Int(s.parse().map_err(|_| PathError::Parse(format!("bad integer {s}")))?)
            }
            Some(c) if c.is_alphanumeric() || *c == '_' => {
                let mut s = String::new();
                while chars.peek().is_some_and(|c| c.is_alphanumeric() || *c == '_') {
                    s.push(chars.next().unwrap());
                }
                Label::Name(s)
            }
            Some(c) => return Err(PathError::Parse(format!("unexpected character {c:?}"))),
        };
        // optional @time
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let at = if chars.peek() == Some(&'@') {
            chars.next();
            let mut s = String::new();
            while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                s.push(chars.next().unwrap());
            }
            let ticks: u64 = s.parse().map_err(|_| PathError::Parse(format!("bad time @{s}")))?;
            Some(TxnTime::from_ticks(ticks))
        } else {
            None
        };
        out.push((label, at));
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            None => break,
            Some('!') => continue,
            Some(c) => return Err(PathError::Parse(format!("expected '!', got {c:?}"))),
        }
    }
    Ok(out)
}

impl Path {
    /// Evaluate the steps against `root`, with an optional time dial (§5.4:
    /// "Setting the time dial to time T is the same as appending @T to each
    /// component"). Explicit `@` on a step overrides the dial.
    pub fn eval<'a>(
        &self,
        root: &'a LabeledSet,
        dial: Option<TxnTime>,
    ) -> Result<&'a SValue, PathError> {
        let mut cur_set = root;
        let mut cur_val: Option<&'a SValue> = None;
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                cur_set =
                    cur_val.unwrap().as_set().ok_or_else(|| PathError::NotASet(self.prefix(i)))?;
            }
            let when = step.at.or(dial);
            let v = match when {
                Some(t) => cur_set.get_at(&step.label, t),
                None => cur_set.get(&step.label),
            };
            cur_val = Some(v.ok_or_else(|| PathError::NoSuchElement(self.prefix(i + 1)))?);
        }
        cur_val.ok_or_else(|| PathError::Parse("path has no steps".into()))
    }

    /// Assign through the path at transaction time `t` — "to allow
    /// assignments to path expressions" (§4.3). Navigation steps before the
    /// last use current state (one cannot write into the past).
    pub fn assign(
        &self,
        root: &mut LabeledSet,
        value: impl Into<SValue>,
        t: TxnTime,
    ) -> Result<(), PathError> {
        let (last, prefix) =
            self.steps.split_last().ok_or_else(|| PathError::Parse("empty path".into()))?;
        if last.at.is_some() || prefix.iter().any(|s| s.at.is_some()) {
            return Err(PathError::Parse("cannot assign into a past state".into()));
        }
        let mut cur = root;
        for (i, step) in prefix.iter().enumerate() {
            cur = cur
                .get_mut_set(&step.label)
                .ok_or_else(|| PathError::NoSuchElement(self.prefix(i + 1)))?;
        }
        cur.put_at(last.label.clone(), value, t);
        Ok(())
    }

    fn prefix(&self, n: usize) -> String {
        let mut s = self.root.clone();
        for step in &self.steps[..n] {
            s.push('!');
            s.push_str(&step.label.to_string());
        }
        s
    }
}

impl LabeledSet {
    /// Mutable access to a child set (helper for path assignment).
    pub fn get_mut_set(&mut self, label: &Label) -> Option<&mut LabeledSet> {
        // History is append-only; mutating "the current value" means the
        // current association's value is updated in place. We reach it via
        // a pending-aware trick: take the current value out, mutate, rebind.
        // Instead, expose interior mutability through the history's last
        // entry. Simplest correct form: re-put is wrong (it would advance
        // history), so we mutate the existing current association directly.
        self.current_value_mut(label)?.as_set_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    /// Build the Figure 1 world (slightly reduced): Acme Corp with a
    /// president history and Milton's city history.
    fn figure1_world() -> LabeledSet {
        let mut milton = LabeledSet::new();
        milton.put_at(Label::name("name"), "Milton Friedman", t(3));
        milton.put_at(Label::name("city"), "Seattle", t(3));
        milton.put_at(Label::name("city"), "Portland", t(8));

        let mut ayn = LabeledSet::new();
        ayn.put_at(Label::name("name"), "Ayn Rand", t(2));
        ayn.put_at(Label::name("city"), "Portland", t(2));
        ayn.put_at(Label::name("city"), "San Diego", t(12));

        let mut acme = LabeledSet::new();
        acme.put_at(Label::name("president"), ayn, t(5));
        // NOTE: pure STDM has no entity identity, so "the president" is a
        // copy, not a shared object. The GemStone core reproduces Figure 1
        // with true identity; this test exercises the path/temporal syntax.
        acme.put_at(Label::name("president"), milton, t(8));

        let mut world = LabeledSet::new();
        world.put_at(Label::name("Acme Corp"), acme, t(1));
        world
    }

    #[test]
    fn parse_simple() {
        let p = parse_path("X!Departments!A16!Managers").unwrap();
        assert_eq!(p.root, "X");
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].label, Label::name("Departments"));
        assert_eq!(p.steps[2].label, Label::name("Managers"));
    }

    #[test]
    fn parse_quoted_and_times() {
        let p = parse_path("World!'Acme Corp'!president@10").unwrap();
        assert_eq!(p.root, "World");
        assert_eq!(p.steps[0].label, Label::name("Acme Corp"));
        assert_eq!(p.steps[1].at, Some(t(10)));
    }

    #[test]
    fn parse_integer_labels() {
        let p = parse_path("Employees!1821!name").unwrap();
        assert_eq!(p.steps[0].label, Label::Int(1821));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("X!").is_err());
        assert!(parse_path("X@3!y").is_err(), "root cannot be time-qualified");
        assert!(parse_path("X!'unterminated").is_err());
        assert!(parse_path("X!!y").is_err());
    }

    #[test]
    fn figure1_path_queries() {
        let world = figure1_world();
        // Current president: Milton.
        let p = parse_path("World!'Acme Corp'!president!name").unwrap();
        assert_eq!(p.eval(&world, None).unwrap(), &SValue::from("Milton Friedman"));
        // At time 10, still Milton (appointed at 8).
        let p = parse_path("World!'Acme Corp'!president@10!name").unwrap();
        assert_eq!(p.eval(&world, None).unwrap(), &SValue::from("Milton Friedman"));
        // At time 7, the previous president.
        let p = parse_path("World!'Acme Corp'!president@7!name").unwrap();
        assert_eq!(p.eval(&world, None).unwrap(), &SValue::from("Ayn Rand"));
        // The previous president's *current* city: San Diego (§5.3.2).
        let p = parse_path("World!'Acme Corp'!president@7!city").unwrap();
        assert_eq!(p.eval(&world, None).unwrap(), &SValue::from("San Diego"));
    }

    #[test]
    fn time_dial_applies_to_every_component() {
        let world = figure1_world();
        // Dial at 7: president is Ayn, and her city *at 7* was Portland.
        let p = parse_path("World!'Acme Corp'!president!city").unwrap();
        assert_eq!(p.eval(&world, Some(t(7))).unwrap(), &SValue::from("Portland"));
        // Explicit @ overrides the dial.
        let p = parse_path("World!'Acme Corp'!president@10!city").unwrap();
        assert_eq!(p.eval(&world, Some(t(7))).unwrap(), &SValue::from("Seattle"));
    }

    #[test]
    fn missing_elements_are_reported_with_position() {
        let world = figure1_world();
        let p = parse_path("World!'Acme Corp'!chairman").unwrap();
        match p.eval(&world, None) {
            Err(PathError::NoSuchElement(at)) => assert!(at.ends_with("chairman"), "{at}"),
            other => panic!("expected NoSuchElement, got {other:?}"),
        }
        let p = parse_path("World!'Acme Corp'!president!name!x").unwrap();
        assert!(matches!(p.eval(&world, None), Err(PathError::NotASet(_))));
    }

    #[test]
    fn assignment_through_path() {
        let mut world = figure1_world();
        let p = parse_path("World!'Acme Corp'!president!city").unwrap();
        p.assign(&mut world, "Chicago", t(20)).unwrap();
        assert_eq!(p.eval(&world, None).unwrap(), &SValue::from("Chicago"));
        // History preserved: at t9 Milton was in Portland.
        assert_eq!(p.eval(&world, Some(t(9))).unwrap(), &SValue::from("Portland"));
    }

    #[test]
    fn cannot_assign_into_the_past() {
        let mut world = figure1_world();
        let p = parse_path("World!'Acme Corp'!president@7!city").unwrap();
        assert!(p.assign(&mut world, "Nowhere", t(20)).is_err());
    }
}
