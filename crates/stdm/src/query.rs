//! The STDM set calculus (§5.1).
//!
//! "We have developed a set-calculus query system for the STDM. … A
//! distinguishing feature of our calculus, as compared to relational
//! calculus, is that variables can be bound to functions of other variables,
//! rather than only to fixed database objects."
//!
//! A [`Query`] has range variables (each ranging over the element values of
//! a set-valued term, which may mention earlier variables), a predicate, and
//! a result template. Evaluation is the calculus' *semantics* — a nested
//! loop in range order; the optimizing algebra translation lives in the
//! `gemstone-calculus` crate, which operates over the merged data model.

use crate::value::{Label, LabeledSet, SValue};
use std::collections::HashMap;
use std::fmt;

/// A term of the calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A bound range variable.
    Var(String),
    /// `v!a!b` — path from a bound variable.
    Path(String, Vec<Label>),
    /// A constant.
    Const(SValue),
    /// Arithmetic (the example query multiplies: `0.10 * d!Budget`).
    Mul(Box<Term>, Box<Term>),
    Add(Box<Term>, Box<Term>),
    Sub(Box<Term>, Box<Term>),
    Div(Box<Term>, Box<Term>),
}

impl Term {
    /// `Term::path("d", ["Budget"])`.
    pub fn path(var: &str, labels: impl IntoIterator<Item = &'static str>) -> Term {
        Term::Path(var.to_string(), labels.into_iter().map(Label::name).collect())
    }

    /// `Term::var("e")`.
    pub fn var(v: &str) -> Term {
        Term::Var(v.to_string())
    }

    /// A numeric constant.
    pub fn num(x: f64) -> Term {
        Term::Const(SValue::Float(x))
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A predicate of the calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    True,
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
    Cmp(Term, CmpOp, Term),
    /// `x ∈ S` — membership of a value in a set's element values
    /// (`d!Name ∈ e!Depts`).
    In(Term, Term),
    /// `S ⊆ T` — the subset condition §5.2 contrasts with its two-quantifier
    /// relational encoding.
    Subset(Term, Term),
}

impl Pred {
    /// Conjunction helper.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }
}

/// A range declaration: `var ∈ domain`, the domain being any set-valued
/// term (possibly mentioning earlier variables — `m ∈ d!Managers`).
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    pub var: String,
    pub domain: Term,
}

/// A calculus query: result template, ranges, predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `{Emp: e, Mgr: m}` — each output tuple labels these terms.
    pub result: Vec<(String, Term)>,
    pub ranges: Vec<Range>,
    pub pred: Pred,
}

/// Errors during query evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    UnboundVariable(String),
    NotASet(String),
    NoSuchElement(String),
    NotANumber(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            QueryError::NotASet(t) => write!(f, "term {t} is not a set"),
            QueryError::NoSuchElement(p) => write!(f, "no element at {p}"),
            QueryError::NotANumber(t) => write!(f, "term {t} is not a number"),
        }
    }
}

impl std::error::Error for QueryError {}

type Bindings = HashMap<String, SValue>;

fn eval_term(term: &Term, env: &Bindings) -> Result<SValue, QueryError> {
    match term {
        Term::Var(v) => env.get(v).cloned().ok_or_else(|| QueryError::UnboundVariable(v.clone())),
        Term::Const(c) => Ok(c.clone()),
        Term::Path(v, labels) => {
            let mut cur =
                env.get(v).cloned().ok_or_else(|| QueryError::UnboundVariable(v.clone()))?;
            for l in labels {
                let set = cur.as_set().ok_or_else(|| QueryError::NotASet(format!("{v}!{l}")))?;
                cur = set
                    .get(l)
                    .cloned()
                    .ok_or_else(|| QueryError::NoSuchElement(format!("{v}!…!{l}")))?;
            }
            Ok(cur)
        }
        Term::Mul(a, b) => arith(a, b, env, |x, y| x * y),
        Term::Add(a, b) => arith(a, b, env, |x, y| x + y),
        Term::Sub(a, b) => arith(a, b, env, |x, y| x - y),
        Term::Div(a, b) => arith(a, b, env, |x, y| x / y),
    }
}

fn arith(a: &Term, b: &Term, env: &Bindings, f: fn(f64, f64) -> f64) -> Result<SValue, QueryError> {
    let av = eval_term(a, env)?;
    let bv = eval_term(b, env)?;
    let x = av.as_number().ok_or_else(|| QueryError::NotANumber(format!("{a:?}")))?;
    let y = bv.as_number().ok_or_else(|| QueryError::NotANumber(format!("{b:?}")))?;
    Ok(SValue::Float(f(x, y)))
}

fn eval_pred(pred: &Pred, env: &Bindings) -> Result<bool, QueryError> {
    match pred {
        Pred::True => Ok(true),
        Pred::And(a, b) => Ok(eval_pred(a, env)? && eval_pred(b, env)?),
        Pred::Or(a, b) => Ok(eval_pred(a, env)? || eval_pred(b, env)?),
        Pred::Not(a) => Ok(!eval_pred(a, env)?),
        Pred::Cmp(a, op, b) => {
            let av = eval_term(a, env)?;
            let bv = eval_term(b, env)?;
            Ok(compare(&av, *op, &bv))
        }
        Pred::In(x, s) => {
            let xv = eval_term(x, env)?;
            let sv = eval_term(s, env)?;
            let set = sv.as_set().ok_or_else(|| QueryError::NotASet(format!("{s:?}")))?;
            Ok(set.contains_value(&xv))
        }
        Pred::Subset(a, b) => {
            let av = eval_term(a, env)?;
            let bv = eval_term(b, env)?;
            let sa = av.as_set().ok_or_else(|| QueryError::NotASet(format!("{a:?}")))?;
            let sb = bv.as_set().ok_or_else(|| QueryError::NotASet(format!("{b:?}")))?;
            Ok(sa.subset_of(sb))
        }
    }
}

fn compare(a: &SValue, op: CmpOp, b: &SValue) -> bool {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (a.as_number(), b.as_number()) {
        (Some(x), Some(y)) => x.partial_cmp(&y),
        _ => match (a, b) {
            (SValue::Str(x), SValue::Str(y)) => Some(x.cmp(y)),
            _ => None,
        },
    };
    match op {
        CmpOp::Eq => a.equals(b),
        CmpOp::Ne => !a.equals(b),
        CmpOp::Lt => ord == Some(std::cmp::Ordering::Less),
        CmpOp::Le => matches!(ord, Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)),
        CmpOp::Gt => ord == Some(std::cmp::Ordering::Greater),
        CmpOp::Ge => {
            matches!(ord, Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal))
        }
    }
}

impl Query {
    /// Evaluate against root bindings (the `X` of the paper's examples),
    /// producing a set of result tuples under fresh aliases.
    pub fn eval(&self, roots: &Bindings) -> Result<LabeledSet, QueryError> {
        let mut out = LabeledSet::new();
        let mut env = roots.clone();
        self.eval_ranges(0, &mut env, &mut out)?;
        Ok(out)
    }

    fn eval_ranges(
        &self,
        depth: usize,
        env: &mut Bindings,
        out: &mut LabeledSet,
    ) -> Result<(), QueryError> {
        if depth == self.ranges.len() {
            if eval_pred(&self.pred, env)? {
                let mut tuple = LabeledSet::new();
                for (label, term) in &self.result {
                    tuple.put(Label::name(label.clone()), eval_term(term, env)?);
                }
                out.add(tuple);
            }
            return Ok(());
        }
        let range = &self.ranges[depth];
        let domain = eval_term(&range.domain, env)?;
        let set =
            domain.as_set().ok_or_else(|| QueryError::NotASet(format!("{:?}", range.domain)))?;
        let values: Vec<SValue> = set.iter().map(|(_, v)| v.clone()).collect();
        for v in values {
            env.insert(range.var.clone(), v);
            self.eval_ranges(depth + 1, env, out)?;
        }
        env.remove(&range.var);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §5.1 example database, exactly as printed (plus enough managers
    /// to make the query's answer interesting).
    pub fn acme() -> SValue {
        let mut departments = LabeledSet::new();
        departments.put(
            Label::name("A12"),
            LabeledSet::of([
                ("Name", SValue::from("Sales")),
                ("Managers", LabeledSet::values(["Nathen", "Roberts"]).into()),
                ("Budget", SValue::Int(142_000)),
            ]),
        );
        departments.put(
            Label::name("A16"),
            LabeledSet::of([
                ("Name", SValue::from("Research")),
                ("Managers", LabeledSet::values(["Carter"]).into()),
                ("Budget", SValue::Int(256_500)),
            ]),
        );

        let mut employees = LabeledSet::new();
        employees.put(
            Label::name("E62"),
            LabeledSet::of([
                ("Name", LabeledSet::of([("First", "Ellen"), ("Last", "Burns")]).into()),
                ("Salary", SValue::Int(24_650)),
                ("Depts", LabeledSet::values(["Marketing"]).into()),
            ]),
        );
        employees.put(
            Label::name("E83"),
            LabeledSet::of([
                ("Name", LabeledSet::of([("First", "Robert"), ("Last", "Peters")]).into()),
                ("Salary", SValue::Int(24_000)),
                ("Depts", LabeledSet::values(["Sales", "Planning"]).into()),
                ("Phones", LabeledSet::values([3949i64, 3862]).into()),
            ]),
        );

        SValue::Set(LabeledSet::of([
            ("Departments", SValue::Set(departments)),
            ("Employees", SValue::Set(employees)),
        ]))
    }

    /// The §5.1 query:
    /// ```text
    /// {{Emp: e, Mgr: m} where (e ∈ X!Employees) and (d ∈ X!Departments)
    ///   [(m ∈ d!Managers) and (d!Name ∈ e!Depts)
    ///    and (e!Salary > 0.10 * d!Budget)]}
    /// ```
    pub fn section51_query() -> Query {
        Query {
            result: vec![
                ("Emp".to_string(), Term::path("e", ["Name", "Last"])),
                ("Mgr".to_string(), Term::var("m")),
            ],
            ranges: vec![
                Range { var: "e".into(), domain: Term::path("X", ["Employees"]) },
                Range { var: "d".into(), domain: Term::path("X", ["Departments"]) },
                Range { var: "m".into(), domain: Term::path("d", ["Managers"]) },
            ],
            pred: Pred::In(Term::path("d", ["Name"]), Term::path("e", ["Depts"])).and(Pred::Cmp(
                Term::path("e", ["Salary"]),
                CmpOp::Gt,
                Term::Mul(Box::new(Term::num(0.10)), Box::new(Term::path("d", ["Budget"]))),
            )),
        }
    }

    #[test]
    fn section51_query_answer() {
        // Robert Peters (salary 24000) is in Sales (budget 142000);
        // 24000 > 14200, so he pairs with both Sales managers.
        // Ellen is in Marketing, which has no department entry — no pair.
        let mut roots = HashMap::new();
        roots.insert("X".to_string(), acme());
        let result = section51_query().eval(&roots).unwrap();
        let mut pairs: Vec<(String, String)> = result
            .iter()
            .map(|(_, tuple)| {
                let t = tuple.as_set().unwrap();
                let emp = match t.get(&Label::name("Emp")).unwrap() {
                    SValue::Str(s) => s.clone(),
                    v => panic!("{v:?}"),
                };
                let mgr = match t.get(&Label::name("Mgr")).unwrap() {
                    SValue::Str(s) => s.clone(),
                    v => panic!("{v:?}"),
                };
                (emp, mgr)
            })
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("Peters".to_string(), "Nathen".to_string()),
                ("Peters".to_string(), "Roberts".to_string()),
            ]
        );
    }

    #[test]
    fn range_over_function_of_other_variable() {
        // m ∈ d!Managers is itself the distinguishing feature; check the
        // domain re-evaluates per d.
        let mut roots = HashMap::new();
        roots.insert("X".to_string(), acme());
        let q = Query {
            result: vec![("Mgr".into(), Term::var("m"))],
            ranges: vec![
                Range { var: "d".into(), domain: Term::path("X", ["Departments"]) },
                Range { var: "m".into(), domain: Term::path("d", ["Managers"]) },
            ],
            pred: Pred::True,
        };
        let result = q.eval(&roots).unwrap();
        assert_eq!(result.len(), 3, "Nathen, Roberts, Carter");
    }

    #[test]
    fn comparison_and_arithmetic() {
        let env: Bindings = HashMap::new();
        let p = Pred::Cmp(
            Term::num(5.0),
            CmpOp::Gt,
            Term::Mul(Box::new(Term::num(2.0)), Box::new(Term::num(2.0))),
        );
        assert!(eval_pred(&p, &env).unwrap());
        let p = Pred::Cmp(
            Term::Const(SValue::from("abc")),
            CmpOp::Lt,
            Term::Const(SValue::from("abd")),
        );
        assert!(eval_pred(&p, &env).unwrap());
    }

    #[test]
    fn subset_predicate() {
        let mut roots: Bindings = HashMap::new();
        roots.insert("A".into(), LabeledSet::values(["x", "y"]).into());
        roots.insert("B".into(), LabeledSet::values(["x", "y", "z"]).into());
        let q = Query {
            result: vec![("ok".into(), Term::Const(SValue::Bool(true)))],
            ranges: vec![],
            pred: Pred::Subset(Term::var("A"), Term::var("B")),
        };
        assert_eq!(q.eval(&roots).unwrap().len(), 1);
        let q2 = Query { pred: Pred::Subset(Term::var("B"), Term::var("A")), ..q };
        assert_eq!(q2.eval(&roots).unwrap().len(), 0);
    }

    #[test]
    fn unbound_variable_is_reported() {
        let roots: Bindings = HashMap::new();
        let q = Query {
            result: vec![("v".into(), Term::var("zzz"))],
            ranges: vec![],
            pred: Pred::True,
        };
        assert!(matches!(q.eval(&roots), Err(QueryError::UnboundVariable(_))));
    }
}
