//! Interned symbols.
//!
//! Selectors, element names, class names and string labels (Figure 1 labels
//! elements with strings such as `'Acme Corp'`) are interned into a single
//! database-wide table, so symbol comparison is integer comparison.

use std::collections::HashMap;
use std::fmt;

/// Identity of an interned symbol.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<{}>", self.0)
    }
}

/// The database-wide symbol table. Symbols are never removed: like all
/// GemStone objects they live forever (§5.4).
#[derive(Debug, Default)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, SymbolId>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SymbolId(u32::try_from(self.names.len()).expect("symbol table exhausted"));
        self.names.push(name.into());
        self.index.insert(name.into(), id);
        id
    }

    /// Find an already-interned symbol.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.index.get(name).copied()
    }

    /// The text of a symbol.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All symbols in id order (used to persist the table).
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (SymbolId(i as u32), &**n))
    }

    /// Rebuild from persisted names, in id order (used at recovery).
    pub fn from_names<I: IntoIterator<Item = String>>(names: I) -> SymbolTable {
        let mut t = SymbolTable::new();
        for n in names {
            t.intern(&n);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("salary");
        let b = t.intern("salary");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "salary");
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let mut t = SymbolTable::new();
        let a = t.intern("name");
        let b = t.intern("Name");
        assert_ne!(a, b, "symbols are case sensitive");
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("depts"), None);
        let id = t.intern("depts");
        assert_eq!(t.lookup("depts"), Some(id));
    }

    #[test]
    fn persist_roundtrip() {
        let mut t = SymbolTable::new();
        for n in ["a", "b", "c"] {
            t.intern(n);
        }
        let names: Vec<String> = t.iter().map(|(_, n)| n.to_string()).collect();
        let t2 = SymbolTable::from_names(names);
        assert_eq!(t2.lookup("b"), t.lookup("b"));
        assert_eq!(t2.len(), 3);
    }

    #[test]
    fn unicode_symbols() {
        let mut t = SymbolTable::new();
        let id = t.intern("Größe");
        assert_eq!(t.name(id), "Größe");
    }
}
