//! Element names of the GemStone Data Model (§5.1).
//!
//! "A set has elements, each of which has an element name that labels the
//! element and a value. … No two elements in a set may have the same element
//! name. For sets without labels, arbitrary aliases are used as element
//! names. Presumably, the database system can generate unique aliases upon
//! demand."
//!
//! Three name spaces cover the paper's uses:
//!
//! * `Int` — arrays are "sets with numbers as element names" (§5.2);
//! * `Sym` — named instance variables, dictionary keys, string labels;
//! * `Alias` — system-generated labels for unlabeled sets (the `A12`, `E62`
//!   of the §5.1 example database).
//!
//! The ordering `Int < Sym < Alias` gives arrays their natural iteration
//! order while keeping all elements in one ordered map.

use crate::symbol::SymbolId;
use std::fmt;

/// An element name.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ElemName {
    /// Numeric element name (array index).
    Int(i64),
    /// Symbolic element name (instance variable, dictionary key, label).
    Sym(SymbolId),
    /// System-generated alias for elements of unlabeled sets.
    Alias(u64),
}

impl ElemName {
    /// True for system-generated aliases.
    pub fn is_alias(self) -> bool {
        matches!(self, ElemName::Alias(_))
    }

    /// The numeric name, if this is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            ElemName::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The symbolic name, if this is one.
    pub fn as_sym(self) -> Option<SymbolId> {
        match self {
            ElemName::Sym(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Debug for ElemName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemName::Int(i) => write!(f, "[{i}]"),
            ElemName::Sym(s) => write!(f, "{s:?}"),
            ElemName::Alias(a) => write!(f, "A{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_namespaces() {
        let names = [
            ElemName::Alias(0),
            ElemName::Sym(SymbolId(0)),
            ElemName::Int(5),
            ElemName::Int(-3),
            ElemName::Alias(9),
            ElemName::Sym(SymbolId(4)),
        ];
        let mut sorted = names;
        sorted.sort();
        assert_eq!(
            sorted,
            [
                ElemName::Int(-3),
                ElemName::Int(5),
                ElemName::Sym(SymbolId(0)),
                ElemName::Sym(SymbolId(4)),
                ElemName::Alias(0),
                ElemName::Alias(9),
            ]
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(ElemName::Int(7).as_int(), Some(7));
        assert_eq!(ElemName::Sym(SymbolId(1)).as_int(), None);
        assert_eq!(ElemName::Sym(SymbolId(1)).as_sym(), Some(SymbolId(1)));
        assert!(ElemName::Alias(3).is_alias());
        assert!(!ElemName::Int(3).is_alias());
    }
}
