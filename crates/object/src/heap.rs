//! Session workspaces and heap objects.
//!
//! §6: "Each user session in the GemStone system has its own invocation of
//! the Interpreter, and its own Object Manager with a private object space.
//! Sessions have shared access to the permanent database through
//! transactions." A [`Workspace`] is that private object space. It holds
//! current-state copies of permanent objects the session has touched, plus
//! objects created during the session. Because "an entire session workspace
//! can be discarded at the end of a session", the workspace is a simple
//! grow-only arena with no garbage collector.

use crate::class::ClassId;
use crate::elem::ElemName;
use crate::error::{GemError, GemResult};
use crate::oop::{Goop, Oop, SegmentId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

pub use crate::oop::ObjIndex;

/// A heap object: class, identity, authorization segment, and a body that is
/// either a labeled set of elements or bytes.
///
/// Following the GemStone Data Model, *all* structured state is a labeled
/// set (§5.1): named instance variables are symbol-named elements, array
/// slots are integer-named elements, and members of unlabeled sets get
/// system-generated aliases. Absent elements cost nothing ("optional
/// instance variables, without a storage penalty", §4.3), and removing an
/// element stores nil rather than erasing the name — exactly how Figure 1
/// records that employee 1821 left the company.
#[derive(Debug, Clone)]
pub struct HeapObject {
    pub class: ClassId,
    /// Permanent identity, assigned at first commit; `None` while the object
    /// is session-transient.
    pub goop: Option<Goop>,
    pub segment: SegmentId,
    elements: BTreeMap<ElemName, Oop>,
    bytes: Option<Vec<u8>>,
    alias_next: u64,
    is_new: bool,
    dirty_elems: BTreeSet<ElemName>,
    bytes_dirty: bool,
    force_dirty: bool,
}

impl HeapObject {
    /// A fresh element-bodied object.
    pub fn new_elements(class: ClassId, segment: SegmentId) -> HeapObject {
        HeapObject {
            class,
            goop: None,
            segment,
            elements: BTreeMap::new(),
            bytes: None,
            alias_next: 0,
            is_new: true,
            dirty_elems: BTreeSet::new(),
            bytes_dirty: false,
            force_dirty: false,
        }
    }

    /// A fresh byte-bodied object (string, byte array, long document…).
    pub fn new_bytes(class: ClassId, segment: SegmentId, bytes: Vec<u8>) -> HeapObject {
        HeapObject {
            class,
            goop: None,
            segment,
            elements: BTreeMap::new(),
            bytes: Some(bytes),
            alias_next: 0,
            is_new: true,
            dirty_elems: BTreeSet::new(),
            bytes_dirty: false,
            force_dirty: false,
        }
    }

    /// Reconstruct a faulted-in copy of a committed object (clean).
    pub fn faulted(
        class: ClassId,
        goop: Goop,
        segment: SegmentId,
        elements: BTreeMap<ElemName, Oop>,
        bytes: Option<Vec<u8>>,
        alias_next: u64,
    ) -> HeapObject {
        HeapObject {
            class,
            goop: Some(goop),
            segment,
            elements,
            bytes,
            alias_next,
            is_new: false,
            dirty_elems: BTreeSet::new(),
            bytes_dirty: false,
            force_dirty: false,
        }
    }

    /// The value of an element; nil if absent. Nil-valued and absent
    /// elements are indistinguishable to readers, per the temporal model's
    /// use of nil for "no longer present".
    pub fn elem(&self, name: ElemName) -> Oop {
        self.elements.get(&name).copied().unwrap_or(Oop::NIL)
    }

    /// True if the element is present with a non-nil value.
    pub fn has_elem(&self, name: ElemName) -> bool {
        !self.elem(name).is_nil()
    }

    /// Set an element's value, recording it dirty for commit. Storing nil
    /// *is* removal-with-history (§5.3.2 / Figure 1).
    pub fn set_elem(&mut self, name: ElemName, value: Oop) {
        if value.is_nil() && self.is_new {
            // Transient objects have no history to preserve; drop the name.
            self.elements.remove(&name);
            self.dirty_elems.remove(&name);
            return;
        }
        self.elements.insert(name, value);
        self.dirty_elems.insert(name);
    }

    /// Replace an element's stored value *without* marking it dirty: used
    /// when a session swizzles an unswizzled reference in place, which
    /// changes the representation of the value, not the value itself.
    pub fn swizzle_elem_in_place(&mut self, name: ElemName, value: Oop) {
        self.elements.insert(name, value);
    }

    /// Overwrite this (clean, committed) copy with freshly faulted state —
    /// sessions refresh cached copies at transaction boundaries so a new
    /// transaction sees the latest committed database state.
    pub fn refresh_from_fault(
        &mut self,
        elements: BTreeMap<ElemName, Oop>,
        bytes: Option<Vec<u8>>,
        alias_next: u64,
        segment: SegmentId,
    ) {
        debug_assert!(!self.is_dirty(), "refreshing a dirty object loses writes");
        self.elements = elements;
        self.bytes = bytes;
        self.alias_next = alias_next;
        self.segment = segment;
    }

    /// Add a value under a fresh system-generated alias (§5.1: "the database
    /// system can generate unique aliases upon demand"). Returns the alias.
    pub fn add_aliased(&mut self, value: Oop) -> ElemName {
        let name = ElemName::Alias(self.alias_next);
        self.alias_next += 1;
        self.set_elem(name, value);
        name
    }

    /// The next alias counter value (persisted with the object so aliases
    /// stay unique across sessions).
    pub fn alias_next(&self) -> u64 {
        self.alias_next
    }

    /// All present (non-nil) elements in name order.
    pub fn present_elements(&self) -> impl Iterator<Item = (ElemName, Oop)> + '_ {
        self.elements.iter().filter(|(_, v)| !v.is_nil()).map(|(n, v)| (*n, *v))
    }

    /// All stored elements including nil tombstones (commit needs these).
    pub fn raw_elements(&self) -> impl Iterator<Item = (ElemName, Oop)> + '_ {
        self.elements.iter().map(|(n, v)| (*n, *v))
    }

    /// Number of present (non-nil) elements.
    pub fn size(&self) -> usize {
        self.elements.values().filter(|v| !v.is_nil()).count()
    }

    /// Greatest integer element name, if any (OrderedCollection append).
    pub fn max_int_name(&self) -> Option<i64> {
        self.elements.range(..=ElemName::Int(i64::MAX)).next_back().and_then(|(n, _)| n.as_int())
    }

    /// Append under the next integer name (1-based, Smalltalk indexing).
    pub fn push_indexed(&mut self, value: Oop) -> ElemName {
        let next = self.max_int_name().map_or(1, |m| m + 1);
        let name = ElemName::Int(next);
        self.set_elem(name, value);
        name
    }

    /// Byte body, if this is a byte object.
    pub fn bytes(&self) -> Option<&[u8]> {
        self.bytes.as_deref()
    }

    /// Byte body as UTF-8 text.
    pub fn as_str(&self) -> GemResult<&str> {
        let b = self.bytes.as_deref().ok_or(GemError::TypeMismatch {
            expected: "byte object",
            got: "element object".into(),
        })?;
        std::str::from_utf8(b)
            .map_err(|_| GemError::TypeMismatch { expected: "utf-8 string", got: "bytes".into() })
    }

    /// Replace the byte body (whole-value update; history is kept at the
    /// permanent level as one association per committed state).
    pub fn set_bytes(&mut self, bytes: Vec<u8>) {
        self.bytes = Some(bytes);
        self.bytes_dirty = true;
    }

    /// True for objects created in this session and never yet committed.
    pub fn is_new(&self) -> bool {
        self.is_new
    }

    /// Force this object into the next commit batch even without element
    /// writes (segment moves), without polluting element histories.
    pub fn touch_for_commit(&mut self) {
        self.force_dirty = true;
    }

    /// Elements written this transaction.
    pub fn dirty_elems(&self) -> impl Iterator<Item = ElemName> + '_ {
        self.dirty_elems.iter().copied()
    }

    /// True if the byte body was written this transaction.
    pub fn bytes_dirty(&self) -> bool {
        self.bytes_dirty
    }

    /// True if anything about this object must go out at commit.
    pub fn is_dirty(&self) -> bool {
        self.is_new || self.bytes_dirty || self.force_dirty || !self.dirty_elems.is_empty()
    }

    /// Clear dirty tracking after a successful commit (the object is now a
    /// clean cached copy) and record its assigned identity.
    pub fn mark_committed(&mut self, goop: Goop) {
        self.goop = Some(goop);
        self.is_new = false;
        self.dirty_elems.clear();
        self.bytes_dirty = false;
        self.force_dirty = false;
    }

    /// Discard local writes at abort. The caller re-faults content from the
    /// permanent store; this only resets bookkeeping on new objects.
    pub fn clear_dirty(&mut self) {
        self.dirty_elems.clear();
        self.bytes_dirty = false;
        self.force_dirty = false;
    }
}

/// A session's private object space: a grow-only arena of [`HeapObject`]s
/// plus the map from permanent identities to their local copies.
#[derive(Debug, Default)]
pub struct Workspace {
    objects: Vec<HeapObject>,
    by_goop: HashMap<Goop, ObjIndex>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Allocate an object, returning its session pointer. There is no
    /// 32K-object cap (§4.3): the arena grows with the session.
    pub fn alloc(&mut self, obj: HeapObject) -> Oop {
        let idx = u32::try_from(self.objects.len()).expect("workspace exhausted");
        if let Some(g) = obj.goop {
            self.by_goop.insert(g, idx);
        }
        self.objects.push(obj);
        Oop::obj(idx)
    }

    /// Resolve a heap pointer.
    pub fn get(&self, oop: Oop) -> GemResult<&HeapObject> {
        let idx = oop.as_obj().ok_or_else(|| GemError::TypeMismatch {
            expected: "heap object",
            got: format!("{oop:?}"),
        })?;
        self.objects.get(idx as usize).ok_or_else(|| GemError::Corrupt(format!("dangling {oop:?}")))
    }

    /// Resolve a heap pointer mutably.
    pub fn get_mut(&mut self, oop: Oop) -> GemResult<&mut HeapObject> {
        let idx = oop.as_obj().ok_or_else(|| GemError::TypeMismatch {
            expected: "heap object",
            got: format!("{oop:?}"),
        })?;
        self.objects
            .get_mut(idx as usize)
            .ok_or_else(|| GemError::Corrupt(format!("dangling {oop:?}")))
    }

    /// The local copy of a committed object, if it has been faulted in. At
    /// most one local copy exists per identity, so session pointer equality
    /// is object identity (§4.2).
    pub fn lookup_goop(&self, goop: Goop) -> Option<Oop> {
        self.by_goop.get(&goop).map(|&i| Oop::obj(i))
    }

    /// Record that a local object now carries a permanent identity.
    pub fn bind_goop(&mut self, oop: Oop, goop: Goop) {
        if let Some(idx) = oop.as_obj() {
            self.by_goop.insert(goop, idx);
        }
    }

    /// Indices of all objects with uncommitted changes.
    pub fn dirty_objects(&self) -> Vec<Oop> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_dirty())
            .map(|(i, _)| Oop::obj(i as ObjIndex))
            .collect()
    }

    /// All objects with their session pointers (workspace refresh, commit).
    pub fn iter(&self) -> impl Iterator<Item = (Oop, &HeapObject)> {
        self.objects.iter().enumerate().map(|(i, o)| (Oop::obj(i as ObjIndex), o))
    }

    /// Number of objects in the workspace.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects exist.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassTable;
    use crate::symbol::SymbolTable;

    fn setup() -> (SymbolTable, ClassTable, crate::class::Kernel) {
        let mut s = SymbolTable::new();
        let (c, k) = ClassTable::bootstrap(&mut s);
        (s, c, k)
    }

    #[test]
    fn elements_default_to_nil() {
        let (mut s, _, k) = setup();
        let obj = HeapObject::new_elements(k.object, SegmentId::SYSTEM);
        let name = ElemName::Sym(s.intern("salary"));
        assert!(obj.elem(name).is_nil());
        assert!(!obj.has_elem(name));
        assert_eq!(obj.size(), 0);
    }

    #[test]
    fn set_and_read_elements() {
        let (mut s, _, k) = setup();
        let mut obj = HeapObject::new_elements(k.object, SegmentId::SYSTEM);
        let salary = ElemName::Sym(s.intern("salary"));
        obj.set_elem(salary, Oop::int(24_650));
        assert_eq!(obj.elem(salary).as_int(), Some(24_650));
        assert_eq!(obj.size(), 1);
        assert!(obj.is_dirty());
        assert_eq!(obj.dirty_elems().collect::<Vec<_>>(), vec![salary]);
    }

    #[test]
    fn nil_store_on_new_object_removes() {
        let (mut s, _, k) = setup();
        let mut obj = HeapObject::new_elements(k.object, SegmentId::SYSTEM);
        let x = ElemName::Sym(s.intern("x"));
        obj.set_elem(x, Oop::int(1));
        obj.set_elem(x, Oop::NIL);
        assert_eq!(obj.raw_elements().count(), 0, "transient objects keep no tombstones");
    }

    #[test]
    fn nil_store_on_committed_object_keeps_tombstone() {
        let (mut s, _, k) = setup();
        let x = ElemName::Sym(s.intern("x"));
        let mut elements = BTreeMap::new();
        elements.insert(x, Oop::int(1));
        let mut obj = HeapObject::faulted(k.object, Goop(7), SegmentId::SYSTEM, elements, None, 0);
        obj.set_elem(x, Oop::NIL);
        assert_eq!(obj.raw_elements().count(), 1, "tombstone preserved for history");
        assert_eq!(obj.present_elements().count(), 0);
        assert!(!obj.has_elem(x));
    }

    #[test]
    fn aliases_are_unique_and_persistent() {
        let (_, _, k) = setup();
        let mut obj = HeapObject::new_elements(k.set, SegmentId::SYSTEM);
        let a = obj.add_aliased(Oop::int(1));
        let b = obj.add_aliased(Oop::int(2));
        assert_ne!(a, b);
        assert_eq!(obj.alias_next(), 2);
        // A faulted copy continues the alias sequence.
        let mut copy =
            HeapObject::faulted(k.set, Goop(1), SegmentId::SYSTEM, BTreeMap::new(), None, 2);
        let c = copy.add_aliased(Oop::int(3));
        assert_eq!(c, ElemName::Alias(2));
    }

    #[test]
    fn indexed_push_is_one_based_and_ordered() {
        let (_, _, k) = setup();
        let mut obj = HeapObject::new_elements(k.ordered_collection, SegmentId::SYSTEM);
        assert_eq!(obj.push_indexed(Oop::int(10)), ElemName::Int(1));
        assert_eq!(obj.push_indexed(Oop::int(20)), ElemName::Int(2));
        let vals: Vec<i64> = obj.present_elements().map(|(_, v)| v.as_int().unwrap()).collect();
        assert_eq!(vals, vec![10, 20]);
        assert_eq!(obj.max_int_name(), Some(2));
    }

    #[test]
    fn byte_bodies() {
        let (_, _, k) = setup();
        let mut obj = HeapObject::new_bytes(k.string, SegmentId::SYSTEM, b"Sales".to_vec());
        assert_eq!(obj.as_str().unwrap(), "Sales");
        obj.set_bytes(b"Research".to_vec());
        assert!(obj.bytes_dirty());
        assert_eq!(obj.as_str().unwrap(), "Research");
        let plain = HeapObject::new_elements(k.object, SegmentId::SYSTEM);
        assert!(plain.as_str().is_err());
    }

    #[test]
    fn large_byte_object_beyond_st80_limit() {
        // §4.3: ST80 capped objects at 64K bytes; GemStone must not.
        let (_, _, k) = setup();
        let big = vec![0xABu8; 1 << 20];
        let obj = HeapObject::new_bytes(k.string, SegmentId::SYSTEM, big);
        assert_eq!(obj.bytes().unwrap().len(), 1 << 20);
    }

    #[test]
    fn workspace_alloc_and_identity() {
        let (_, _, k) = setup();
        let mut ws = Workspace::new();
        let a = ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        let b = ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        assert_ne!(a, b, "two instantiations are two identities");
        assert_eq!(ws.len(), 2);
        assert!(ws.get(a).is_ok());
        assert!(ws.get(Oop::int(3)).is_err());
    }

    #[test]
    fn goop_binding_gives_one_copy_per_identity() {
        let (_, _, k) = setup();
        let mut ws = Workspace::new();
        let g = Goop(42);
        assert_eq!(ws.lookup_goop(g), None);
        let o =
            ws.alloc(HeapObject::faulted(k.object, g, SegmentId::SYSTEM, BTreeMap::new(), None, 0));
        assert_eq!(ws.lookup_goop(g), Some(o));
    }

    #[test]
    fn dirty_tracking_through_commit() {
        let (mut s, _, k) = setup();
        let mut ws = Workspace::new();
        let o = ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        assert_eq!(ws.dirty_objects(), vec![o], "new objects are dirty");
        let x = ElemName::Sym(s.intern("x"));
        ws.get_mut(o).unwrap().set_elem(x, Oop::int(1));
        ws.get_mut(o).unwrap().mark_committed(Goop(9));
        assert!(ws.dirty_objects().is_empty());
        assert_eq!(ws.get(o).unwrap().goop, Some(Goop(9)));
    }

    #[test]
    fn more_than_32k_objects() {
        // §4.3: "Only 32K objects are allowed in most implementations" of
        // ST80 — the workspace must comfortably exceed that.
        let (_, _, k) = setup();
        let mut ws = Workspace::new();
        let first = ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        for _ in 0..40_000 {
            ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        }
        assert_eq!(ws.len(), 40_001);
        assert!(ws.get(first).is_ok());
    }
}
