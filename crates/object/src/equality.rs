//! Identity versus structural equivalence (§4.2).
//!
//! "Two entities are identical if they are represented by the same object.
//! Two entities can have equivalent structures (have all component values
//! the same), but not be the same object. Thus, we can distinguish, say, two
//! gates in a circuit that have all the same characteristics, but are not
//! physically the same gate."
//!
//! Identity (`==` in OPAL) is pointer equality on [`Oop`]s — the workspace
//! guarantees one local copy per permanent identity. Structural equivalence
//! (`=`) compares immediates by value (with numeric tower coercion),
//! byte objects by content, and falls back to identity for element objects,
//! as ST80 does by default.

use crate::class::{ClassTable, Kernel};
use crate::heap::Workspace;
use crate::oop::{Oop, OopKind};

/// A hashable key under structural equivalence, used by Set/Bag membership
/// and by the Directory Manager to index collections by value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// Numbers, normalized through f64 bits (so `1 = 1.0`). −0.0 normalizes
    /// to 0.0; NaNs with identical bit patterns collide (documented edge).
    Num(u64),
    /// Characters.
    Char(char),
    /// Booleans and nil and System, by raw encoding.
    Imm(u64),
    /// Symbols and strings, by content (so a string-labeled lookup finds a
    /// symbol-labeled element; Figure 1 labels with strings).
    Text(Box<[u8]>),
    /// Non-byte transient heap objects, by workspace identity.
    Ident(u64),
    /// Committed objects, by permanent identity (GOOP) — an unswizzled
    /// reference and its faulted copy are the same entity.
    Committed(u64),
}

impl ValueKey {
    /// The key of a plain number, without workspace context — identical to
    /// what [`value_key`] assigns integer and float [`Oop`]s (so `1` and
    /// `1.0` land in the same hash bucket). Callers must exclude NaN
    /// themselves: NaN keys collide while `NaN = NaN` is false.
    pub fn num(f: f64) -> ValueKey {
        ValueKey::Num(canonical_f64_bits(f))
    }
}

/// Compute the structural key of a value.
pub fn value_key(ws: &Workspace, symbols: &crate::SymbolTable, oop: Oop) -> ValueKey {
    match oop.kind() {
        OopKind::Int(i) => ValueKey::Num(canonical_f64_bits(i as f64)),
        OopKind::Float(f) => ValueKey::Num(canonical_f64_bits(f)),
        OopKind::Char(c) => ValueKey::Char(c),
        OopKind::Sym(s) => ValueKey::Text(symbols.name(s).as_bytes().into()),
        OopKind::Nil | OopKind::True | OopKind::False | OopKind::System | OopKind::Class(_) => {
            ValueKey::Imm(oop.bits())
        }
        OopKind::Heap(idx) => match ws.get(oop).ok().and_then(|o| o.bytes()) {
            Some(b) => ValueKey::Text(b.into()),
            None => match ws.get(oop).ok().and_then(|o| o.goop) {
                // Committed objects key by identity, matching unswizzled refs.
                Some(g) => ValueKey::Committed(g.0),
                None => ValueKey::Ident(idx),
            },
        },
        OopKind::Ref(g) => ValueKey::Committed(g.0),
    }
}

fn canonical_f64_bits(f: f64) -> u64 {
    if f == 0.0 {
        0.0f64.to_bits() // fold -0.0 into +0.0
    } else {
        f.to_bits()
    }
}

/// Structural equivalence: the `=` of OPAL.
pub fn structurally_equal(ws: &Workspace, symbols: &crate::SymbolTable, a: Oop, b: Oop) -> bool {
    if a == b {
        // Identical objects are trivially equivalent — except NaN, which is
        // not equal to itself numerically.
        if let Some(f) = a.as_float() {
            return !f.is_nan();
        }
        return true;
    }
    value_key(ws, symbols, a) == value_key(ws, symbols, b)
        && !matches!(value_key(ws, symbols, a), ValueKey::Ident(_))
        && !is_nan(a)
}

fn is_nan(o: Oop) -> bool {
    o.as_float().is_some_and(f64::is_nan)
}

/// The class of any value, immediates included.
pub fn class_of(ws: &Workspace, kernel: &Kernel, oop: Oop) -> crate::ClassId {
    match kernel.class_of_immediate(oop) {
        Some(c) => c,
        None => ws.get(oop).map(|o| o.class).unwrap_or(kernel.object),
    }
}

/// The printable name of a value's class (error messages).
pub fn class_name(
    ws: &Workspace,
    kernel: &Kernel,
    classes: &ClassTable,
    symbols: &crate::SymbolTable,
    oop: Oop,
) -> String {
    symbols.name(classes.get(class_of(ws, kernel, oop)).name).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassTable;
    use crate::heap::HeapObject;
    use crate::oop::SegmentId;
    use crate::symbol::SymbolTable;

    fn setup() -> (SymbolTable, ClassTable, Kernel, Workspace) {
        let mut s = SymbolTable::new();
        let (c, k) = ClassTable::bootstrap(&mut s);
        (s, c, k, Workspace::new())
    }

    #[test]
    fn numbers_compare_across_types() {
        let (s, _, _, ws) = setup();
        assert!(structurally_equal(&ws, &s, Oop::int(1), Oop::float(1.0)));
        assert!(structurally_equal(&ws, &s, Oop::float(-0.0), Oop::float(0.0)));
        assert!(!structurally_equal(&ws, &s, Oop::int(1), Oop::int(2)));
        let nan = Oop::float(f64::NAN);
        assert!(!structurally_equal(&ws, &s, nan, nan), "NaN ≠ NaN");
    }

    #[test]
    fn strings_compare_by_content_identity_differs() {
        let (s, _, k, mut ws) = setup();
        let a = ws.alloc(HeapObject::new_bytes(k.string, SegmentId::SYSTEM, b"Sales".to_vec()));
        let b = ws.alloc(HeapObject::new_bytes(k.string, SegmentId::SYSTEM, b"Sales".to_vec()));
        assert_ne!(a, b, "identity: two distinct gates");
        assert!(structurally_equal(&ws, &s, a, b), "equivalence: same characteristics");
    }

    #[test]
    fn symbol_equals_samecontent_string() {
        let (mut s, _, k, mut ws) = setup();
        let sym = Oop::sym(s.intern("Sales"));
        let st = ws.alloc(HeapObject::new_bytes(k.string, SegmentId::SYSTEM, b"Sales".to_vec()));
        assert!(structurally_equal(&ws, &s, sym, st));
    }

    #[test]
    fn element_objects_fall_back_to_identity() {
        let (s, _, k, mut ws) = setup();
        let a = ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        let b = ws.alloc(HeapObject::new_elements(k.object, SegmentId::SYSTEM));
        assert!(!structurally_equal(&ws, &s, a, b));
        assert!(structurally_equal(&ws, &s, a, a));
    }

    #[test]
    fn value_keys_are_stable_hash_keys() {
        let (s, _, k, mut ws) = setup();
        let a = ws.alloc(HeapObject::new_bytes(k.string, SegmentId::SYSTEM, b"x".to_vec()));
        let b = ws.alloc(HeapObject::new_bytes(k.string, SegmentId::SYSTEM, b"x".to_vec()));
        assert_eq!(value_key(&ws, &s, a), value_key(&ws, &s, b));
        assert_eq!(value_key(&ws, &s, Oop::int(3)), value_key(&ws, &s, Oop::float(3.0)));
        assert_ne!(value_key(&ws, &s, Oop::NIL), value_key(&ws, &s, Oop::FALSE));
    }

    #[test]
    fn class_of_heap_and_immediates() {
        let (_, _, k, mut ws) = setup();
        let a = ws.alloc(HeapObject::new_elements(k.set, SegmentId::SYSTEM));
        assert_eq!(class_of(&ws, &k, a), k.set);
        assert_eq!(class_of(&ws, &k, Oop::int(5)), k.small_integer);
    }
}
