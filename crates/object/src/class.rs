//! Classes and the strict class hierarchy (§4.1).
//!
//! "So that each object does not have to carry around a list of messages it
//! handles, objects are organized into classes. … The class definition
//! contains the procedures (methods) that its objects use to respond to
//! messages. Classes are organized in a (strict) hierarchy, so that they can
//! share common structure and methods in a superclass."
//!
//! Per the GemStone design goals (§2A/§2C), the class mechanism here
//! *separates type definition from instantiation*, allows new instance
//! variables to be added to a class **without restructuring existing
//! instances** (instances store only the elements they actually have), and
//! lets methods be attached to any class, including subclasses of simple
//! types.

use crate::error::{GemError, GemResult};
use crate::oop::{Oop, OopKind};
use crate::symbol::{SymbolId, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Identity of a class.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identity of a compiled method. The bytecode itself lives in the OPAL
/// interpreter's method space; the class table only holds the reference.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MethodId(pub u32);

/// How a class responds to a selector.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MethodRef {
    /// A primitive method implemented by the interpreter (§6: the Interpreter
    /// "performs stack manipulations and some primitive methods").
    Primitive(u32),
    /// A compiled OPAL method.
    Compiled(MethodId),
}

/// Physical body format of instances.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BodyFormat {
    /// Labeled-set body: a map from element names to values. Covers named
    /// instance variables, arrays (integer names), and unlabeled sets
    /// (aliases) uniformly, as in the STDM treatment of §5.1.
    Elements,
    /// Byte body: strings and byte arrays. Large byte objects (long
    /// documents, images — §4.3) are supported; only secondary storage
    /// bounds their size.
    Bytes,
}

/// Whether a class is part of the bootstrap kernel or user defined.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ClassKind {
    Kernel,
    User,
}

/// A class definition.
#[derive(Debug, Clone)]
pub struct ClassDef {
    pub name: SymbolId,
    pub superclass: Option<ClassId>,
    pub format: BodyFormat,
    /// Instance variables declared *by this class* (not inherited). These are
    /// declarations only: instances pay no storage for variables they leave
    /// unset (§4.3's "optional instance variables, without a storage
    /// penalty").
    pub instvars: Vec<SymbolId>,
    /// Instance-side method dictionary.
    pub methods: HashMap<SymbolId, MethodRef>,
    /// Class-side method dictionary (`new`, constructors…).
    pub class_methods: HashMap<SymbolId, MethodRef>,
    pub kind: ClassKind,
}

/// The well-known kernel classes, bootstrapped before any user code runs.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    pub object: ClassId,
    pub undefined_object: ClassId,
    pub boolean: ClassId,
    pub true_class: ClassId,
    pub false_class: ClassId,
    pub magnitude: ClassId,
    pub number: ClassId,
    pub small_integer: ClassId,
    pub float: ClassId,
    pub character: ClassId,
    pub collection: ClassId,
    pub string: ClassId,
    pub symbol: ClassId,
    pub array: ClassId,
    pub ordered_collection: ClassId,
    pub set: ClassId,
    pub bag: ClassId,
    pub dictionary: ClassId,
    pub association: ClassId,
    pub metaclass: ClassId,
    pub system_class: ClassId,
}

impl Kernel {
    /// The class of an immediate value. Heap references need the workspace.
    pub fn class_of_immediate(&self, oop: Oop) -> Option<ClassId> {
        match oop.kind() {
            OopKind::Nil => Some(self.undefined_object),
            OopKind::True => Some(self.true_class),
            OopKind::False => Some(self.false_class),
            OopKind::System => Some(self.system_class),
            OopKind::Int(_) => Some(self.small_integer),
            OopKind::Float(_) => Some(self.float),
            OopKind::Char(_) => Some(self.character),
            OopKind::Sym(_) => Some(self.symbol),
            OopKind::Class(_) => Some(self.metaclass),
            OopKind::Heap(_) | OopKind::Ref(_) => None,
        }
    }
}

/// The database-wide class table.
#[derive(Debug, Default)]
pub struct ClassTable {
    defs: Vec<ClassDef>,
    by_name: HashMap<SymbolId, ClassId>,
}

impl ClassTable {
    /// Bootstrap the kernel hierarchy.
    pub fn bootstrap(symbols: &mut SymbolTable) -> (ClassTable, Kernel) {
        let mut t = ClassTable::default();
        let def = |t: &mut ClassTable,
                   symbols: &mut SymbolTable,
                   name: &str,
                   sup: Option<ClassId>,
                   format: BodyFormat| {
            let name = symbols.intern(name);
            t.define(ClassDef {
                name,
                superclass: sup,
                format,
                instvars: Vec::new(),
                methods: HashMap::new(),
                class_methods: HashMap::new(),
                kind: ClassKind::Kernel,
            })
            .expect("kernel bootstrap")
        };
        use BodyFormat::{Bytes, Elements};
        let object = def(&mut t, symbols, "Object", None, Elements);
        let undefined_object = def(&mut t, symbols, "UndefinedObject", Some(object), Elements);
        let boolean = def(&mut t, symbols, "Boolean", Some(object), Elements);
        let true_class = def(&mut t, symbols, "True", Some(boolean), Elements);
        let false_class = def(&mut t, symbols, "False", Some(boolean), Elements);
        let magnitude = def(&mut t, symbols, "Magnitude", Some(object), Elements);
        let number = def(&mut t, symbols, "Number", Some(magnitude), Elements);
        let small_integer = def(&mut t, symbols, "SmallInteger", Some(number), Elements);
        let float = def(&mut t, symbols, "Float", Some(number), Elements);
        let character = def(&mut t, symbols, "Character", Some(magnitude), Elements);
        let collection = def(&mut t, symbols, "Collection", Some(object), Elements);
        let string = def(&mut t, symbols, "String", Some(collection), Bytes);
        let symbol = def(&mut t, symbols, "Symbol", Some(string), Bytes);
        let array = def(&mut t, symbols, "Array", Some(collection), Elements);
        let ordered_collection =
            def(&mut t, symbols, "OrderedCollection", Some(collection), Elements);
        let set = def(&mut t, symbols, "Set", Some(collection), Elements);
        let bag = def(&mut t, symbols, "Bag", Some(collection), Elements);
        let dictionary = def(&mut t, symbols, "Dictionary", Some(collection), Elements);
        let association = def(&mut t, symbols, "Association", Some(object), Elements);
        let metaclass = def(&mut t, symbols, "Metaclass", Some(object), Elements);
        let system_class = def(&mut t, symbols, "System", Some(object), Elements);

        let key = symbols.intern("key");
        let value = symbols.intern("value");
        t.defs[association.0 as usize].instvars = vec![key, value];

        let kernel = Kernel {
            object,
            undefined_object,
            boolean,
            true_class,
            false_class,
            magnitude,
            number,
            small_integer,
            float,
            character,
            collection,
            string,
            symbol,
            array,
            ordered_collection,
            set,
            bag,
            dictionary,
            association,
            metaclass,
            system_class,
        };
        (t, kernel)
    }

    /// Register a class definition.
    pub fn define(&mut self, def: ClassDef) -> GemResult<ClassId> {
        if self.by_name.contains_key(&def.name) {
            return Err(GemError::ClassExists(def.name));
        }
        if let Some(sup) = def.superclass {
            if sup.0 as usize >= self.defs.len() {
                return Err(GemError::NoSuchClass(def.name));
            }
        }
        let id = ClassId(u32::try_from(self.defs.len()).expect("class table exhausted"));
        self.by_name.insert(def.name, id);
        self.defs.push(def);
        Ok(id)
    }

    /// Create a user subclass, inheriting the superclass's body format.
    /// This is the `subclass:instVarNames:` protocol of §4.1's Employee /
    /// Manager example.
    pub fn subclass(
        &mut self,
        name: SymbolId,
        superclass: ClassId,
        instvars: Vec<SymbolId>,
    ) -> GemResult<ClassId> {
        // Reject duplicate declarations against inherited variables — each
        // name must label a single element (§5.1).
        let inherited = self.all_instvars(superclass);
        for v in &instvars {
            if inherited.contains(v) || instvars.iter().filter(|w| *w == v).count() > 1 {
                return Err(GemError::DuplicateInstVar(*v));
            }
        }
        let format = self.get(superclass).format;
        self.define(ClassDef {
            name,
            superclass: Some(superclass),
            format,
            instvars,
            methods: HashMap::new(),
            class_methods: HashMap::new(),
            kind: ClassKind::User,
        })
    }

    /// The definition of a class.
    pub fn get(&self, id: ClassId) -> &ClassDef {
        &self.defs[id.0 as usize]
    }

    /// Mutable access (method installation, schema evolution).
    pub fn get_mut(&mut self, id: ClassId) -> &mut ClassDef {
        &mut self.defs[id.0 as usize]
    }

    /// Find a class by name.
    pub fn by_name(&self, name: SymbolId) -> Option<ClassId> {
        self.by_name.get(&name).copied()
    }

    /// True if `a` is `b` or a (transitive) subclass of `b`.
    pub fn is_kind_of(&self, a: ClassId, b: ClassId) -> bool {
        let mut cur = Some(a);
        while let Some(c) = cur {
            if c == b {
                return true;
            }
            cur = self.get(c).superclass;
        }
        false
    }

    /// All declared instance variables, superclass-first.
    pub fn all_instvars(&self, id: ClassId) -> Vec<SymbolId> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.get(c).superclass;
        }
        let mut vars = Vec::new();
        for c in chain.into_iter().rev() {
            vars.extend_from_slice(&self.get(c).instvars);
        }
        vars
    }

    /// True if `var` is declared by `id` or an ancestor.
    pub fn declares_instvar(&self, id: ClassId, var: SymbolId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.get(c).instvars.contains(&var) {
                return true;
            }
            cur = self.get(c).superclass;
        }
        false
    }

    /// Add an instance variable to an existing class. Existing instances are
    /// untouched: they simply lack the element until it is first assigned —
    /// the §2C goal of "modification of database schemes without database
    /// restructuring".
    pub fn add_instvar(&mut self, id: ClassId, var: SymbolId) -> GemResult<()> {
        if self.declares_instvar(id, var) {
            return Err(GemError::DuplicateInstVar(var));
        }
        self.get_mut(id).instvars.push(var);
        Ok(())
    }

    /// Install an instance-side method.
    pub fn add_method(&mut self, id: ClassId, selector: SymbolId, m: MethodRef) {
        self.get_mut(id).methods.insert(selector, m);
    }

    /// Install a class-side method.
    pub fn add_class_method(&mut self, id: ClassId, selector: SymbolId, m: MethodRef) {
        self.get_mut(id).class_methods.insert(selector, m);
    }

    /// Look up `selector` starting at `class` and walking up the hierarchy.
    /// Returns the defining class and the method.
    pub fn lookup_method(
        &self,
        class: ClassId,
        selector: SymbolId,
    ) -> Option<(ClassId, MethodRef)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&m) = self.get(c).methods.get(&selector) {
                return Some((c, m));
            }
            cur = self.get(c).superclass;
        }
        None
    }

    /// Look up a class-side method.
    pub fn lookup_class_method(
        &self,
        class: ClassId,
        selector: SymbolId,
    ) -> Option<(ClassId, MethodRef)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&m) = self.get(c).class_methods.get(&selector) {
                return Some((c, m));
            }
            cur = self.get(c).superclass;
        }
        None
    }

    /// Number of classes defined.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when empty (never true after bootstrap).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// All classes in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.defs.iter().enumerate().map(|(i, d)| (ClassId(i as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SymbolTable, ClassTable, Kernel) {
        let mut symbols = SymbolTable::new();
        let (classes, kernel) = ClassTable::bootstrap(&mut symbols);
        (symbols, classes, kernel)
    }

    #[test]
    fn bootstrap_hierarchy() {
        let (_, classes, k) = setup();
        assert!(classes.is_kind_of(k.small_integer, k.number));
        assert!(classes.is_kind_of(k.small_integer, k.magnitude));
        assert!(classes.is_kind_of(k.small_integer, k.object));
        assert!(!classes.is_kind_of(k.small_integer, k.collection));
        assert!(classes.is_kind_of(k.symbol, k.string));
        assert_eq!(classes.get(k.string).format, BodyFormat::Bytes);
        assert_eq!(classes.get(k.set).format, BodyFormat::Elements);
    }

    #[test]
    fn employee_manager_example() {
        // §4.1: "We can define a class Employee, with each instance having a
        // name, a set of departments and a salary. … A subclass Manager of
        // class Employee could define additional structure, such as the
        // department managed."
        let (mut symbols, mut classes, k) = setup();
        let emp_name = symbols.intern("Employee");
        let name = symbols.intern("name");
        let depts = symbols.intern("depts");
        let salary = symbols.intern("salary");
        let employee = classes.subclass(emp_name, k.object, vec![name, depts, salary]).unwrap();

        let mgr_name = symbols.intern("Manager");
        let managed = symbols.intern("departmentManaged");
        let manager = classes.subclass(mgr_name, employee, vec![managed]).unwrap();

        assert!(classes.is_kind_of(manager, employee));
        assert_eq!(classes.all_instvars(manager), vec![name, depts, salary, managed]);
        assert!(classes.declares_instvar(manager, salary), "inherited");
        assert!(!classes.declares_instvar(employee, managed));
    }

    #[test]
    fn duplicate_class_name_rejected() {
        let (mut symbols, mut classes, k) = setup();
        let n = symbols.intern("Emp");
        classes.subclass(n, k.object, vec![]).unwrap();
        assert!(matches!(classes.subclass(n, k.object, vec![]), Err(GemError::ClassExists(_))));
    }

    #[test]
    fn duplicate_instvar_rejected() {
        let (mut symbols, mut classes, k) = setup();
        let n = symbols.intern("Emp");
        let v = symbols.intern("x");
        let emp = classes.subclass(n, k.object, vec![v]).unwrap();
        let n2 = symbols.intern("Emp2");
        assert!(matches!(classes.subclass(n2, emp, vec![v]), Err(GemError::DuplicateInstVar(_))));
        let n3 = symbols.intern("Emp3");
        let w = symbols.intern("w");
        assert!(matches!(
            classes.subclass(n3, emp, vec![w, w]),
            Err(GemError::DuplicateInstVar(_))
        ));
    }

    #[test]
    fn method_lookup_walks_hierarchy() {
        let (mut symbols, mut classes, k) = setup();
        let sel = symbols.intern("printString");
        classes.add_method(k.object, sel, MethodRef::Primitive(1));
        let n = symbols.intern("Emp");
        let emp = classes.subclass(n, k.object, vec![]).unwrap();
        let (defining, m) = classes.lookup_method(emp, sel).unwrap();
        assert_eq!(defining, k.object);
        assert_eq!(m, MethodRef::Primitive(1));
        // Overriding in the subclass shadows the superclass.
        classes.add_method(emp, sel, MethodRef::Primitive(2));
        let (defining, m) = classes.lookup_method(emp, sel).unwrap();
        assert_eq!(defining, emp);
        assert_eq!(m, MethodRef::Primitive(2));
    }

    #[test]
    fn schema_evolution_adds_instvar() {
        let (mut symbols, mut classes, k) = setup();
        let n = symbols.intern("Emp");
        let emp = classes.subclass(n, k.object, vec![]).unwrap();
        let phone = symbols.intern("phone");
        classes.add_instvar(emp, phone).unwrap();
        assert!(classes.declares_instvar(emp, phone));
        assert!(classes.add_instvar(emp, phone).is_err());
    }

    #[test]
    fn class_of_immediates() {
        let (_, _, k) = setup();
        assert_eq!(k.class_of_immediate(Oop::int(5)), Some(k.small_integer));
        assert_eq!(k.class_of_immediate(Oop::float(1.5)), Some(k.float));
        assert_eq!(k.class_of_immediate(Oop::NIL), Some(k.undefined_object));
        assert_eq!(k.class_of_immediate(Oop::TRUE), Some(k.true_class));
        assert_eq!(k.class_of_immediate(Oop::obj(3)), None);
    }

    #[test]
    fn operations_on_subclasses_of_simple_types() {
        // §2A: "We can't create a new 'employee number' type with a
        // non-standard ordering" — here we can: subclass SmallInteger's class
        // and attach methods.
        let (mut symbols, mut classes, k) = setup();
        let n = symbols.intern("EmployeeNumber");
        let empno = classes.subclass(n, k.small_integer, vec![]).unwrap();
        let sel = symbols.intern("nearestPayday");
        classes.add_method(empno, sel, MethodRef::Primitive(99));
        assert!(classes.lookup_method(empno, sel).is_some());
        assert!(classes.lookup_method(k.small_integer, sel).is_none());
    }
}
