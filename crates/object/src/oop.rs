//! Tagged object pointers.
//!
//! The standard ST80 object memory represents references as object-oriented
//! pointers (OOPs) with immediate SmallIntegers. GemStone additionally uses
//! *global* OOPs — GOOPs — for references that cross logical access paths
//! (§6: "Where an object is an element of more than one set … references to
//! the object use a global object-oriented pointer (GOOP)").
//!
//! Encoding: a 64-bit word whose low 4 bits are a tag.
//!
//! | tag | meaning                  | payload (high 60 bits)            |
//! |-----|--------------------------|-----------------------------------|
//! | 0x0 | heap reference           | workspace index ([`Oop`]) or GOOP ([`PRef`]) |
//! | 0x1 | SmallInteger             | signed 60-bit integer             |
//! | 0x2 | Character                | Unicode scalar value              |
//! | 0x3 | special                  | 0 = nil, 1 = false, 2 = true, 3 = System |
//! | 0x4 | Symbol                   | [`SymbolId`]                      |
//! | 0x5 | Float                    | f64 bits with the low 4 mantissa bits zeroed |
//! | 0x6 | Class                    | [`ClassId`]                       |
//! | 0x7 | unswizzled reference     | [`Goop`] (session pointers only: a committed object not yet faulted into the workspace) |
//!
//! Floats lose their 4 lowest mantissa bits to the tag — a relative error of
//! 2⁻⁴⁸, far below the paper's use of money/ratio comparisons. SmallIntegers
//! cover ±2⁵⁹; exceeding that range is reported as an overflow error rather
//! than silently wrapping (§2B: limits must come from storage, not artifacts,
//! so the limit is explicit and checked).

use crate::class::ClassId;
use crate::symbol::SymbolId;
use std::fmt;

const TAG_BITS: u32 = 4;
const TAG_MASK: u64 = 0xF;

const TAG_HEAP: u64 = 0x0;
const TAG_INT: u64 = 0x1;
const TAG_CHAR: u64 = 0x2;
const TAG_SPECIAL: u64 = 0x3;
const TAG_SYM: u64 = 0x4;
const TAG_FLOAT: u64 = 0x5;
const TAG_CLASS: u64 = 0x6;
const TAG_REF: u64 = 0x7;

const SPECIAL_NIL: u64 = 0;
const SPECIAL_FALSE: u64 = 1;
const SPECIAL_TRUE: u64 = 2;
const SPECIAL_SYSTEM: u64 = 3;

/// Range of immediate SmallIntegers: ±(2⁵⁹ − 1).
pub const SMALL_INT_MAX: i64 = (1 << 59) - 1;
/// Minimum immediate SmallInteger.
pub const SMALL_INT_MIN: i64 = -(1 << 59);

/// An index into a session workspace's object table.
pub type ObjIndex = u32;

/// A global object identity, unique for the life of the database.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Goop(pub u64);

impl fmt::Debug for Goop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// An authorization segment: the unit at which read/write privileges are
/// granted to users (§6 lists authorization among the Object Manager's
/// duties).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SegmentId(pub u16);

impl SegmentId {
    /// The system segment, readable by everyone; kernel objects live here.
    pub const SYSTEM: SegmentId = SegmentId(0);
}

/// The decoded form of a tagged pointer, for matching.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum OopKind {
    Nil,
    False,
    True,
    /// The `System` pseudo-object that receives system commands
    /// (§4.2: "ST80 treats system components as full-fledged objects, giving
    /// a natural and uniform way to issue system commands").
    System,
    Int(i64),
    Char(char),
    Sym(SymbolId),
    Float(f64),
    Class(ClassId),
    Heap(u64),
    /// An unswizzled persistent reference: the session has not faulted this
    /// object yet. Sessions resolve these on first touch (§6's GOOP
    /// resolution "through a global object table").
    Ref(Goop),
}

macro_rules! tagged_impl {
    ($name:ident, $heap_doc:expr) => {
        impl $name {
            /// The nil pointer.
            pub const NIL: $name = $name(TAG_SPECIAL | (SPECIAL_NIL << TAG_BITS));
            /// The false object.
            pub const FALSE: $name = $name(TAG_SPECIAL | (SPECIAL_FALSE << TAG_BITS));
            /// The true object.
            pub const TRUE: $name = $name(TAG_SPECIAL | (SPECIAL_TRUE << TAG_BITS));
            /// The System pseudo-object.
            pub const SYSTEM: $name = $name(TAG_SPECIAL | (SPECIAL_SYSTEM << TAG_BITS));

            /// Raw 64-bit encoding (used by the storage format).
            pub const fn bits(self) -> u64 {
                self.0
            }

            /// Rebuild from a raw encoding read off disk.
            pub const fn from_bits(bits: u64) -> $name {
                $name(bits)
            }

            /// An immediate SmallInteger. Panics outside ±2⁵⁹; use
            /// [`Self::try_int`] where user arithmetic can overflow.
            pub fn int(i: i64) -> $name {
                Self::try_int(i).expect("SmallInteger out of immediate range")
            }

            /// An immediate SmallInteger, or `None` if out of range.
            pub fn try_int(i: i64) -> Option<$name> {
                if (SMALL_INT_MIN..=SMALL_INT_MAX).contains(&i) {
                    Some($name(((i as u64) << TAG_BITS) | TAG_INT))
                } else {
                    None
                }
            }

            /// An immediate Character.
            pub fn char(c: char) -> $name {
                $name(((c as u64) << TAG_BITS) | TAG_CHAR)
            }

            /// A Boolean object.
            pub fn bool(b: bool) -> $name {
                if b {
                    Self::TRUE
                } else {
                    Self::FALSE
                }
            }

            /// An interned Symbol.
            pub fn sym(s: SymbolId) -> $name {
                $name(((s.0 as u64) << TAG_BITS) | TAG_SYM)
            }

            /// An immediate Float (low 4 mantissa bits truncated).
            pub fn float(x: f64) -> $name {
                $name((x.to_bits() & !TAG_MASK) | TAG_FLOAT)
            }

            /// A class object.
            pub fn class(c: ClassId) -> $name {
                $name(((c.0 as u64) << TAG_BITS) | TAG_CLASS)
            }

            #[doc = $heap_doc]
            pub fn heap(idx: u64) -> $name {
                debug_assert!(idx < (1 << 60));
                $name(idx << TAG_BITS)
            }

            /// Decode for matching.
            pub fn kind(self) -> OopKind {
                let payload = self.0 >> TAG_BITS;
                match self.0 & TAG_MASK {
                    TAG_HEAP => OopKind::Heap(payload),
                    TAG_INT => OopKind::Int((self.0 as i64) >> TAG_BITS),
                    TAG_CHAR => {
                        OopKind::Char(char::from_u32(payload as u32).expect("invalid char payload"))
                    }
                    TAG_SYM => OopKind::Sym(SymbolId(payload as u32)),
                    TAG_FLOAT => OopKind::Float(f64::from_bits(self.0 & !TAG_MASK)),
                    TAG_CLASS => OopKind::Class(ClassId(payload as u32)),
                    TAG_REF => OopKind::Ref(Goop(payload)),
                    TAG_SPECIAL => match payload {
                        SPECIAL_NIL => OopKind::Nil,
                        SPECIAL_FALSE => OopKind::False,
                        SPECIAL_TRUE => OopKind::True,
                        SPECIAL_SYSTEM => OopKind::System,
                        _ => unreachable!("bad special payload"),
                    },
                    _ => unreachable!("bad tag"),
                }
            }

            /// True for nil.
            pub const fn is_nil(self) -> bool {
                self.0 == Self::NIL.0
            }

            /// True for any heap reference.
            pub const fn is_heap(self) -> bool {
                self.0 & TAG_MASK == TAG_HEAP
            }

            /// True for any non-heap (immediate) value. Immediates have the
            /// same encoding in workspaces and on disk.
            pub const fn is_immediate(self) -> bool {
                self.0 & TAG_MASK != TAG_HEAP
            }

            /// SmallInteger payload, if this is one.
            pub fn as_int(self) -> Option<i64> {
                if self.0 & TAG_MASK == TAG_INT {
                    Some((self.0 as i64) >> TAG_BITS)
                } else {
                    None
                }
            }

            /// Float payload, if this is one.
            pub fn as_float(self) -> Option<f64> {
                if self.0 & TAG_MASK == TAG_FLOAT {
                    Some(f64::from_bits(self.0 & !TAG_MASK))
                } else {
                    None
                }
            }

            /// Numeric value if SmallInteger or Float.
            pub fn as_number(self) -> Option<f64> {
                match self.kind() {
                    OopKind::Int(i) => Some(i as f64),
                    OopKind::Float(f) => Some(f),
                    _ => None,
                }
            }

            /// Symbol payload, if this is one.
            pub fn as_sym(self) -> Option<SymbolId> {
                if self.0 & TAG_MASK == TAG_SYM {
                    Some(SymbolId((self.0 >> TAG_BITS) as u32))
                } else {
                    None
                }
            }

            /// Character payload, if this is one.
            pub fn as_char(self) -> Option<char> {
                if self.0 & TAG_MASK == TAG_CHAR {
                    char::from_u32((self.0 >> TAG_BITS) as u32)
                } else {
                    None
                }
            }

            /// Boolean payload, if this is true or false.
            pub fn as_bool(self) -> Option<bool> {
                match self.kind() {
                    OopKind::True => Some(true),
                    OopKind::False => Some(false),
                    _ => None,
                }
            }

            /// Class payload, if this is a class object.
            pub fn as_class(self) -> Option<ClassId> {
                if self.0 & TAG_MASK == TAG_CLASS {
                    Some(ClassId((self.0 >> TAG_BITS) as u32))
                } else {
                    None
                }
            }

            /// Heap payload, if this is a heap reference.
            pub fn as_heap_raw(self) -> Option<u64> {
                if self.is_heap() {
                    Some(self.0 >> TAG_BITS)
                } else {
                    None
                }
            }
        }
    };
}

/// A session-local object pointer: heap payload indexes the session
/// [`Workspace`](crate::Workspace).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Oop(u64);

/// A persistent object pointer: heap payload is a [`Goop`]. This is the form
/// element values take inside the permanent database and on disk.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct PRef(u64);

tagged_impl!(Oop, "A workspace heap reference.");
tagged_impl!(PRef, "A persistent reference by GOOP.");

impl Oop {
    /// An unswizzled reference to a committed object.
    pub fn unswizzled(g: Goop) -> Oop {
        debug_assert!(g.0 < (1 << 60));
        Oop((g.0 << TAG_BITS) | TAG_REF)
    }

    /// The referenced identity, if this is an unswizzled reference.
    pub fn as_unswizzled(self) -> Option<Goop> {
        if self.0 & TAG_MASK == TAG_REF {
            Some(Goop(self.0 >> TAG_BITS))
        } else {
            None
        }
    }

    /// A workspace heap reference by object-table index.
    pub fn obj(idx: ObjIndex) -> Oop {
        Oop::heap(idx as u64)
    }

    /// Workspace object-table index, if a heap reference.
    pub fn as_obj(self) -> Option<ObjIndex> {
        self.as_heap_raw().map(|x| x as ObjIndex)
    }

    /// Convert an immediate to its persistent form. Heap references need the
    /// session's goop assignment and are rejected here.
    pub fn to_pref_immediate(self) -> Option<PRef> {
        if self.is_immediate() {
            Some(PRef(self.0))
        } else {
            None
        }
    }
}

impl PRef {
    /// A persistent reference to the object with the given identity.
    pub fn goop(g: Goop) -> PRef {
        PRef::heap(g.0)
    }

    /// The referenced identity, if a heap reference.
    pub fn as_goop(self) -> Option<Goop> {
        self.as_heap_raw().map(Goop)
    }

    /// Convert an immediate to its session form.
    pub fn to_oop_immediate(self) -> Option<Oop> {
        if self.is_immediate() {
            Some(Oop(self.0))
        } else {
            None
        }
    }
}

impl fmt::Debug for Oop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            OopKind::Heap(i) => write!(f, "obj#{i}"),
            k => write!(f, "{k:?}"),
        }
    }
}

impl fmt::Debug for PRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            OopKind::Heap(i) => write!(f, "g{i}"),
            k => write!(f, "{k:?}"),
        }
    }
}

impl Default for Oop {
    fn default() -> Self {
        Oop::NIL
    }
}

impl Default for PRef {
    fn default() -> Self {
        PRef::NIL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for i in [0i64, 1, -1, 42, -42, SMALL_INT_MAX, SMALL_INT_MIN] {
            assert_eq!(Oop::int(i).as_int(), Some(i), "roundtrip {i}");
        }
        assert_eq!(Oop::try_int(SMALL_INT_MAX + 1), None);
        assert_eq!(Oop::try_int(SMALL_INT_MIN - 1), None);
    }

    #[test]
    fn float_roundtrip_precision() {
        for x in [0.0f64, 1.5, -2.25, 24650.0, 0.10, 256_500.0, 1e300, -1e-300] {
            let back = Oop::float(x).as_float().unwrap();
            let err = if x == 0.0 { back.abs() } else { ((back - x) / x).abs() };
            assert!(err < 1e-13, "x={x} back={back}");
        }
        // Integral floats below 2^48 are exact despite tag truncation.
        assert_eq!(Oop::float(142_000.0).as_float(), Some(142_000.0));
    }

    #[test]
    fn char_and_sym() {
        assert_eq!(Oop::char('Q').as_char(), Some('Q'));
        assert_eq!(Oop::char('λ').as_char(), Some('λ'));
        let s = SymbolId(77);
        assert_eq!(Oop::sym(s).as_sym(), Some(s));
    }

    #[test]
    fn specials_are_distinct() {
        let all = [Oop::NIL, Oop::FALSE, Oop::TRUE, Oop::SYSTEM, Oop::int(0), Oop::obj(0)];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
            }
        }
        assert!(Oop::NIL.is_nil());
        assert!(!Oop::FALSE.is_nil());
        assert_eq!(Oop::TRUE.as_bool(), Some(true));
        assert_eq!(Oop::FALSE.as_bool(), Some(false));
        assert_eq!(Oop::NIL.as_bool(), None);
    }

    #[test]
    fn heap_refs() {
        let o = Oop::obj(123_456);
        assert!(o.is_heap());
        assert!(!o.is_immediate());
        assert_eq!(o.as_obj(), Some(123_456));
        assert_eq!(o.to_pref_immediate(), None);

        let p = PRef::goop(Goop(987_654_321));
        assert_eq!(p.as_goop(), Some(Goop(987_654_321)));
    }

    #[test]
    fn immediate_conversion_is_bit_identical() {
        for o in [Oop::NIL, Oop::TRUE, Oop::int(-5), Oop::char('x'), Oop::float(2.5)] {
            let p = o.to_pref_immediate().unwrap();
            assert_eq!(p.bits(), o.bits());
            assert_eq!(p.to_oop_immediate().unwrap(), o);
        }
    }

    #[test]
    fn kind_decoding() {
        assert_eq!(Oop::int(9).kind(), OopKind::Int(9));
        assert_eq!(Oop::NIL.kind(), OopKind::Nil);
        assert_eq!(Oop::SYSTEM.kind(), OopKind::System);
        assert!(matches!(Oop::class(ClassId(3)).kind(), OopKind::Class(ClassId(3))));
        assert_eq!(Oop::int(7).as_number(), Some(7.0));
        assert_eq!(Oop::float(2.5).as_number(), Some(2.5));
        assert_eq!(Oop::NIL.as_number(), None);
    }

    #[test]
    fn negative_int_encoding_uses_arithmetic_shift() {
        assert_eq!(Oop::int(-1).as_int(), Some(-1));
        assert_eq!(Oop::int(i64::from(i32::MIN)).as_int(), Some(i64::from(i32::MIN)));
    }
}
