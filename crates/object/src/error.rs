//! The error type shared by every GemStone subsystem.

use crate::symbol::SymbolId;
use std::fmt;

/// Why optimistic validation refused a commit. Carried inside
/// [`GemError::TransactionConflict`] so retry policies can distinguish a
/// real overlap (retrying immediately may well succeed) from the
/// watermark-conservative refusal (the commit log was pruned past the
/// transaction's start, so overlap could not be ruled out — the retry
/// should begin from a fresh snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// A concurrent transaction committed a write intersecting this
    /// transaction's read set after its snapshot.
    Overlap,
    /// Conservative refusal: the commit log no longer reaches back to the
    /// transaction's start, so validation cannot prove non-overlap.
    Watermark,
}

impl ConflictKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ConflictKind::Overlap => "overlap",
            ConflictKind::Watermark => "watermark",
        }
    }
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Anything that can go wrong in the GemStone system, from message sends to
/// track I/O. Subsystems all speak this type so errors cross crate
/// boundaries without translation — the single-language goal of §2F applied
/// to error handling.
#[derive(Debug, Clone, PartialEq)]
pub enum GemError {
    /// A message was sent that no class in the receiver's hierarchy handles.
    DoesNotUnderstand { class: String, selector: String },
    /// A path expression or element access named a missing element.
    NoSuchElement(String),
    /// A path expression tried to navigate through nil.
    PathThroughNil(String),
    /// Index outside an indexed object's bounds.
    IndexOutOfRange { index: i64, size: usize },
    /// The receiver cannot perform the requested structural operation.
    NotIndexable(String),
    /// Operand of the wrong type for a primitive.
    TypeMismatch { expected: &'static str, got: String },
    /// A class with this name already exists.
    ClassExists(SymbolId),
    /// No class with this name.
    NoSuchClass(SymbolId),
    /// Instance variable declared twice in a hierarchy.
    DuplicateInstVar(SymbolId),
    /// SmallInteger arithmetic left the immediate range.
    IntOverflow,
    /// Division by zero.
    ZeroDivide,
    /// A mutation was attempted while the time dial is set to a past state.
    WriteInPast,
    /// Optimistic validation failed: a concurrent transaction committed a
    /// conflicting write (§6's Transaction Manager "validates \[accesses\] for
    /// consistency when a transaction commits"). `kind` distinguishes a real
    /// read/write overlap from the watermark-conservative refusal; the full
    /// forensic record (culprit, overlapping objects, home tracks) is kept
    /// by the Transaction Manager and fetched via `Session::last_conflict`.
    TransactionConflict { kind: ConflictKind, detail: String },
    /// No transaction is active for an operation that requires one.
    NoTransaction,
    /// The user lacks the privilege for this segment.
    AuthorizationDenied { segment: u16, detail: String },
    /// Simulated disk failure or crash injection.
    DiskFailure(String),
    /// The disk is down (a crash was triggered and power has not returned):
    /// every operation fails until the disk is revived. Distinct from
    /// [`GemError::DiskFailure`] so recovery code can tell "this device is
    /// gone until power-up" from per-operation I/O errors.
    DiskDead,
    /// On-disk data failed validation.
    Corrupt(String),
    /// OPAL source failed to parse.
    ParseError { line: u32, col: u32, msg: String },
    /// OPAL compilation error (undefined variable, bad calculus expression…).
    CompileError(String),
    /// Method installation rejected: a `select:` fallback block was proven
    /// impure by the effect analysis. The calculus translation is free to
    /// run any selection declaratively (§5.2), which is only sound when the
    /// predicate block cannot write.
    ImpureSelectBlock { selector: String, effect: String },
    /// Generic runtime error raised by OPAL code (`System error:`).
    RuntimeError(String),
    /// A compiled method failed bytecode verification, or the interpreter
    /// detected an inconsistency (stack underflow, bad index…) that a
    /// verified method cannot exhibit. The statement aborts; the session
    /// survives.
    CorruptMethod(String),
    /// Interpreter resource guard (runaway recursion / step budget).
    ResourceExhausted(&'static str),
}

impl fmt::Display for GemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemError::DoesNotUnderstand { class, selector } => {
                write!(f, "{class} does not understand #{selector}")
            }
            GemError::NoSuchElement(name) => write!(f, "no element named {name}"),
            GemError::PathThroughNil(path) => {
                write!(f, "path expression traverses nil at {path}")
            }
            GemError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} out of range for size {size}")
            }
            GemError::NotIndexable(what) => write!(f, "{what} is not indexable"),
            GemError::TypeMismatch { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            GemError::ClassExists(s) => write!(f, "class already exists: {s:?}"),
            GemError::NoSuchClass(s) => write!(f, "no such class: {s:?}"),
            GemError::DuplicateInstVar(s) => write!(f, "duplicate instance variable: {s:?}"),
            GemError::IntOverflow => write!(f, "SmallInteger overflow"),
            GemError::ZeroDivide => write!(f, "division by zero"),
            GemError::WriteInPast => write!(f, "cannot modify a past database state"),
            GemError::TransactionConflict { kind, detail } => {
                write!(f, "transaction conflict ({kind}): {detail}")
            }
            GemError::NoTransaction => write!(f, "no transaction in progress"),
            GemError::AuthorizationDenied { segment, detail } => {
                write!(f, "authorization denied on segment {segment}: {detail}")
            }
            GemError::DiskFailure(d) => write!(f, "disk failure: {d}"),
            GemError::DiskDead => write!(f, "disk is down"),
            GemError::Corrupt(d) => write!(f, "corrupt database: {d}"),
            GemError::ParseError { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            GemError::CompileError(m) => write!(f, "compile error: {m}"),
            GemError::ImpureSelectBlock { selector, effect } => {
                write!(
                    f,
                    "cannot install #{selector}: its select: block is {effect}, \
                     not a pure predicate"
                )
            }
            GemError::RuntimeError(m) => write!(f, "error: {m}"),
            GemError::CorruptMethod(m) => write!(f, "corrupt method: {m}"),
            GemError::ResourceExhausted(w) => write!(f, "resource exhausted: {w}"),
        }
    }
}

impl std::error::Error for GemError {}

/// Result alias used across all GemStone crates.
pub type GemResult<T> = Result<T, GemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GemError::DoesNotUnderstand { class: "Employee".into(), selector: "fire".into() };
        assert_eq!(e.to_string(), "Employee does not understand #fire");
        assert_eq!(GemError::ZeroDivide.to_string(), "division by zero");
        assert_eq!(
            GemError::IndexOutOfRange { index: 9, size: 3 }.to_string(),
            "index 9 out of range for size 3"
        );
    }
}
