//! The object model underlying GemStone (§4 of Copeland & Maier, SIGMOD 1984).
//!
//! "ST80 is based on three concepts: object, message, and class. An object is
//! essentially private memory with a public interface. … Objects are organized
//! into classes. … Classes are organized in a (strict) hierarchy."
//!
//! This crate supplies the session-level object model:
//!
//! * [`Oop`] — tagged object-oriented pointers, with immediate SmallIntegers,
//!   Characters, Booleans, Floats, Symbols, and nil, exactly in the spirit of
//!   the ST80 object memory, but without its 32K-object / 64KB-object limits
//!   (§4.3).
//! * [`Goop`] — global object-oriented pointers, the permanent identity an
//!   object keeps for its whole life (§5.4: "When an object is instantiated,
//!   it is given a globally unique identity. It lives forever with that
//!   identity.").
//! * [`SymbolTable`] — interned symbols used for selectors, element names and
//!   class names.
//! * [`ClassTable`] / [`Kernel`] — the strict class hierarchy with method
//!   dictionaries and instance-variable declarations.
//! * [`ElemName`] — element names of the GemStone Data Model: integers,
//!   symbols, or system-generated aliases (§5.1).
//! * [`Workspace`] / [`HeapObject`] — a session's private object space
//!   (§6: "Each user session … has its own Object Manager with a private
//!   object space").

mod class;
mod elem;
mod equality;
mod error;
mod heap;
mod oop;
mod symbol;

pub use class::{
    BodyFormat, ClassDef, ClassId, ClassKind, ClassTable, Kernel, MethodId, MethodRef,
};
pub use elem::ElemName;
pub use equality::{class_name, class_of, structurally_equal, value_key, ValueKey};
pub use error::{ConflictKind, GemError, GemResult};
pub use heap::{HeapObject, ObjIndex, Workspace};
pub use oop::{Goop, Oop, OopKind, PRef, SegmentId};
pub use symbol::{SymbolId, SymbolTable};
