//! Unit-level coverage of the `Database` Rust API (the DBA's programmatic
//! surface, distinct from the OPAL System commands).

use gemstone::{Database, GemError, StoreConfig, TxnTime};

#[test]
fn storage_stats_reflect_activity() {
    let db = Database::in_memory();
    db.reset_storage_stats();
    let mut s = db.login("system").unwrap();
    s.run("D := Dictionary new. D at: #x put: 1").unwrap();
    s.commit().unwrap();
    let (store, disk) = db.storage_stats();
    assert!(store.commits >= 1);
    assert!(store.objects_written >= 1);
    assert!(disk.track_writes >= 2, "data + root at least");
    assert!(disk.bytes_written > 0);
}

#[test]
fn txn_counts_track_commits_and_aborts() {
    let db = Database::in_memory();
    let mut s = db.login("system").unwrap();
    s.run("X := 1").unwrap();
    s.commit().unwrap();
    s.run("X := 2").unwrap();
    s.abort();
    let (commits, aborts) = db.txn_counts();
    assert!(commits >= 1);
    assert!(aborts >= 1);
}

#[test]
fn archive_api_mirrors_the_system_command() {
    let db = Database::in_memory();
    let mut s = db.login("system").unwrap();
    s.run("D := Dictionary new. D at: #v put: 0").unwrap();
    s.commit().unwrap();
    for i in 1..=5 {
        s.run(&format!("D at: #v put: {i}")).unwrap();
        s.commit().unwrap();
    }
    let now = db.txn_counts().0; // not a time — use the session's clock below
    let _ = now;
    let t = s.run("System currentTime").unwrap().as_int().unwrap() as u64;
    let archived = db.archive_history_before(TxnTime::from_ticks(t)).unwrap();
    assert!(archived >= 4, "old associations pruned: {archived}");
    assert_eq!(s.run("D at: #v").unwrap().as_int(), Some(5));
}

#[test]
fn directory_count_and_cache_limits() {
    let db = Database::in_memory();
    assert_eq!(db.directory_count(), 0);
    let mut s = db.login("system").unwrap();
    s.run("| d | C := Set new. d := Dictionary new. d at: #k put: 1. C add: d").unwrap();
    s.commit().unwrap();
    s.run("System createIndexOn: C path: #k").unwrap();
    s.commit().unwrap();
    assert_eq!(db.directory_count(), 1);
    // Cache limit round-trips without breaking reads.
    db.set_object_cache_limit(Some(1));
    s.abort();
    assert_eq!(s.run("(C detect: [:e | true]) at: #k").unwrap().as_int(), Some(1));
    db.set_object_cache_limit(None);
}

#[test]
fn shutdown_refuses_while_shared_then_succeeds() {
    let db = Database::create(StoreConfig::default()).unwrap();
    let extra = db.clone();
    let err = db.into_disk();
    assert!(matches!(err, Err(GemError::RuntimeError(_))), "still shared");
    // The failed into_disk consumed one Arc; `extra` is now the only owner.
    assert!(extra.into_disk().is_ok());
}

#[test]
fn create_user_then_login() {
    let db = Database::in_memory();
    assert!(db.login("ada").is_err());
    db.create_user("ada");
    assert!(db.login("ada").is_ok());
}
