//! Authorization: users and segment privileges.
//!
//! §6 lists authorization among the Object Manager's duties and §4.3 notes
//! ST80 "lacks the amenities of a production database system:
//! … database administrator control over replication, authorization and
//! auxiliary structures." Every object carries a [`SegmentId`]; users hold
//! read/write privileges per segment. Segment 0 is the world segment:
//! everyone reads and writes it, so single-user examples stay frictionless.

use gemstone_object::{GemError, GemResult, SegmentId};
use std::collections::{HashMap, HashSet};

/// Access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

#[derive(Debug, Default, Clone)]
struct UserPerms {
    read: HashSet<SegmentId>,
    write: HashSet<SegmentId>,
}

/// The user/privilege table. The distinguished `system` user (the database
/// administrator) passes every check.
#[derive(Debug, Default)]
pub struct AuthTable {
    users: HashMap<String, UserPerms>,
    next_segment: u16,
}

/// The administrator account name.
pub const DBA: &str = "system";

impl AuthTable {
    /// A fresh table with only the administrator.
    pub fn new() -> AuthTable {
        AuthTable { users: HashMap::new(), next_segment: 1 }
    }

    /// Register a user (no privileges beyond the world segment).
    pub fn create_user(&mut self, name: &str) {
        self.users.entry(name.to_string()).or_default();
    }

    /// True if the user exists (the DBA always exists).
    pub fn user_exists(&self, name: &str) -> bool {
        name == DBA || self.users.contains_key(name)
    }

    /// Allocate a fresh protection segment.
    pub fn create_segment(&mut self) -> SegmentId {
        let s = SegmentId(self.next_segment);
        self.next_segment += 1;
        s
    }

    /// Grant a privilege.
    pub fn grant(&mut self, user: &str, segment: SegmentId, access: Access) -> GemResult<()> {
        if user == DBA {
            return Ok(()); // implicit
        }
        let perms = self
            .users
            .get_mut(user)
            .ok_or_else(|| GemError::RuntimeError(format!("no such user {user}")))?;
        match access {
            Access::Read => perms.read.insert(segment),
            Access::Write => perms.write.insert(segment),
        };
        Ok(())
    }

    /// Revoke a privilege.
    pub fn revoke(&mut self, user: &str, segment: SegmentId, access: Access) {
        if let Some(perms) = self.users.get_mut(user) {
            match access {
                Access::Read => perms.read.remove(&segment),
                Access::Write => perms.write.remove(&segment),
            };
        }
    }

    /// Check an access, erroring with `AuthorizationDenied`.
    pub fn check(&self, user: &str, segment: SegmentId, access: Access) -> GemResult<()> {
        if user == DBA || segment == SegmentId::SYSTEM {
            return Ok(());
        }
        let ok = self.users.get(user).is_some_and(|p| match access {
            Access::Read => p.read.contains(&segment) || p.write.contains(&segment),
            Access::Write => p.write.contains(&segment),
        });
        if ok {
            Ok(())
        } else {
            Err(GemError::AuthorizationDenied {
                segment: segment.0,
                detail: format!("user {user} lacks {access:?} privilege"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_segment_is_open() {
        let auth = AuthTable::new();
        assert!(auth.check("nobody", SegmentId::SYSTEM, Access::Write).is_ok());
    }

    #[test]
    fn dba_passes_everything() {
        let mut auth = AuthTable::new();
        let seg = auth.create_segment();
        assert!(auth.check(DBA, seg, Access::Write).is_ok());
    }

    #[test]
    fn grants_and_revocations() {
        let mut auth = AuthTable::new();
        auth.create_user("ellen");
        let seg = auth.create_segment();
        assert!(auth.check("ellen", seg, Access::Read).is_err());
        auth.grant("ellen", seg, Access::Read).unwrap();
        assert!(auth.check("ellen", seg, Access::Read).is_ok());
        assert!(auth.check("ellen", seg, Access::Write).is_err());
        auth.grant("ellen", seg, Access::Write).unwrap();
        assert!(auth.check("ellen", seg, Access::Write).is_ok());
        auth.revoke("ellen", seg, Access::Write);
        assert!(auth.check("ellen", seg, Access::Write).is_err());
    }

    #[test]
    fn write_implies_read() {
        let mut auth = AuthTable::new();
        auth.create_user("bob");
        let seg = auth.create_segment();
        auth.grant("bob", seg, Access::Write).unwrap();
        assert!(auth.check("bob", seg, Access::Read).is_ok());
    }

    #[test]
    fn unknown_user_grant_fails() {
        let mut auth = AuthTable::new();
        let seg = auth.create_segment();
        assert!(auth.grant("ghost", seg, Access::Read).is_err());
    }

    #[test]
    fn segments_are_distinct() {
        let mut auth = AuthTable::new();
        assert_ne!(auth.create_segment(), auth.create_segment());
    }
}
