//! GemStone: the full system of Copeland & Maier, *Making Smalltalk a
//! Database System* (SIGMOD 1984), reproduced in Rust.
//!
//! The [`GemStone`] facade is the paper's **Executor**: it "is responsible
//! for controlling sessions in the GemStone system on behalf of users on
//! host machines … receiving blocks of code, returning results and error
//! messages. It maintains a Compiler and Interpreter for each active user"
//! (§6). Each [`Session`] owns a private object space and talks to the
//! shared permanent database through optimistic transactions, with the
//! OPAL language — ST80 plus paths, time, and declarative selection — as
//! the single data/programming/system language (§2F).
//!
//! ```
//! use gemstone::GemStone;
//!
//! let gs = GemStone::in_memory();
//! let mut session = gs.login("system").unwrap();
//! session.run("Object subclass: 'Employee' instVarNames: #('name' 'salary')").unwrap();
//! let v = session.run("| e | e := Employee new. e salary: 24650. e salary").unwrap();
//! assert_eq!(v.as_int(), Some(24650));
//! session.commit().unwrap();
//! ```

mod auth;
mod db;
mod index;
mod meta;
mod session;

pub use auth::{Access, AuthTable, DBA};
pub use db::Database;
pub use session::{PlanChoiceRecord, Session, SlowStatement};

// Re-exports for downstream users of the public API.
pub use gemstone_calculus::{
    est_err_pct, KeySketch, OpNode, OpProfile, PlanStats, SelObs, SetStats, StatsCatalog,
};
pub use gemstone_object::{
    ConflictKind, ElemName, GemError, GemResult, Goop, Oop, OopKind, SegmentId,
};
pub use gemstone_opal::{Effect, EffectSummary};
pub use gemstone_storage::{
    CacheStats, DiskArray, DiskStats, FaultFile, FaultPlan, FileDisk, IoRecord, ReadFault,
    RecoveryReport, StoreConfig, StoreStats, TearClass, TrackDisk, TrackId,
};
pub use gemstone_telemetry::{
    replay, Anomaly, AnomalyThresholds, CacheSweepPoint, ConflictProfile, Counter,
    DiagnosticBundle, DriftEpisode, Gauge, Histogram, HistogramSnapshot, Journal, JournalConfig,
    JournalEvent, JournalReadout, ManualTime, MetricsRegistry, MetricsSnapshot, Observatory,
    ObservatoryConfig, ObservatorySample, PlannerProfile, RecoverySummary, SlowEntry, SpanEvent,
    SpanKind, Telemetry, TelemetryClock, Tracer, TrackHeat, WindowStats, JOURNAL_SCHEMA,
    JOURNAL_SCHEMA_MIN,
};
pub use gemstone_temporal::TxnTime;
pub use gemstone_txn::{ConflictReport, ConflictStats};

use std::sync::Arc;

/// The GemStone system facade (the paper's Executor + Object Manager).
#[derive(Clone)]
pub struct GemStone {
    db: Arc<Database>,
}

impl GemStone {
    /// A fresh database on a simulated disk with default sizing.
    pub fn in_memory() -> GemStone {
        GemStone { db: Database::in_memory() }
    }

    /// A fresh database with explicit storage sizing.
    pub fn create(cfg: StoreConfig) -> GemResult<GemStone> {
        Ok(GemStone { db: Database::create(cfg)? })
    }

    /// A fresh *persistent* database in a real file at `path`: committed
    /// state survives the process and reopens with
    /// [`GemStone::open_file`].
    pub fn create_file(path: impl AsRef<std::path::Path>, cfg: StoreConfig) -> GemResult<GemStone> {
        Ok(GemStone { db: Database::create_file(path, cfg)? })
    }

    /// Recover a persistent database from the file at `path`.
    pub fn open_file(
        path: impl AsRef<std::path::Path>,
        cache_tracks: usize,
    ) -> GemResult<GemStone> {
        Ok(GemStone { db: Database::open_file(path, cache_tracks)? })
    }

    /// A fresh database over an explicit telemetry bundle (tests inject a
    /// manual clock for deterministic span durations).
    pub fn create_with(cfg: StoreConfig, telemetry: Telemetry) -> GemResult<GemStone> {
        Ok(GemStone { db: Database::create_with(cfg, telemetry)? })
    }

    /// Recover from a disk (crash recovery / restart).
    pub fn open(disk: DiskArray, cache_tracks: usize) -> GemResult<GemStone> {
        Ok(GemStone { db: Database::open(disk, cache_tracks)? })
    }

    /// [`GemStone::open`] over an explicit telemetry bundle (e.g. with the
    /// flight recorder already started, so the recovery pass is recorded).
    pub fn open_with(
        disk: DiskArray,
        cache_tracks: usize,
        telemetry: Telemetry,
    ) -> GemResult<GemStone> {
        Ok(GemStone { db: Database::open_with(disk, cache_tracks, telemetry)? })
    }

    /// The database-wide telemetry bundle.
    pub fn telemetry(&self) -> &Telemetry {
        self.db.telemetry()
    }

    /// Log a user in.
    pub fn login(&self, user: &str) -> GemResult<Session> {
        self.db.login(user)
    }

    /// The shared database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Register a user.
    pub fn create_user(&self, name: &str) {
        self.db.create_user(name);
    }

    /// Shut down, returning the raw disk (all sessions must be dropped).
    pub fn shutdown(self) -> GemResult<DiskArray> {
        self.db.into_disk()
    }
}
