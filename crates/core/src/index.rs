//! The Directory Manager's registry: which collections are indexed on which
//! element paths, with incremental maintenance at commit.
//!
//! §6: "One headache has been that hints given in OPAL for structuring
//! directories must be translated for use by the Object Manager. Another
//! problem is using a nested element as a discriminator. Since that element
//! may be different in different states of the database, its object may need
//! to appear along two branches of the directory." Both are handled here:
//! the OPAL hint is `System createIndexOn: coll path: #salary` (or an array
//! of symbols for nested paths), and nested discriminators register every
//! object along the path so a change anywhere re-keys the affected member.

use crate::meta::DirSpecRecord;
use gemstone_calculus::{path_key, IndexCatalog, KeySketch, StatsCatalog};
use gemstone_object::{ElemName, GemResult, Goop, OopKind, PRef, SymbolId, SymbolTable};
use gemstone_storage::{DirKey, Directory, DirectorySpec, ObjectDelta, PermanentStore};

use gemstone_temporal::TxnTime;
use std::collections::HashMap;

/// One registered directory.
pub struct RegEntry {
    pub collection: Goop,
    pub path: Vec<SymbolId>,
    pub directory: Directory,
    pub created_at: TxnTime,
}

/// One refreshed key sketch, reported so the commit path can journal a
/// `StatsUpdate` event per sketch (replay then moves the same counters).
pub struct StatsRefresh {
    pub set: u64,
    pub cardinality: u64,
    pub path: String,
    pub sketch: KeySketch,
}

/// The registry of all directories plus reverse maps for maintenance.
#[derive(Default)]
pub struct DirRegistry {
    entries: Vec<RegEntry>,
    by_coll: HashMap<Goop, Vec<usize>>,
    /// member-or-intermediate object → (directory, member) pairs whose key
    /// depends on it.
    by_object: HashMap<Goop, Vec<(usize, Goop)>>,
    catalog: IndexCatalog,
}

/// Compute a member's directory key by following `path` through the
/// permanent store's *current* state.
fn key_of(
    store: &PermanentStore,
    symbols: &SymbolTable,
    member: Goop,
    path: &[SymbolId],
) -> GemResult<(Option<DirKey>, Vec<Goop>)> {
    let mut touched = vec![member];
    let mut cur = PRef::goop(member);
    for (i, step) in path.iter().enumerate() {
        let Some(g) = cur.as_goop() else {
            return Ok((None, touched)); // path broke: not indexed under any key
        };
        if i > 0 {
            touched.push(g);
        }
        if !store.contains(g) {
            return Ok((None, touched));
        }
        cur = match store.get(g)?.elem_current(ElemName::Sym(*step)) {
            Some(v) => v,
            None => return Ok((None, touched)),
        };
    }
    Ok((pref_key(store, symbols, cur)?, touched))
}

/// The directory key of a value.
fn pref_key(store: &PermanentStore, symbols: &SymbolTable, v: PRef) -> GemResult<Option<DirKey>> {
    Ok(match v.kind() {
        OopKind::Int(i) => Some(DirKey::num(i as f64)),
        OopKind::Float(f) => Some(DirKey::num(f)),
        OopKind::Sym(s) => Some(DirKey::text(symbols.name(s))),
        OopKind::Char(c) => Some(DirKey::Text(c.to_string().into_bytes())),
        OopKind::True | OopKind::False => Some(DirKey::Ref(v.bits())),
        OopKind::Nil => None,
        OopKind::Heap(g) => {
            let goop = Goop(g);
            if store.contains(goop) {
                match store.get(goop)?.bytes_current() {
                    Some(b) => Some(DirKey::Text(b.to_vec())),
                    None => Some(DirKey::Ref(g)),
                }
            } else {
                Some(DirKey::Ref(g))
            }
        }
        _ => None,
    })
}

impl DirRegistry {
    /// Planner catalog of indexed paths.
    pub fn catalog(&self) -> &IndexCatalog {
        &self.catalog
    }

    /// Number of registered directories (DBA introspection).
    pub fn count(&self) -> usize {
        self.entries.len()
    }

    /// Create a directory over a committed collection, keyed by the current
    /// state at `now`. As-of lookups are served for times ≥ `now`.
    pub fn create_index(
        &mut self,
        store: &PermanentStore,
        symbols: &SymbolTable,
        collection: Goop,
        path: Vec<SymbolId>,
        now: TxnTime,
    ) -> GemResult<usize> {
        if path.is_empty() {
            return Err(gemstone_object::GemError::RuntimeError(
                "index path must not be empty".into(),
            ));
        }
        let spec = DirectorySpec {
            class: store.get(collection)?.class,
            path: path.iter().map(|s| ElemName::Sym(*s)).collect(),
        };
        let idx = self.entries.len();
        let mut directory = Directory::new(spec);
        let members: Vec<Goop> =
            store.get(collection)?.current_elements().filter_map(|(_, v)| v.as_goop()).collect();
        for member in members {
            let (key, touched) = key_of(store, symbols, member, &path)?;
            directory.update(member, key, now);
            for t in touched {
                self.by_object.entry(t).or_default().push((idx, member));
            }
        }
        self.by_coll.entry(collection).or_default().push(idx);
        self.catalog.add_path(path.iter().map(|s| ElemName::Sym(*s)).collect());
        self.entries.push(RegEntry { collection, path, directory, created_at: now });
        Ok(idx)
    }

    /// Serve an equality lookup, if a directory covers (collection, path)
    /// and can answer at the requested time.
    pub fn lookup(
        &self,
        collection: Goop,
        path: &[ElemName],
        key: &DirKey,
        at: Option<TxnTime>,
    ) -> Option<Vec<Goop>> {
        let idxs = self.by_coll.get(&collection)?;
        for &i in idxs {
            let e = &self.entries[i];
            let epath: Vec<ElemName> = e.path.iter().map(|s| ElemName::Sym(*s)).collect();
            if epath == path {
                return match at {
                    None => Some(e.directory.lookup_current(key)),
                    Some(t) if t >= e.created_at => Some(e.directory.lookup_as_of(key, t)),
                    Some(_) => None, // predates the directory: caller scans
                };
            }
        }
        None
    }

    /// Serve a range lookup over (collection, path), if a directory covers
    /// it and can answer at the requested time.
    pub fn range(
        &self,
        collection: Goop,
        path: &[ElemName],
        lo: Option<(&DirKey, bool)>,
        hi: Option<(&DirKey, bool)>,
        at: Option<TxnTime>,
    ) -> Option<Vec<Goop>> {
        use std::ops::Bound;
        let idxs = self.by_coll.get(&collection)?;
        for &i in idxs {
            let e = &self.entries[i];
            let epath: Vec<ElemName> = e.path.iter().map(|s| ElemName::Sym(*s)).collect();
            if epath == path {
                let lo_b = match lo {
                    None => Bound::Unbounded,
                    Some((k, true)) => Bound::Included(k),
                    Some((k, false)) => Bound::Excluded(k),
                };
                let hi_b = match hi {
                    None => Bound::Unbounded,
                    Some((k, true)) => Bound::Included(k),
                    Some((k, false)) => Bound::Excluded(k),
                };
                return match at {
                    None => Some(e.directory.range_current(lo_b, hi_b)),
                    Some(t) if t >= e.created_at => Some(e.directory.range_as_of(lo_b, hi_b, t)),
                    Some(_) => None,
                };
            }
        }
        None
    }

    /// Incremental maintenance after a committed batch (the Linker "calling
    /// for restructuring of directories as needed", §6).
    pub fn on_commit(
        &mut self,
        store: &PermanentStore,
        symbols: &SymbolTable,
        deltas: &[ObjectDelta],
        time: TxnTime,
    ) -> GemResult<()> {
        for delta in deltas {
            // Membership changes in indexed collections.
            if let Some(dir_idxs) = self.by_coll.get(&delta.goop).cloned() {
                for (name, newv) in &delta.elem_writes {
                    for &i in &dir_idxs {
                        let path = self.entries[i].path.clone();
                        // The value this element held just before the commit.
                        let oldv = store
                            .get(delta.goop)?
                            .elements
                            .get(name)
                            .and_then(|h| h.as_of(time.pred()))
                            .copied();
                        if let Some(old) = oldv.and_then(|v| v.as_goop()) {
                            self.entries[i].directory.update(old, None, time);
                        }
                        if let Some(new) = newv.as_goop() {
                            let (key, touched) = key_of(store, symbols, new, &path)?;
                            self.entries[i].directory.update(new, key, time);
                            for t in touched {
                                let deps = self.by_object.entry(t).or_default();
                                if !deps.contains(&(i, new)) {
                                    deps.push((i, new));
                                }
                            }
                        }
                    }
                }
            }
            // Discriminator changes along registered paths.
            if let Some(deps) = self.by_object.get(&delta.goop).cloned() {
                for (i, member) in deps {
                    let path = self.entries[i].path.clone();
                    let (key, touched) = key_of(store, symbols, member, &path)?;
                    self.entries[i].directory.update(member, key, time);
                    for t in touched {
                        let deps = self.by_object.entry(t).or_default();
                        if !deps.contains(&(i, member)) {
                            deps.push((i, member));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuild the planner statistics of the directories at `idxs`: set
    /// cardinality from the collection's current member count, one fresh
    /// key sketch per directory. Returns one record per refreshed sketch so
    /// the caller can journal `StatsUpdate` events.
    fn refresh_entries(
        &self,
        store: &PermanentStore,
        idxs: &[usize],
        stats: &mut StatsCatalog,
        now: u64,
    ) -> GemResult<Vec<StatsRefresh>> {
        let mut out = Vec::new();
        for &i in idxs {
            let e = &self.entries[i];
            if !store.contains(e.collection) {
                continue;
            }
            let cardinality = store.get(e.collection)?.current_elements().count() as u64;
            let epath: Vec<ElemName> = e.path.iter().map(|s| ElemName::Sym(*s)).collect();
            let path = path_key(&epath);
            let sketch = KeySketch::from_keys(&e.directory.current_num_keys());
            let set = stats.entry(e.collection.0);
            set.cardinality = cardinality;
            set.updated_at = now;
            set.stale = false;
            set.sketches.insert(path.clone(), sketch.clone());
            out.push(StatsRefresh { set: e.collection.0, cardinality, path, sketch });
        }
        Ok(out)
    }

    /// Refresh statistics for every set a committed batch touched — the
    /// incremental maintenance half of the statistics layer, called under
    /// the commit choke point right after [`DirRegistry::on_commit`].
    pub fn refresh_stats_for_deltas(
        &self,
        store: &PermanentStore,
        deltas: &[ObjectDelta],
        stats: &mut StatsCatalog,
        now: u64,
    ) -> GemResult<Vec<StatsRefresh>> {
        let mut idxs: Vec<usize> = Vec::new();
        for delta in deltas {
            if let Some(ds) = self.by_coll.get(&delta.goop) {
                idxs.extend(ds);
            }
            if let Some(deps) = self.by_object.get(&delta.goop) {
                idxs.extend(deps.iter().map(|(i, _)| i));
            }
        }
        idxs.sort_unstable();
        idxs.dedup();
        self.refresh_entries(store, &idxs, stats, now)
    }

    /// Refresh one set's statistics from its directories — the drift
    /// response: a stale-marked set is re-read just before the next plan.
    pub fn refresh_stats_for_set(
        &self,
        store: &PermanentStore,
        collection: Goop,
        stats: &mut StatsCatalog,
        now: u64,
    ) -> GemResult<Vec<StatsRefresh>> {
        let idxs = self.by_coll.get(&collection).cloned().unwrap_or_default();
        self.refresh_entries(store, &idxs, stats, now)
    }

    /// Refresh every registered directory's statistics (initial training
    /// when statistics collection is switched on).
    pub fn refresh_stats_all(
        &self,
        store: &PermanentStore,
        stats: &mut StatsCatalog,
        now: u64,
    ) -> GemResult<Vec<StatsRefresh>> {
        let idxs: Vec<usize> = (0..self.entries.len()).collect();
        self.refresh_entries(store, &idxs, stats, now)
    }

    /// Persistable specifications.
    pub fn spec_records(&self) -> Vec<DirSpecRecord> {
        self.entries
            .iter()
            .map(|e| DirSpecRecord {
                collection: e.collection.0,
                path: e.path.clone(),
                created_at: e.created_at.ticks(),
            })
            .collect()
    }

    /// Rebuild from persisted specs at recovery. Directories are repopulated
    /// from the current state; `created_at` advances to `now` because the
    /// historical key changes between the original creation and the crash
    /// are not replayed (as-of lookups older than recovery fall back to
    /// scans).
    pub fn rebuild(
        store: &PermanentStore,
        symbols: &SymbolTable,
        specs: &[DirSpecRecord],
        now: TxnTime,
    ) -> GemResult<DirRegistry> {
        let mut reg = DirRegistry::default();
        for s in specs {
            let collection = Goop(s.collection);
            if store.contains(collection) {
                reg.create_index(store, symbols, collection, s.path.clone(), now)?;
            }
        }
        Ok(reg)
    }
}
