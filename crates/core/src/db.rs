//! The shared database: permanent store, schema, Transaction Manager.
//!
//! §6: "Sessions have shared access to the permanent database through
//! transactions." One [`Database`] is shared (via `Arc`) by any number of
//! [`Session`](crate::Session)s. Since PR 6 the old single `Mutex<DbInner>`
//! is shattered into independently-locked pieces so sessions read without
//! contending:
//!
//! - the [`PermanentStore`] is internally concurrent (sharded object table,
//!   sharded track cache, single writer lock) and needs no outer lock;
//! - the [`CommittedView`] — the committed time plus the committed globals —
//!   is an immutable `Arc` snapshot swapped atomically at commit-publish.
//!   Sessions clone the Arc at transaction begin and read it lock-free for
//!   the rest of the transaction;
//! - schema (symbols, classes, directories, users, method sources) sits
//!   behind a `RwLock` that statements only read;
//! - installed methods have their own `RwLock` (appends are rare, lookups
//!   constant);
//! - the `commit_lock` serializes the commit pipeline: validate → stage
//!   metadata → safe-write → publish. Read-only transactions never take it.
//!
//! Lock hierarchy (outermost first): `commit_lock` → txn-manager inner →
//! `effects` → `schema` → store writer → store internals → cache shard →
//! disk. The effect-summary cache sits above `schema` because the analyzer
//! resolves selectors and method tables (schema/methods read locks) while
//! holding the cache; invalidation sites must therefore drop their schema
//! guard before touching the cache. See DESIGN.md §9.

use crate::auth::AuthTable;
use crate::index::{DirRegistry, StatsRefresh};
use crate::meta::{self, MethodSource};
use crate::session::Session;
use gemstone_calculus::StatsCatalog;
use gemstone_object::{
    ClassId, ClassTable, GemError, GemResult, Kernel, PRef, SymbolId, SymbolTable,
};
use gemstone_opal::{install_kernel_methods, CompiledMethod, EffectCache};
use gemstone_storage::{DiskArray, PermanentStore, StoreConfig};
use gemstone_telemetry::{
    Anomaly, DiagnosticBundle, Journal, JournalConfig, JournalEvent, MetricsBatch, MetricsSnapshot,
    ObservatoryConfig, Telemetry,
};
use gemstone_temporal::TxnTime;
use gemstone_txn::TransactionManager;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Mutable schema state: everything a statement needs read access to and
/// DDL needs write access to. Statements take the read lock; only schema
/// changes (subclassing, method installs, index creation, user admin) take
/// the write lock.
pub(crate) struct Schema {
    pub symbols: SymbolTable,
    pub classes: ClassTable,
    pub kernel: Kernel,
    pub block_class: ClassId,
    pub method_sources: Vec<MethodSource>,
    pub dirs: DirRegistry,
    pub auth: AuthTable,
    /// The planner's statistics catalog: per-set cardinality, per-directory
    /// key sketches, per-predicate observed selectivities. Maintained under
    /// the commit choke point, persisted in [`meta::META_STATS`].
    pub stats: StatsCatalog,
    /// Schema (classes/symbols/methods/globals/directories) changed since
    /// the last commit and must be flushed with it.
    pub schema_dirty: bool,
    /// The statistics catalog changed since the last metadata flush.
    /// Tracked separately from `schema_dirty` so routine stats refreshes
    /// don't masquerade as DDL.
    pub stats_dirty: bool,
}

impl Schema {
    /// Stage all metadata blobs in the store (called under the commit lock
    /// just before a commit when the schema changed, so the metadata lands
    /// in the same safe-write group as the data).
    pub fn flush_meta(&mut self, store: &PermanentStore, globals: &HashMap<SymbolId, PRef>) {
        store.set_meta(meta::META_SYMBOLS, meta::put_symbols(&self.symbols));
        store.set_meta(meta::META_CLASSES, meta::put_classes(&self.classes));
        store.set_meta(meta::META_GLOBALS, meta::put_globals(globals));
        store.set_meta(meta::META_METHODS, meta::put_method_sources(&self.method_sources));
        store.set_meta(meta::META_DIRS, meta::put_dir_specs(&self.dirs.spec_records()));
        store.set_meta(meta::META_STATS, meta::put_stats(&self.stats));
        self.schema_dirty = false;
        self.stats_dirty = false;
    }
}

/// An immutable snapshot of committed state, published atomically by each
/// committing transaction. Sessions hold an `Arc<CommittedView>` for the
/// duration of a transaction and read it without any lock; the store's
/// temporal histories answer reads *as of* `time`, so the pair
/// (view, `elements_at(view.time)`) is a consistent snapshot even while
/// later commits land.
pub(crate) struct CommittedView {
    /// The commit time of the newest transaction visible in this view.
    pub time: TxnTime,
    /// Committed global bindings. Shared immutably: a commit that changes
    /// globals builds a new map and publishes a new Arc.
    pub globals: Arc<HashMap<SymbolId, PRef>>,
}

/// The GemStone database: create one, share it, log sessions in.
pub struct Database {
    pub(crate) store: PermanentStore,
    pub(crate) schema: RwLock<Schema>,
    /// Installed compiled methods. `MethodId` indexes this vector; ids with
    /// the high bit set are session-local doIts and never appear here.
    pub(crate) methods: RwLock<Vec<Arc<CompiledMethod>>>,
    pub(crate) committed: RwLock<Arc<CommittedView>>,
    /// Serializes the commit pipeline (validate → stage → write → publish).
    /// Never taken by readers or read-only commits.
    pub(crate) commit_lock: Mutex<()>,
    /// Effect summaries for installed methods, shared by every session and
    /// invalidated wholesale whenever a method is installed or rebound.
    /// Sits above `schema` in the lock hierarchy (the analyzer reads the
    /// schema while holding it).
    pub(crate) effects: Mutex<EffectCache>,
    pub(crate) txns: TransactionManager,
    pub(crate) telemetry: Telemetry,
    /// Master switch for the statistics observatory: when off (the
    /// default), planning, commits, and the journal behave exactly as
    /// before — the overhead gate relies on that.
    pub(crate) stats_on: AtomicBool,
    /// Whether commits passively refresh statistics for the sets they
    /// touch. Only consulted while `stats_on`; benchmarks freeze it to
    /// seed estimate drift (train, shift the data, watch the planner miss).
    pub(crate) stats_maintenance: AtomicBool,
}

/// Bind every layer's instrument handles into the registry under the
/// canonical names (see DESIGN.md §Telemetry). The layers keep owning
/// their cells; the registry shares the same atomics, which is what makes
/// the pre-existing stats accessors thin views over the registry. All
/// bindings are staged in a [`MetricsBatch`] and registered atomically so a
/// concurrent `snapshot()` never observes a half-bound layer.
fn bind_layer_metrics(telemetry: &Telemetry, store: &PermanentStore, txns: &TransactionManager) {
    let r = &telemetry.registry;
    let d = store.disk_counters();
    let c = store.cache_counters();
    let s = store.counters();
    let t = txns.counters();
    let mut batch = MetricsBatch::new()
        .counter("storage.disk.reads", &d.track_reads)
        .counter("storage.disk.writes", &d.track_writes)
        .counter("storage.disk.bytes_written", &d.bytes_written)
        .counter("storage.disk.failed_reads", &d.failed_reads)
        .counter("storage.disk.failed_writes", &d.failed_writes)
        .counter("storage.disk.fsyncs", &d.fsyncs)
        .counter("storage.cache.hits", &c.hits)
        .counter("storage.cache.misses", &c.misses)
        .counter("storage.cache.evictions", &c.evictions)
        .counter("storage.cache.fills_read", &c.fills_read)
        .counter("storage.cache.fills_commit", &c.fills_commit)
        .counter("storage.store.commits", &s.commits)
        .counter("storage.store.object_faults", &s.object_faults)
        .counter("storage.store.objects_written", &s.objects_written)
        .counter("txn.begins", &t.begins)
        .counter("txn.commits", &t.commits)
        .counter("txn.aborts", &t.aborts)
        .counter("txn.conflicts", &t.conflicts)
        .histogram("storage.commit.group_tracks", &store.group_size_histogram())
        .histogram("storage.disk.fsync_us", &d.fsync_us)
        .histogram("txn.validation_wait_us", &txns.validation_wait_histogram());
    for (i, (hits, misses)) in store.cache_shard_counters().iter().enumerate() {
        batch = batch
            .counter(&format!("storage.cache.shard{i}.hits"), hits)
            .counter(&format!("storage.cache.shard{i}.misses"), misses);
    }
    r.register_batch(batch);
    let rep = store.recovery_report();
    r.gauge("storage.recovery.roots_considered").set(rep.roots_considered as i64);
    r.gauge("storage.recovery.roots_valid").set(rep.roots_valid as i64);
    r.gauge("storage.recovery.roots_torn").set(rep.roots_torn as i64);
    r.gauge("storage.recovery.epoch").set(rep.recovered_epoch as i64);
    r.gauge("storage.recovery.tracks_salvaged").set(rep.tracks_salvaged as i64);
    r.gauge("storage.recovery.tracks_discarded").set(rep.tracks_discarded as i64);
    r.gauge("storage.recovery.reopen_reads").set(rep.reopen_reads as i64);
    // Pre-create the session-level instruments (sessions bind the same
    // cells at login), so a journal baseline emitted at construction time
    // covers the full canonical name set and replay reproduces the live
    // snapshot name-for-name.
    for name in [
        "session.statements",
        "opal.interp.dispatches",
        "opal.interp.sends",
        "opal.verify.checks",
        "opal.verify.rejects",
        "opal.effects.computed",
        "opal.effects.pure",
        "opal.effects.read_only",
        "opal.effects.writes_local",
        "opal.effects.writes_global",
        "opal.effects.unknown",
        "opal.effects.stmts_classified",
        "opal.effects.stmts_static_ro",
        "opal.effects.static_ro_commits",
        "opal.effects.invalidations",
        "calculus.rows_scanned",
        "calculus.index_rows",
        "calculus.index_hits",
        "calculus.index_fallbacks",
        "calculus.select_in",
        "calculus.select_out",
        "calculus.nest_loops",
        "calculus.hash_builds",
        "calculus.hash_probes",
        "calculus.hash_matches",
        "calculus.rows_out",
        "calculus.stats.updates",
        "calculus.plan.choices",
        "calculus.plan.cost_based",
        "calculus.plan.replans",
        "calculus.plan.drift",
    ] {
        let _ = r.counter(name);
    }
    let _ = r.histogram("session.statement_ns");
    // Commit-timeline phase histograms, recorded by sessions per writing
    // commit (pre-created here for baseline name parity, like the session
    // counters above).
    for name in [
        "commit.phase.snapshot_age_us",
        "commit.phase.validation_us",
        "commit.phase.safe_write_us",
        "commit.phase.fsync_us",
        "commit.phase.publish_us",
    ] {
        let _ = r.histogram(name);
    }
}

fn kernel_from(classes: &ClassTable, symbols: &SymbolTable) -> GemResult<Kernel> {
    let class = |name: &str| -> GemResult<ClassId> {
        symbols
            .lookup(name)
            .and_then(|s| classes.by_name(s))
            .ok_or_else(|| GemError::Corrupt(format!("kernel class {name} missing")))
    };
    Ok(Kernel {
        object: class("Object")?,
        undefined_object: class("UndefinedObject")?,
        boolean: class("Boolean")?,
        true_class: class("True")?,
        false_class: class("False")?,
        magnitude: class("Magnitude")?,
        number: class("Number")?,
        small_integer: class("SmallInteger")?,
        float: class("Float")?,
        character: class("Character")?,
        collection: class("Collection")?,
        string: class("String")?,
        symbol: class("Symbol")?,
        array: class("Array")?,
        ordered_collection: class("OrderedCollection")?,
        set: class("Set")?,
        bag: class("Bag")?,
        dictionary: class("Dictionary")?,
        association: class("Association")?,
        metaclass: class("Metaclass")?,
        system_class: class("System")?,
    })
}

impl Database {
    /// The permanent store (benchmark/diagnostic knobs: cache bounds,
    /// simulated read latency).
    pub fn store(&self) -> &PermanentStore {
        &self.store
    }

    /// Format a fresh database on a simulated disk.
    pub fn create(cfg: StoreConfig) -> GemResult<Arc<Database>> {
        Database::create_with(cfg, Telemetry::new())
    }

    /// [`Database::create`] over an explicit telemetry bundle (tests inject
    /// a manual clock here for deterministic span durations).
    pub fn create_with(cfg: StoreConfig, telemetry: Telemetry) -> GemResult<Arc<Database>> {
        Database::create_with_store(PermanentStore::create(cfg)?, telemetry)
    }

    /// Format a fresh *persistent* database in a real file at `path` (the
    /// file backend: `pwrite` + group-commit `fdatasync`, so committed
    /// state survives the process). Replica `i` of a replicated config
    /// lives beside the file at `<path>.r{i}`.
    pub fn create_file(
        path: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
    ) -> GemResult<Arc<Database>> {
        Database::create_file_with(path, cfg, Telemetry::new())
    }

    /// [`Database::create_file`] over an explicit telemetry bundle.
    pub fn create_file_with(
        path: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
        telemetry: Telemetry,
    ) -> GemResult<Arc<Database>> {
        Database::create_with_store(PermanentStore::create_file(path, cfg)?, telemetry)
    }

    fn create_with_store(
        mut store: PermanentStore,
        telemetry: Telemetry,
    ) -> GemResult<Arc<Database>> {
        store.attach_tracer(telemetry.tracer.clone());
        let mut symbols = SymbolTable::new();
        let (mut classes, kernel) = ClassTable::bootstrap(&mut symbols);
        let block_class =
            classes.subclass(symbols.intern("BlockClosure"), kernel.object, vec![])?;
        let schema = Schema {
            symbols,
            classes,
            kernel,
            block_class,
            method_sources: Vec::new(),
            dirs: DirRegistry::default(),
            auth: AuthTable::new(),
            stats: StatsCatalog::default(),
            schema_dirty: true,
            stats_dirty: false,
        };
        let mut txns = TransactionManager::new(TxnTime::EPOCH);
        bind_layer_metrics(&telemetry, &store, &txns);
        // If the flight recorder was started before creation, baseline the
        // registry *before* attaching the emission sites: the volume
        // formatting above already moved counters, and the baseline events
        // carry those values exactly once.
        if telemetry.journal.enabled() {
            telemetry.journal.emit_baseline(&telemetry.registry.snapshot());
            telemetry
                .journal
                .emit(&JournalEvent::CacheConfigured { tracks: store.cache_capacity() as u64 });
        }
        store.attach_journal(telemetry.journal.clone());
        txns.attach_journal(telemetry.journal.clone());
        let db = Arc::new(Database {
            store,
            schema: RwLock::new(schema),
            methods: RwLock::new(Vec::new()),
            committed: RwLock::new(Arc::new(CommittedView {
                time: TxnTime::EPOCH,
                globals: Arc::new(HashMap::new()),
            })),
            commit_lock: Mutex::new(()),
            effects: Mutex::new(EffectCache::new()),
            txns,
            telemetry,
            stats_on: AtomicBool::new(false),
            stats_maintenance: AtomicBool::new(true),
        });
        db.install_track_resolver();
        // Kernel methods install through a bootstrap session.
        let mut boot = Session::internal_login(db.clone());
        install_kernel_methods(&mut boot)?;
        // Persist the initial schema.
        {
            let _commit = db.commit_lock.lock();
            let globals = db.committed.read().globals.clone();
            db.schema.write().flush_meta(&db.store, &globals);
            let t = db.txns.now();
            db.store.commit_batch(t, &[])?;
            *db.committed.write() = Arc::new(CommittedView { time: t, globals });
        }
        Ok(db)
    }

    /// An in-memory database with default sizing (the common test entry).
    pub fn in_memory() -> Arc<Database> {
        Database::create(StoreConfig::default()).expect("in-memory database")
    }

    /// Recover a database from a disk: newest valid root wins, schema is
    /// reloaded, user methods are recompiled from source, directories are
    /// rebuilt.
    pub fn open(disk: DiskArray, cache_tracks: usize) -> GemResult<Arc<Database>> {
        Database::open_with(disk, cache_tracks, Telemetry::new())
    }

    /// [`Database::open`] over an explicit telemetry bundle.
    pub fn open_with(
        disk: DiskArray,
        cache_tracks: usize,
        telemetry: Telemetry,
    ) -> GemResult<Arc<Database>> {
        Database::open_with_store(PermanentStore::open(disk, cache_tracks)?, telemetry)
    }

    /// Recover a *persistent* database from the file at `path` (created by
    /// [`Database::create_file`]): newest valid root wins, exactly as with
    /// [`Database::open`], but read from real storage.
    pub fn open_file(
        path: impl AsRef<std::path::Path>,
        cache_tracks: usize,
    ) -> GemResult<Arc<Database>> {
        Database::open_file_with(path, cache_tracks, Telemetry::new())
    }

    /// [`Database::open_file`] over an explicit telemetry bundle.
    pub fn open_file_with(
        path: impl AsRef<std::path::Path>,
        cache_tracks: usize,
        telemetry: Telemetry,
    ) -> GemResult<Arc<Database>> {
        Database::open_with_store(PermanentStore::open_file(path, 1, cache_tracks)?, telemetry)
    }

    fn open_with_store(
        mut store: PermanentStore,
        telemetry: Telemetry,
    ) -> GemResult<Arc<Database>> {
        store.attach_tracer(telemetry.tracer.clone());
        let symbols = match store.get_meta(meta::META_SYMBOLS)? {
            Some(b) => meta::get_symbols(&b)?,
            None => return Err(GemError::Corrupt("no symbol metadata".into())),
        };
        let classes = match store.get_meta(meta::META_CLASSES)? {
            Some(b) => meta::get_classes(&b)?,
            None => return Err(GemError::Corrupt("no class metadata".into())),
        };
        let globals = match store.get_meta(meta::META_GLOBALS)? {
            Some(b) => meta::get_globals(&b)?,
            None => HashMap::new(),
        };
        let method_sources = match store.get_meta(meta::META_METHODS)? {
            Some(b) => meta::get_method_sources(&b)?,
            None => Vec::new(),
        };
        let dir_specs = match store.get_meta(meta::META_DIRS)? {
            Some(b) => meta::get_dir_specs(&b)?,
            None => Vec::new(),
        };
        let stats = match store.get_meta(meta::META_STATS)? {
            Some(b) => meta::get_stats(&b)?,
            None => StatsCatalog::default(),
        };
        let kernel = kernel_from(&classes, &symbols)?;
        let block_class = symbols
            .lookup("BlockClosure")
            .and_then(|s| classes.by_name(s))
            .ok_or_else(|| GemError::Corrupt("BlockClosure class missing".into()))?;
        let last = store.root().commit_time;
        let dirs = DirRegistry::rebuild(&store, &symbols, &dir_specs, last)?;
        let schema = Schema {
            symbols,
            classes,
            kernel,
            block_class,
            method_sources: method_sources.clone(),
            dirs,
            auth: AuthTable::new(),
            stats,
            schema_dirty: false,
            stats_dirty: false,
        };
        let mut txns = TransactionManager::new(last);
        bind_layer_metrics(&telemetry, &store, &txns);
        if telemetry.journal.enabled() {
            let rep = store.recovery_report();
            telemetry.journal.emit(&JournalEvent::Recovery {
                roots_considered: rep.roots_considered as u64,
                roots_valid: rep.roots_valid as u64,
                roots_torn: rep.roots_torn as u64,
                epoch: rep.recovered_epoch,
                tracks_salvaged: rep.tracks_salvaged as u64,
                tracks_discarded: rep.tracks_discarded as u64,
                reopen_reads: rep.reopen_reads,
            });
            telemetry.journal.emit_baseline(&telemetry.registry.snapshot());
            telemetry
                .journal
                .emit(&JournalEvent::CacheConfigured { tracks: store.cache_capacity() as u64 });
        }
        store.attach_journal(telemetry.journal.clone());
        txns.attach_journal(telemetry.journal.clone());
        let db = Arc::new(Database {
            store,
            schema: RwLock::new(schema),
            methods: RwLock::new(Vec::new()),
            committed: RwLock::new(Arc::new(CommittedView {
                time: last,
                globals: Arc::new(globals),
            })),
            commit_lock: Mutex::new(()),
            effects: Mutex::new(EffectCache::new()),
            txns,
            telemetry,
            stats_on: AtomicBool::new(false),
            stats_maintenance: AtomicBool::new(true),
        });
        db.install_track_resolver();
        // Rebuild method dictionaries: kernel first, then user sources in
        // their original order.
        let mut boot = Session::internal_login(db.clone());
        install_kernel_methods(&mut boot)?;
        for ms in method_sources {
            boot.recompile_method(&ms)?;
        }
        Ok(db)
    }

    /// Teach the Transaction Manager to map objects onto their home
    /// tracks for conflict attribution. The closure holds a `Weak` so the
    /// resolver never keeps the database alive ([`Database::into_disk`]
    /// relies on being the last strong reference); resolver reads are a
    /// lock-free `OnceLock` load plus the locations read lock, which the
    /// DESIGN.md §9 hierarchy permits under the manager's inner lock.
    fn install_track_resolver(self: &Arc<Database>) {
        let weak = Arc::downgrade(self);
        self.txns.set_track_resolver(Arc::new(move |goop| {
            weak.upgrade().and_then(|db| db.store.home_track(goop))
        }));
    }

    /// The current committed snapshot. Sessions clone this Arc at
    /// transaction begin and read against it lock-free.
    pub(crate) fn committed_view(&self) -> Arc<CommittedView> {
        self.committed.read().clone()
    }

    /// Log a user in, creating a session with its own workspace.
    pub fn login(self: &Arc<Database>, user: &str) -> GemResult<Session> {
        if !self.schema.read().auth.user_exists(user) {
            return Err(GemError::AuthorizationDenied {
                segment: 0,
                detail: format!("no such user {user}"),
            });
        }
        Ok(Session::login(self.clone(), user))
    }

    /// Administrator session.
    pub fn login_dba(self: &Arc<Database>) -> Session {
        Session::internal_login(self.clone())
    }

    /// Register a user (DBA operation).
    pub fn create_user(&self, name: &str) {
        let mut schema = self.schema.write();
        schema.auth.create_user(name);
        schema.schema_dirty = true;
    }

    /// Tear down to the raw disk for crash/recovery tests. Fails if other
    /// sessions still share the database.
    pub fn into_disk(self: Arc<Database>) -> GemResult<DiskArray> {
        match Arc::try_unwrap(self) {
            Ok(db) => Ok(db.store.into_disk()),
            Err(_) => Err(GemError::RuntimeError("database still shared".into())),
        }
    }

    /// What the reopening that produced this database saw and decided:
    /// roots probed/valid/torn, the winning epoch, tracks salvaged and
    /// discarded, physical reads. All-default for a freshly created
    /// database, which performed no recovery.
    pub fn recovery_report(&self) -> gemstone_storage::RecoveryReport {
        self.store.recovery_report()
    }

    /// The database-wide telemetry bundle: metrics registry, span tracer,
    /// clock. Clones share all state with the database's own handles.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A point-in-time copy of every registered metric. Diffable:
    /// `after.diff(&before)` isolates one workload's deltas.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.registry.snapshot()
    }

    /// Start the flight recorder: events stream to segment files in
    /// `cfg.dir`. Every layer already holds a handle on the shared
    /// recorder, so this needs no re-attachment — it flips one shared
    /// flag and writes the baseline (the absolute registry state, so
    /// replaying the journal reproduces cumulative totals exactly).
    /// Start it while the database is otherwise idle: events from a
    /// session racing the baseline would replay twice.
    pub fn start_journal(&self, cfg: JournalConfig) -> GemResult<()> {
        let j = &self.telemetry.journal;
        j.start(cfg).map_err(|e| GemError::RuntimeError(format!("journal start: {e}")))?;
        j.emit_baseline(&self.telemetry.registry.snapshot());
        let tracks = self.store.cache_capacity() as u64;
        j.emit(&JournalEvent::CacheConfigured { tracks });
        Ok(())
    }

    /// Stop the flight recorder (segment files stay on disk).
    pub fn stop_journal(&self) {
        self.telemetry.journal.stop();
    }

    /// Build a diagnostic bundle from the live journal + metrics: track
    /// heat map, cache replay sweep, slow statements, recovery summary,
    /// and the replay-determinism verdict. Fails when the recorder is not
    /// running.
    pub fn diagnostic_bundle(&self, reason: &str) -> GemResult<DiagnosticBundle> {
        let j = &self.telemetry.journal;
        let dir = j.dir().ok_or_else(|| {
            GemError::RuntimeError("flight recorder not running (start_journal first)".into())
        })?;
        j.flush();
        let readout = Journal::read_from(&dir).map_err(GemError::RuntimeError)?;
        let live = self.telemetry.registry.snapshot();
        Ok(DiagnosticBundle::build(&readout, Some(&live), reason))
    }

    /// Auto-capture: write a diagnostic bundle beside the journal segments
    /// as `bundle-<reason>-<seq>.json`. A no-op returning `None` when the
    /// recorder is off (structured-failure paths call this untested for
    /// enablement). Returns the bundle path on success.
    pub fn capture_bundle(&self, reason: &str) -> Option<std::path::PathBuf> {
        let j = &self.telemetry.journal;
        if !j.enabled() {
            return None;
        }
        let dir = j.dir()?;
        j.flush();
        let readout = Journal::read_from(&dir).ok()?;
        let live = self.telemetry.registry.snapshot();
        let bundle = DiagnosticBundle::build(&readout, Some(&live), reason);
        let path = dir.join(format!("bundle-{}-{:04}.json", reason, j.next_bundle_seq()));
        std::fs::write(&path, bundle.to_json()).ok()?;
        Some(path)
    }

    /// Turn on the live observatory ring: periodic registry samples with
    /// windowed rate queries and threshold anomaly detectors. Pull-based
    /// — sampling happens only inside [`Database::observatory_tick`], so
    /// the engine's hot paths are untouched whether this is on or off.
    pub fn enable_observatory(&self, cfg: ObservatoryConfig) {
        self.telemetry.observatory.enable(cfg);
    }

    /// Turn the observatory off and drop its samples.
    pub fn disable_observatory(&self) {
        self.telemetry.observatory.disable();
    }

    /// Sample the observatory (a no-op inside the configured interval or
    /// when disabled). Each anomaly that *newly* fires auto-captures a
    /// diagnostic bundle named after it when the flight recorder is
    /// running; the bundle paths ride back with the anomalies.
    pub fn observatory_tick(&self) -> Vec<(Anomaly, Option<std::path::PathBuf>)> {
        self.telemetry
            .observe()
            .into_iter()
            .map(|a| {
                let path = self.capture_bundle(a.slug());
                (a, path)
            })
            .collect()
    }

    /// Aggregated conflict forensics: per-kind abort totals plus the
    /// hottest objects and tracks, straight from the Transaction Manager.
    pub fn conflict_stats(&self) -> gemstone_txn::ConflictStats {
        self.txns.conflict_stats()
    }

    /// Storage/disk statistics snapshot (benchmark instrumentation).
    pub fn storage_stats(&self) -> (gemstone_storage::StoreStats, gemstone_storage::DiskStats) {
        (self.store.stats(), self.store.disk_stats())
    }

    /// Reset storage counters.
    pub fn reset_storage_stats(&self) {
        self.store.reset_stats();
    }

    /// (commits, aborts) seen by the Transaction Manager.
    pub fn txn_counts(&self) -> (u64, u64) {
        self.txns.outcome_counts()
    }

    /// Bound the store's object cache (LOOM-comparison benches).
    pub fn set_object_cache_limit(&self, limit: Option<usize>) {
        self.store.set_object_cache_limit(limit);
    }

    /// Direct access to the simulated disk (crash injection in tests and
    /// benches).
    pub fn with_disk<R>(&self, f: impl FnOnce(&mut gemstone_storage::DiskArray) -> R) -> R {
        self.store.with_disk(f)
    }

    /// Number of registered directories.
    pub fn directory_count(&self) -> usize {
        self.schema.read().dirs.count()
    }

    /// Switch the statistics observatory on and train it: every registered
    /// directory is sketched from its current state, so the very next plan
    /// is cost-based. Returns the number of refreshed sketches.
    pub fn enable_stats(&self) -> GemResult<usize> {
        self.stats_on.store(true, Ordering::Release);
        let updates = {
            let mut schema = self.schema.write();
            let now = self.txns.now().ticks();
            let Schema { dirs, stats, stats_dirty, .. } = &mut *schema;
            let ups = dirs.refresh_stats_all(&self.store, stats, now)?;
            if !ups.is_empty() {
                *stats_dirty = true;
            }
            ups
        };
        self.journal_stats_updates(&updates);
        Ok(updates.len())
    }

    /// Switch the statistics observatory off: planning, commits, and the
    /// journal revert to the exact pre-statistics behavior. The catalog is
    /// kept (re-enabling retrains over it).
    pub fn disable_stats(&self) {
        self.stats_on.store(false, Ordering::Release);
    }

    /// Whether the statistics observatory is on.
    pub fn stats_enabled(&self) -> bool {
        self.stats_on.load(Ordering::Acquire)
    }

    /// Freeze or resume passive commit-time statistics maintenance (only
    /// meaningful while stats are enabled). Freezing lets a workload shift
    /// the data out from under the trained statistics — the drift
    /// benchmark's setup.
    pub fn set_stats_maintenance(&self, on: bool) {
        self.stats_maintenance.store(on, Ordering::Release);
    }

    pub(crate) fn stats_maintenance_enabled(&self) -> bool {
        self.stats_on.load(Ordering::Acquire) && self.stats_maintenance.load(Ordering::Acquire)
    }

    /// A snapshot of the planner's statistics catalog (REPL `:stats`,
    /// doctor introspection).
    pub fn planner_stats(&self) -> StatsCatalog {
        self.schema.read().stats.clone()
    }

    /// Count each refreshed sketch and journal its `StatsUpdate` event —
    /// the counter and the event move together, so replay reproduces the
    /// live registry exactly. Call *after* dropping the schema lock.
    pub(crate) fn journal_stats_updates(&self, updates: &[StatsRefresh]) {
        for u in updates {
            self.telemetry.registry.counter("calculus.stats.updates").inc();
            if self.telemetry.journal.enabled() {
                self.telemetry.journal.emit(&JournalEvent::StatsUpdate {
                    set: u.set,
                    path: u.path.clone(),
                    cardinality: u.cardinality,
                    total: u.sketch.total,
                    distinct: u.sketch.distinct,
                    fuzz: u.sketch.fuzz,
                    points: u.sketch.encode_points(),
                });
            }
        }
    }

    /// DBA archive: prune element histories older than the state at
    /// `keep_from` across the whole database (§6's move-to-other-media).
    /// Returns the number of archived associations.
    pub fn archive_history_before(&self, keep_from: TxnTime) -> GemResult<usize> {
        let time = self.txns.now();
        self.store.archive_history_before(keep_from, time)
    }

    /// Administer users and segment privileges.
    pub fn with_auth<R>(&self, f: impl FnOnce(&mut AuthTable) -> R) -> R {
        let mut schema = self.schema.write();
        let r = f(&mut schema.auth);
        schema.schema_dirty = true;
        r
    }
}
