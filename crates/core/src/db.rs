//! The shared database: permanent store, schema, Transaction Manager.
//!
//! §6: "Sessions have shared access to the permanent database through
//! transactions." One [`Database`] is shared (via `Arc`) by any number of
//! [`Session`](crate::Session)s; the schema (symbols, classes, compiled
//! methods, globals, directories, users) lives here behind one lock, and
//! the optimistic [`TransactionManager`] has its own.

use crate::auth::AuthTable;
use crate::index::DirRegistry;
use crate::meta::{self, MethodSource};
use crate::session::Session;
use gemstone_object::{
    ClassId, ClassTable, GemError, GemResult, Kernel, PRef, SymbolId, SymbolTable,
};
use gemstone_opal::{install_kernel_methods, CompiledMethod};
use gemstone_storage::{DiskArray, PermanentStore, StoreConfig};
use gemstone_telemetry::{
    DiagnosticBundle, Journal, JournalConfig, JournalEvent, MetricsSnapshot, Telemetry,
};
use gemstone_temporal::TxnTime;
use gemstone_txn::TransactionManager;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

pub(crate) struct DbInner {
    pub store: PermanentStore,
    pub symbols: SymbolTable,
    pub classes: ClassTable,
    pub kernel: Kernel,
    pub block_class: ClassId,
    pub globals: HashMap<SymbolId, PRef>,
    pub methods: Vec<Arc<CompiledMethod>>,
    pub method_sources: Vec<MethodSource>,
    pub dirs: DirRegistry,
    pub auth: AuthTable,
    /// Schema (classes/symbols/methods/globals/directories) changed since
    /// the last commit and must be flushed with it.
    pub schema_dirty: bool,
}

impl DbInner {
    /// Stage all metadata blobs in the store (called under the lock just
    /// before a commit when the schema changed, so the metadata lands in the
    /// same safe-write group as the data).
    pub fn flush_meta(&mut self) {
        self.store.set_meta(meta::META_SYMBOLS, meta::put_symbols(&self.symbols));
        self.store.set_meta(meta::META_CLASSES, meta::put_classes(&self.classes));
        self.store.set_meta(meta::META_GLOBALS, meta::put_globals(&self.globals));
        self.store.set_meta(meta::META_METHODS, meta::put_method_sources(&self.method_sources));
        self.store.set_meta(meta::META_DIRS, meta::put_dir_specs(&self.dirs.spec_records()));
        self.schema_dirty = false;
    }
}

/// The GemStone database: create one, share it, log sessions in.
pub struct Database {
    pub(crate) inner: Mutex<DbInner>,
    pub(crate) txns: TransactionManager,
    pub(crate) telemetry: Telemetry,
}

/// Bind every layer's instrument handles into the registry under the
/// canonical names (see DESIGN.md §Telemetry). The layers keep owning
/// their cells; the registry shares the same atomics, which is what makes
/// the pre-existing stats accessors thin views over the registry.
fn bind_layer_metrics(telemetry: &Telemetry, store: &PermanentStore, txns: &TransactionManager) {
    let r = &telemetry.registry;
    let d = store.disk_counters();
    r.register_counter("storage.disk.reads", &d.track_reads);
    r.register_counter("storage.disk.writes", &d.track_writes);
    r.register_counter("storage.disk.bytes_written", &d.bytes_written);
    r.register_counter("storage.disk.failed_reads", &d.failed_reads);
    r.register_counter("storage.disk.failed_writes", &d.failed_writes);
    let c = store.cache_counters();
    r.register_counter("storage.cache.hits", &c.hits);
    r.register_counter("storage.cache.misses", &c.misses);
    r.register_counter("storage.cache.evictions", &c.evictions);
    r.register_counter("storage.cache.fills_read", &c.fills_read);
    r.register_counter("storage.cache.fills_commit", &c.fills_commit);
    let s = store.counters();
    r.register_counter("storage.store.commits", &s.commits);
    r.register_counter("storage.store.object_faults", &s.object_faults);
    r.register_counter("storage.store.objects_written", &s.objects_written);
    r.register_histogram("storage.commit.group_tracks", &store.disk().group_size_histogram());
    let t = txns.counters();
    r.register_counter("txn.begins", &t.begins);
    r.register_counter("txn.commits", &t.commits);
    r.register_counter("txn.aborts", &t.aborts);
    r.register_counter("txn.conflicts", &t.conflicts);
    let rep = store.recovery_report();
    r.gauge("storage.recovery.roots_considered").set(rep.roots_considered as i64);
    r.gauge("storage.recovery.roots_valid").set(rep.roots_valid as i64);
    r.gauge("storage.recovery.roots_torn").set(rep.roots_torn as i64);
    r.gauge("storage.recovery.epoch").set(rep.recovered_epoch as i64);
    r.gauge("storage.recovery.tracks_salvaged").set(rep.tracks_salvaged as i64);
    r.gauge("storage.recovery.tracks_discarded").set(rep.tracks_discarded as i64);
    r.gauge("storage.recovery.reopen_reads").set(rep.reopen_reads as i64);
    // Pre-create the session-level instruments (sessions bind the same
    // cells at login), so a journal baseline emitted at construction time
    // covers the full canonical name set and replay reproduces the live
    // snapshot name-for-name.
    for name in [
        "session.statements",
        "opal.interp.dispatches",
        "opal.interp.sends",
        "opal.verify.checks",
        "opal.verify.rejects",
        "calculus.rows_scanned",
        "calculus.index_rows",
        "calculus.index_hits",
        "calculus.index_fallbacks",
        "calculus.select_in",
        "calculus.select_out",
        "calculus.nest_loops",
        "calculus.hash_builds",
        "calculus.hash_probes",
        "calculus.hash_matches",
        "calculus.rows_out",
    ] {
        let _ = r.counter(name);
    }
    let _ = r.histogram("session.statement_ns");
}

fn kernel_from(classes: &ClassTable, symbols: &SymbolTable) -> GemResult<Kernel> {
    let class = |name: &str| -> GemResult<ClassId> {
        symbols
            .lookup(name)
            .and_then(|s| classes.by_name(s))
            .ok_or_else(|| GemError::Corrupt(format!("kernel class {name} missing")))
    };
    Ok(Kernel {
        object: class("Object")?,
        undefined_object: class("UndefinedObject")?,
        boolean: class("Boolean")?,
        true_class: class("True")?,
        false_class: class("False")?,
        magnitude: class("Magnitude")?,
        number: class("Number")?,
        small_integer: class("SmallInteger")?,
        float: class("Float")?,
        character: class("Character")?,
        collection: class("Collection")?,
        string: class("String")?,
        symbol: class("Symbol")?,
        array: class("Array")?,
        ordered_collection: class("OrderedCollection")?,
        set: class("Set")?,
        bag: class("Bag")?,
        dictionary: class("Dictionary")?,
        association: class("Association")?,
        metaclass: class("Metaclass")?,
        system_class: class("System")?,
    })
}

impl Database {
    /// Format a fresh database on a simulated disk.
    pub fn create(cfg: StoreConfig) -> GemResult<Arc<Database>> {
        Database::create_with(cfg, Telemetry::new())
    }

    /// [`Database::create`] over an explicit telemetry bundle (tests inject
    /// a manual clock here for deterministic span durations).
    pub fn create_with(cfg: StoreConfig, telemetry: Telemetry) -> GemResult<Arc<Database>> {
        let mut store = PermanentStore::create(cfg)?;
        store.attach_tracer(telemetry.tracer.clone());
        let mut symbols = SymbolTable::new();
        let (mut classes, kernel) = ClassTable::bootstrap(&mut symbols);
        let block_class =
            classes.subclass(symbols.intern("BlockClosure"), kernel.object, vec![])?;
        let mut inner = DbInner {
            store,
            symbols,
            classes,
            kernel,
            block_class,
            globals: HashMap::new(),
            methods: Vec::new(),
            method_sources: Vec::new(),
            dirs: DirRegistry::default(),
            auth: AuthTable::new(),
            schema_dirty: true,
        };
        let mut txns = TransactionManager::new(TxnTime::EPOCH);
        bind_layer_metrics(&telemetry, &inner.store, &txns);
        // If the flight recorder was started before creation, baseline the
        // registry *before* attaching the emission sites: the volume
        // formatting above already moved counters, and the baseline events
        // carry those values exactly once.
        if telemetry.journal.enabled() {
            telemetry.journal.emit_baseline(&telemetry.registry.snapshot());
            telemetry.journal.emit(&JournalEvent::CacheConfigured {
                tracks: inner.store.cache_capacity() as u64,
            });
        }
        inner.store.attach_journal(telemetry.journal.clone());
        txns.attach_journal(telemetry.journal.clone());
        let db = Arc::new(Database { inner: Mutex::new(inner), txns, telemetry });
        // Kernel methods install through a bootstrap session.
        let mut boot = Session::internal_login(db.clone());
        install_kernel_methods(&mut boot)?;
        // Persist the initial schema.
        {
            let mut inner = db.inner.lock();
            inner.flush_meta();
            let t = db.txns.now();
            inner.store.commit_batch(t, &[])?;
        }
        Ok(db)
    }

    /// An in-memory database with default sizing (the common test entry).
    pub fn in_memory() -> Arc<Database> {
        Database::create(StoreConfig::default()).expect("in-memory database")
    }

    /// Recover a database from a disk: newest valid root wins, schema is
    /// reloaded, user methods are recompiled from source, directories are
    /// rebuilt.
    pub fn open(disk: DiskArray, cache_tracks: usize) -> GemResult<Arc<Database>> {
        Database::open_with(disk, cache_tracks, Telemetry::new())
    }

    /// [`Database::open`] over an explicit telemetry bundle.
    pub fn open_with(
        disk: DiskArray,
        cache_tracks: usize,
        telemetry: Telemetry,
    ) -> GemResult<Arc<Database>> {
        let mut store = PermanentStore::open(disk, cache_tracks)?;
        store.attach_tracer(telemetry.tracer.clone());
        let symbols = match store.get_meta(meta::META_SYMBOLS)? {
            Some(b) => meta::get_symbols(&b)?,
            None => return Err(GemError::Corrupt("no symbol metadata".into())),
        };
        let classes = match store.get_meta(meta::META_CLASSES)? {
            Some(b) => meta::get_classes(&b)?,
            None => return Err(GemError::Corrupt("no class metadata".into())),
        };
        let globals = match store.get_meta(meta::META_GLOBALS)? {
            Some(b) => meta::get_globals(&b)?,
            None => HashMap::new(),
        };
        let method_sources = match store.get_meta(meta::META_METHODS)? {
            Some(b) => meta::get_method_sources(&b)?,
            None => Vec::new(),
        };
        let dir_specs = match store.get_meta(meta::META_DIRS)? {
            Some(b) => meta::get_dir_specs(&b)?,
            None => Vec::new(),
        };
        let kernel = kernel_from(&classes, &symbols)?;
        let block_class = symbols
            .lookup("BlockClosure")
            .and_then(|s| classes.by_name(s))
            .ok_or_else(|| GemError::Corrupt("BlockClosure class missing".into()))?;
        let last = store.root().commit_time;
        let dirs = DirRegistry::rebuild(&mut store, &symbols, &dir_specs, last)?;
        let mut inner = DbInner {
            store,
            symbols,
            classes,
            kernel,
            block_class,
            globals,
            methods: Vec::new(),
            method_sources: method_sources.clone(),
            dirs,
            auth: AuthTable::new(),
            schema_dirty: false,
        };
        let mut txns = TransactionManager::new(last);
        bind_layer_metrics(&telemetry, &inner.store, &txns);
        if telemetry.journal.enabled() {
            let rep = inner.store.recovery_report();
            telemetry.journal.emit(&JournalEvent::Recovery {
                roots_considered: rep.roots_considered as u64,
                roots_valid: rep.roots_valid as u64,
                roots_torn: rep.roots_torn as u64,
                epoch: rep.recovered_epoch,
                tracks_salvaged: rep.tracks_salvaged as u64,
                tracks_discarded: rep.tracks_discarded as u64,
                reopen_reads: rep.reopen_reads,
            });
            telemetry.journal.emit_baseline(&telemetry.registry.snapshot());
            telemetry.journal.emit(&JournalEvent::CacheConfigured {
                tracks: inner.store.cache_capacity() as u64,
            });
        }
        inner.store.attach_journal(telemetry.journal.clone());
        txns.attach_journal(telemetry.journal.clone());
        let db = Arc::new(Database { inner: Mutex::new(inner), txns, telemetry });
        // Rebuild method dictionaries: kernel first, then user sources in
        // their original order.
        let mut boot = Session::internal_login(db.clone());
        install_kernel_methods(&mut boot)?;
        for ms in method_sources {
            boot.recompile_method(&ms)?;
        }
        Ok(db)
    }

    /// Log a user in, creating a session with its own workspace.
    pub fn login(self: &Arc<Database>, user: &str) -> GemResult<Session> {
        {
            let inner = self.inner.lock();
            if !inner.auth.user_exists(user) {
                return Err(GemError::AuthorizationDenied {
                    segment: 0,
                    detail: format!("no such user {user}"),
                });
            }
        }
        Ok(Session::login(self.clone(), user))
    }

    /// Administrator session.
    pub fn login_dba(self: &Arc<Database>) -> Session {
        Session::internal_login(self.clone())
    }

    /// Register a user (DBA operation).
    pub fn create_user(&self, name: &str) {
        self.inner.lock().auth.create_user(name);
        self.inner.lock().schema_dirty = true;
    }

    /// Tear down to the raw disk for crash/recovery tests. Fails if other
    /// sessions still share the database.
    pub fn into_disk(self: Arc<Database>) -> GemResult<DiskArray> {
        match Arc::try_unwrap(self) {
            Ok(db) => Ok(db.inner.into_inner().store.into_disk()),
            Err(_) => Err(GemError::RuntimeError("database still shared".into())),
        }
    }

    /// What the reopening that produced this database saw and decided:
    /// roots probed/valid/torn, the winning epoch, tracks salvaged and
    /// discarded, physical reads. All-default for a freshly created
    /// database, which performed no recovery.
    pub fn recovery_report(&self) -> gemstone_storage::RecoveryReport {
        self.inner.lock().store.recovery_report()
    }

    /// The database-wide telemetry bundle: metrics registry, span tracer,
    /// clock. Clones share all state with the database's own handles.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A point-in-time copy of every registered metric. Diffable:
    /// `after.diff(&before)` isolates one workload's deltas.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.registry.snapshot()
    }

    /// Start the flight recorder: events stream to segment files in
    /// `cfg.dir`. Every layer already holds a handle on the shared
    /// recorder, so this needs no re-attachment — it flips one shared
    /// flag and writes the baseline (the absolute registry state, so
    /// replaying the journal reproduces cumulative totals exactly).
    /// Start it while the database is otherwise idle: events from a
    /// session racing the baseline would replay twice.
    pub fn start_journal(&self, cfg: JournalConfig) -> GemResult<()> {
        let j = &self.telemetry.journal;
        j.start(cfg).map_err(|e| GemError::RuntimeError(format!("journal start: {e}")))?;
        j.emit_baseline(&self.telemetry.registry.snapshot());
        let tracks = self.inner.lock().store.cache_capacity() as u64;
        j.emit(&JournalEvent::CacheConfigured { tracks });
        Ok(())
    }

    /// Stop the flight recorder (segment files stay on disk).
    pub fn stop_journal(&self) {
        self.telemetry.journal.stop();
    }

    /// Build a diagnostic bundle from the live journal + metrics: track
    /// heat map, cache replay sweep, slow statements, recovery summary,
    /// and the replay-determinism verdict. Fails when the recorder is not
    /// running.
    pub fn diagnostic_bundle(&self, reason: &str) -> GemResult<DiagnosticBundle> {
        let j = &self.telemetry.journal;
        let dir = j.dir().ok_or_else(|| {
            GemError::RuntimeError("flight recorder not running (start_journal first)".into())
        })?;
        j.flush();
        let readout = Journal::read_from(&dir).map_err(GemError::RuntimeError)?;
        let live = self.telemetry.registry.snapshot();
        Ok(DiagnosticBundle::build(&readout, Some(&live), reason))
    }

    /// Auto-capture: write a diagnostic bundle beside the journal segments
    /// as `bundle-<reason>-<seq>.json`. A no-op returning `None` when the
    /// recorder is off (structured-failure paths call this untested for
    /// enablement). Returns the bundle path on success.
    pub fn capture_bundle(&self, reason: &str) -> Option<std::path::PathBuf> {
        let j = &self.telemetry.journal;
        if !j.enabled() {
            return None;
        }
        let dir = j.dir()?;
        j.flush();
        let readout = Journal::read_from(&dir).ok()?;
        let live = self.telemetry.registry.snapshot();
        let bundle = DiagnosticBundle::build(&readout, Some(&live), reason);
        let path = dir.join(format!("bundle-{}-{:04}.json", reason, j.next_bundle_seq()));
        std::fs::write(&path, bundle.to_json()).ok()?;
        Some(path)
    }

    /// Storage/disk statistics snapshot (benchmark instrumentation).
    pub fn storage_stats(&self) -> (gemstone_storage::StoreStats, gemstone_storage::DiskStats) {
        let inner = self.inner.lock();
        (inner.store.stats(), inner.store.disk_stats())
    }

    /// Reset storage counters.
    pub fn reset_storage_stats(&self) {
        self.inner.lock().store.reset_stats();
    }

    /// (commits, aborts) seen by the Transaction Manager.
    pub fn txn_counts(&self) -> (u64, u64) {
        self.txns.outcome_counts()
    }

    /// Bound the store's object cache (LOOM-comparison benches).
    pub fn set_object_cache_limit(&self, limit: Option<usize>) {
        self.inner.lock().store.set_object_cache_limit(limit);
    }

    /// Direct access to the simulated disk (crash injection in tests and
    /// benches).
    pub fn with_disk<R>(&self, f: impl FnOnce(&mut gemstone_storage::DiskArray) -> R) -> R {
        f(self.inner.lock().store.disk_mut())
    }

    /// Number of registered directories.
    pub fn directory_count(&self) -> usize {
        self.inner.lock().dirs.count()
    }

    /// DBA archive: prune element histories older than the state at
    /// `keep_from` across the whole database (§6's move-to-other-media).
    /// Returns the number of archived associations.
    pub fn archive_history_before(&self, keep_from: TxnTime) -> GemResult<usize> {
        let time = self.txns.now();
        self.inner.lock().store.archive_history_before(keep_from, time)
    }

    /// Administer users and segment privileges.
    pub fn with_auth<R>(&self, f: impl FnOnce(&mut AuthTable) -> R) -> R {
        let mut inner = self.inner.lock();
        let r = f(&mut inner.auth);
        inner.schema_dirty = true;
        r
    }
}
